"""Declarative scenario registry.

Scenarios are TOML files composing a mobility profile, experiment
settings, refresh schemes, query-workload cycles, on-path caching,
placement policies, fault plans and sweep grids -- runnable via
``repro scenario run`` without writing experiment code.

- :mod:`repro.scenarios.registry` -- schema, eager validation, loading.
- :mod:`repro.scenarios.grid` -- cartesian sweep-grid expansion.
- :mod:`repro.scenarios.compose` -- documents -> runnable sweep points.

See ``docs/SCENARIOS.md`` for the full schema reference and cookbook.
"""

from repro.scenarios.compose import (
    compose_scenario,
    cycle_from_doc,
    faults_from_doc,
    onpath_from_doc,
    placement_from_doc,
    settings_from_doc,
    sweep_point_from_doc,
)
from repro.scenarios.grid import GridPoint, apply_overrides, expand_grid, grid_size
from repro.scenarios.registry import (
    DEFAULT_SCENARIO_DIR,
    SCHEMA,
    Scenario,
    ScenarioError,
    SchemaKey,
    load_registry,
    load_scenario,
    validate_doc,
)

__all__ = [
    "DEFAULT_SCENARIO_DIR",
    "GridPoint",
    "SCHEMA",
    "Scenario",
    "ScenarioError",
    "SchemaKey",
    "apply_overrides",
    "compose_scenario",
    "cycle_from_doc",
    "expand_grid",
    "faults_from_doc",
    "grid_size",
    "load_registry",
    "load_scenario",
    "onpath_from_doc",
    "placement_from_doc",
    "settings_from_doc",
    "sweep_point_from_doc",
    "validate_doc",
]
