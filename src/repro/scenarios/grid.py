"""Sweep-grid expansion for scenario files.

A scenario's ``[grid]`` table declares sweep axes; this module expands
them into the cartesian product of concrete scenario documents.  Two
axis shapes exist:

* **scalar** -- one dotted key swept over a value list::

      [[grid.axes]]
      key = "settings.refresh_interval_hours"
      values = [12, 24, 48]

* **labeled cases** -- named bundles of overrides applied together::

      [[grid.axes]]
      name = "engine"
      [[grid.axes.cases]]
      label = "object"
      [[grid.axes.cases]]
      label = "soa"
      overrides = { "run.backend" = "soa" }

Expansion is deterministic: axes multiply in file order, each axis
iterating in its declared order, so point 0 is always the first value
of every axis.  Every expanded document is re-validated (overrides can
create combinations that are individually fine but jointly invalid,
e.g. a case switching to the soa backend while another axis turns
queries on); a bad point fails eagerly, naming the point.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Iterator

from repro.scenarios.registry import Scenario, ScenarioError, validate_doc


@dataclass(frozen=True)
class GridPoint:
    """One expanded grid position of a scenario."""

    #: position in expansion order (0-based)
    index: int
    #: human-readable label, e.g. ``"refresh_interval_hours=12/engine=soa"``
    label: str
    #: dotted override keys applied to the base document
    overrides: tuple[tuple[str, Any], ...]
    #: the fully overridden scenario document (deep copy, safe to mutate)
    doc: dict


def apply_overrides(doc: dict, overrides: dict[str, Any]) -> dict:
    """A deep copy of ``doc`` with dotted-key overrides applied.

    >>> doc = {"settings": {"num_items": 6}, "run": {"schemes": ["direct"]}}
    >>> out = apply_overrides(doc, {"settings.num_items": 12,
    ...                             "run.backend": "soa"})
    >>> out["settings"]["num_items"], out["run"]["backend"]
    (12, 'soa')
    >>> doc["settings"]["num_items"]  # original untouched
    6
    """
    out = copy.deepcopy(doc)
    for dotted, value in overrides.items():
        table, _, key = dotted.rpartition(".")
        target = out
        for part in table.split("."):
            target = target.setdefault(part, {})
        target[key] = value
    return out


def _axis_cases(axis: dict) -> list[tuple[str, dict[str, Any]]]:
    """One axis as ``(label, overrides)`` cases, both axis shapes."""
    if "cases" in axis:
        name = axis.get("name", "case")
        return [
            (f"{name}={case['label']}", dict(case.get("overrides", {})))
            for case in axis["cases"]
        ]
    key = axis["key"]
    short = key.rpartition(".")[2]
    return [(f"{short}={value}", {key: value}) for value in axis["values"]]


def _product(axes: list[list[tuple[str, dict[str, Any]]]]) -> Iterator[
    list[tuple[str, dict[str, Any]]]
]:
    if not axes:
        yield []
        return
    head, *rest = axes
    for case in head:
        for tail in _product(rest):
            yield [case, *tail]


def grid_size(scenario: Scenario) -> int:
    """Number of points the scenario's grid expands to (1 if no grid)."""
    axes = scenario.doc.get("grid", {}).get("axes", [])
    size = 1
    for axis in axes:
        size *= len(axis["cases"]) if "cases" in axis else len(axis["values"])
    return size


def expand_grid(scenario: Scenario) -> list[GridPoint]:
    """Expand a validated scenario into its concrete grid points.

    A scenario without a ``[grid]`` table expands to a single point
    whose document is the scenario itself.  Each expanded document is
    re-validated; a jointly invalid combination raises
    :class:`ScenarioError` naming the offending point.
    """
    base = {k: v for k, v in scenario.doc.items() if k != "grid"}
    axes = scenario.doc.get("grid", {}).get("axes", [])
    if not axes:
        return [GridPoint(index=0, label=scenario.name, overrides=(),
                          doc=copy.deepcopy(base))]
    points: list[GridPoint] = []
    for index, combo in enumerate(_product([_axis_cases(a) for a in axes])):
        overrides: dict[str, Any] = {}
        for _, case_overrides in combo:
            overrides.update(case_overrides)
        doc = apply_overrides(base, overrides)
        label = "/".join(part for part, _ in combo)
        errors = validate_doc(doc, file=scenario.path)
        if errors:
            raise ScenarioError(
                scenario.path,
                [f"grid point {index} ({label}): {err}" for err in errors],
            )
        points.append(
            GridPoint(
                index=index,
                label=label,
                overrides=tuple(sorted(overrides.items())),
                doc=doc,
            )
        )
    return points
