"""Compose validated scenario documents into runnable sweep points.

This is the bridge from the declarative layer to the execution
machinery: each expanded :class:`~repro.scenarios.grid.GridPoint`
document becomes one :class:`~repro.experiments.parallel.SweepPoint`,
which the existing ``build_jobs``/``run_tasks`` pipeline (and therefore
parallel workers, fault injection, checkpoint/resume and the soa
backend) executes without knowing scenarios exist.

Unit conversions happen here, once: the TOML schema speaks operator
units (``duration_hours``, ``probe_interval_minutes``), the
:class:`~repro.experiments.config.Settings` dataclass speaks seconds.
"""

from __future__ import annotations

from typing import Optional

from repro.caching.onpath import OnPathConfig
from repro.caching.placement import (
    GeographicPlacement,
    PlacementPolicy,
    PopularityPlacement,
)
from repro.experiments.config import Settings
from repro.experiments.parallel import SweepPoint
from repro.faults.plan import FaultPlan, plan_from_dict
from repro.scenarios.grid import GridPoint, expand_grid
from repro.scenarios.registry import Scenario
from repro.workloads.cycles import DiurnalCycle, FlashCrowd, QueryCycle

HOUR = 3600.0
MINUTE = 60.0

#: schema keys carried into Settings verbatim (same name, same unit)
_SETTINGS_PASSTHROUGH = (
    "profile",
    "num_caching_nodes",
    "num_items",
    "num_sources",
    "freshness_requirement",
    "lifetime_factor",
    "item_size",
    "query_rate_per_day",
    "zipf_exponent",
    "warmup_fraction",
    "fanout",
    "max_depth",
    "max_relays",
    "refresh_jitter",
)


def settings_from_doc(doc: dict) -> Settings:
    """The :class:`Settings` a scenario document describes.

    Unlisted keys keep the library defaults, so a scenario file is a
    diff against the paper's baseline configuration, not a full copy.
    """
    table = doc.get("settings", {})
    overrides = {k: table[k] for k in _SETTINGS_PASSTHROUGH if k in table}
    if "seeds" in table:
        overrides["seeds"] = tuple(table["seeds"])
    if "duration_hours" in table:
        overrides["duration"] = table["duration_hours"] * HOUR
    if "refresh_interval_hours" in table:
        overrides["refresh_interval"] = table["refresh_interval_hours"] * HOUR
    if "probe_interval_minutes" in table:
        overrides["probe_interval"] = table["probe_interval_minutes"] * MINUTE
    return Settings().with_(**overrides).validate()


def cycle_from_doc(doc: dict) -> Optional[QueryCycle]:
    """The query cycle a document's ``[workload]`` table describes."""
    workload = doc.get("workload", {})
    diurnal_table = workload.get("diurnal")
    crowds_tables = workload.get("flash_crowds", [])
    if diurnal_table is None and not crowds_tables:
        return None
    diurnal = None
    if diurnal_table is not None:
        if "activity" in diurnal_table:
            diurnal = DiurnalCycle(
                activity=tuple(float(x) for x in diurnal_table["activity"])
            )
        else:
            diurnal = DiurnalCycle()
    crowds = tuple(
        FlashCrowd(
            start=c["start_hours"] * HOUR,
            length=c["length_hours"] * HOUR,
            boost=c.get("boost", 4.0),
            focus=c.get("focus", 2),
            focus_weight=c.get("focus_weight", 0.7),
        )
        for c in crowds_tables
    )
    return QueryCycle(diurnal=diurnal, crowds=crowds)


def onpath_from_doc(doc: dict) -> Optional[OnPathConfig]:
    """The on-path caching config of ``[caching.onpath]``, if present."""
    table = doc.get("caching", {}).get("onpath")
    if table is None:
        return None
    return OnPathConfig(
        strategy=table.get("strategy", "lce"),
        capacity=table.get("capacity", 8),
    )


def placement_from_doc(doc: dict) -> Optional[PlacementPolicy]:
    """The placement policy of ``[placement]``, if present."""
    table = doc.get("placement")
    if table is None:
        return None
    if table["policy"] == "popularity":
        return PopularityPlacement(
            s=table.get("s", 0.8),
            budget_fraction=table.get("budget_fraction", 0.5),
        )
    return GeographicPlacement(
        spread_quantile=table.get("spread_quantile", 0.8)
    )


def faults_from_doc(doc: dict) -> Optional[FaultPlan]:
    """The fault plan of ``[faults]``, if present."""
    table = doc.get("faults")
    if table is None:
        return None
    return plan_from_dict(table)


def sweep_point_from_doc(doc: dict) -> SweepPoint:
    """One expanded grid document as a runnable sweep point."""
    run = doc.get("run", {})
    return SweepPoint(
        settings=settings_from_doc(doc),
        schemes=tuple(run["schemes"]),
        with_queries=bool(run.get("with_queries", False)),
        fault_plan=faults_from_doc(doc),
        backend=run.get("backend", "object"),
        placement=placement_from_doc(doc),
        onpath=onpath_from_doc(doc),
        cycle=cycle_from_doc(doc),
    )


def compose_scenario(
    scenario: Scenario,
) -> tuple[list[GridPoint], list[SweepPoint]]:
    """Expand a scenario's grid and compose every point for execution.

    Returns the grid points (labels, overrides) and the parallel list of
    sweep points, index-aligned, ready for
    :func:`repro.experiments.parallel.run_sweep`.
    """
    grid_points = expand_grid(scenario)
    return grid_points, [sweep_point_from_doc(p.doc) for p in grid_points]
