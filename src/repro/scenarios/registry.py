"""TOML scenario registry: schema, eager validation, loading.

A *scenario* is a declarative TOML file composing a mobility profile, an
experiment configuration, a refresh-scheme list, and optional workload
cycles, on-path caching, placement policies, fault plans and sweep grids
-- everything a hand-written experiment module wires in code.  The
registry turns opening a new workload into a data change: drop a file in
``scenarios/`` and run it with ``repro scenario run <name>``.

Validation is **eager and complete**: :func:`load_scenario` parses the
file once and collects *every* problem -- unknown tables, unknown keys,
wrong types, out-of-range values -- into one :class:`ScenarioError`
whose messages each name the offending file, table and key.  Nothing
downstream (grid expansion, composition, workers) runs until the file is
clean, the same convention as :meth:`Settings.validate
<repro.experiments.config.Settings.validate>` and the fault-plan loader.

The schema itself is data: :data:`SCHEMA` is a tuple of
:class:`SchemaKey` rows (table, key, type, default, requiredness,
validation rule, documentation).  The validator walks it, the docs
(``docs/SCENARIOS.md``) are written from it, and a test cross-checks
that every row appears in the docs -- so schema and reference cannot
drift apart silently.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.core.scheme import SCHEMES
from repro.mobility.calibration import list_profiles

#: default directory of committed scenario files, relative to the repo root
DEFAULT_SCENARIO_DIR = "scenarios"


class ScenarioError(ValueError):
    """All validation problems of one scenario file, at once."""

    def __init__(self, file: str, errors: list[str]) -> None:
        self.file = str(file)
        self.errors = list(errors)
        details = "\n".join(f"  - {err}" for err in self.errors)
        super().__init__(f"invalid scenario {self.file}:\n{details}")


# -- schema ----------------------------------------------------------------

#: type names used by the schema; each maps to an ``isinstance`` check
#: (bool is excluded from the numeric types -- TOML booleans are not
#: numbers even though Python's ``bool`` subclasses ``int``)
_TYPE_CHECKS: dict[str, Callable[[Any], bool]] = {
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "array of integers": lambda v: isinstance(v, list)
    and all(isinstance(x, int) and not isinstance(x, bool) for x in v),
    "array of floats": lambda v: isinstance(v, list)
    and all(isinstance(x, (int, float)) and not isinstance(x, bool) for x in v),
    "array of strings": lambda v: isinstance(v, list)
    and all(isinstance(x, str) for x in v),
}


@dataclass(frozen=True)
class SchemaKey:
    """One documented, validated key of the scenario TOML schema."""

    table: str  #: dotted table name, e.g. ``"settings"`` or ``"caching.onpath"``
    key: str
    type: str  #: one of the :data:`_TYPE_CHECKS` names
    doc: str
    required: bool = False
    default: Any = None  #: shown in docs; ``None`` = no default (optional/required)
    check: Optional[Callable[[Any], Optional[str]]] = None  #: extra rule -> error text

    def problem(self, value: Any) -> Optional[str]:
        """The validation error for ``value``, or ``None`` if it is fine."""
        if not _TYPE_CHECKS[self.type](value):
            return f"expected {self.type}, got {value!r}"
        if self.check is not None:
            return self.check(value)
        return None


def _positive(value) -> Optional[str]:
    return None if value > 0 else f"must be positive, got {value}"


def _non_negative(value) -> Optional[str]:
    return None if value >= 0 else f"must be >= 0, got {value}"


def _at_least_one(value) -> Optional[str]:
    return None if value >= 1 else f"must be >= 1, got {value}"


def _fraction_open_closed(value) -> Optional[str]:
    return None if 0 < value <= 1 else f"must be in (0, 1], got {value}"


def _fraction_closed_open(value) -> Optional[str]:
    return None if 0 <= value < 1 else f"must be in [0, 1), got {value}"


def _fraction_closed(value) -> Optional[str]:
    return None if 0 <= value <= 1 else f"must be in [0, 1], got {value}"


def _non_empty(value) -> Optional[str]:
    return None if value else "must be non-empty"


def _known_profile(value) -> Optional[str]:
    known = list_profiles()
    if value in known:
        return None
    return f"unknown profile {value!r}; available: {known}"


def _known_schemes(value) -> Optional[str]:
    if not value:
        return "must list at least one scheme"
    unknown = [s for s in value if s not in SCHEMES]
    if unknown:
        return f"unknown scheme(s) {unknown}; available: {sorted(SCHEMES)}"
    return None


def _known_backend(value) -> Optional[str]:
    return None if value in ("object", "soa") else (
        f"must be 'object' or 'soa', got {value!r}"
    )


def _onpath_strategy(value) -> Optional[str]:
    return None if value in ("lce", "lcd") else (
        f"must be 'lce' or 'lcd', got {value!r}"
    )


def _placement_policy(value) -> Optional[str]:
    return None if value in ("popularity", "geographic") else (
        f"must be 'popularity' or 'geographic', got {value!r}"
    )


def _activity_24(value) -> Optional[str]:
    if len(value) != 24:
        return f"must have exactly 24 hourly multipliers, got {len(value)}"
    if any(x < 0 for x in value):
        return "multipliers must be non-negative"
    if max(value) == 0:
        return "at least one hour must be positive"
    return None


def _boost(value) -> Optional[str]:
    return None if value >= 1 else f"must be >= 1, got {value}"


SCHEMA: tuple[SchemaKey, ...] = (
    # [scenario]
    SchemaKey("scenario", "name", "string", required=True, check=_non_empty,
              doc="Registry key; must be unique across scenarios/*.toml."),
    SchemaKey("scenario", "title", "string", default="",
              doc="One-line human title shown by `repro scenario list`."),
    SchemaKey("scenario", "description", "string", default="",
              doc="Longer free-text description shown by `repro scenario show`."),
    # [settings] -- every key optional, overriding the Settings defaults
    SchemaKey("settings", "profile", "string", default="reality",
              check=_known_profile,
              doc="Calibrated mobility profile (reality, infocom06, small, "
                  "vehicular)."),
    SchemaKey("settings", "duration_hours", "float", default=504.0,
              check=_positive,
              doc="Simulation horizon in hours (default 21 days)."),
    SchemaKey("settings", "seeds", "array of integers", default=[1, 2, 3],
              check=_non_empty,
              doc="Replication seeds; each seed generates its own trace "
                  "realisation."),
    SchemaKey("settings", "num_caching_nodes", "integer", default=12,
              check=_at_least_one,
              doc="Caching nodes selected by centrality (or by a placement "
                  "policy)."),
    SchemaKey("settings", "num_items", "integer", default=6,
              check=_at_least_one, doc="Catalog size."),
    SchemaKey("settings", "num_sources", "integer", default=2,
              check=_at_least_one, doc="Data-source nodes."),
    SchemaKey("settings", "refresh_interval_hours", "float", default=24.0,
              check=_positive, doc="Version refresh interval in hours."),
    SchemaKey("settings", "freshness_requirement", "float", default=0.9,
              check=_fraction_open_closed,
              doc="Per-hop on-time delivery target in (0, 1]."),
    SchemaKey("settings", "lifetime_factor", "float", default=2.0,
              check=_positive,
              doc="Item lifetime as a multiple of the refresh interval."),
    SchemaKey("settings", "item_size", "integer", default=1024,
              check=_at_least_one, doc="Item size in bytes."),
    SchemaKey("settings", "query_rate_per_day", "float", default=2.0,
              check=_non_negative,
              doc="Queries per requester per day (mean rate; cycles "
                  "modulate it)."),
    SchemaKey("settings", "zipf_exponent", "float", default=0.8,
              check=_non_negative, doc="Query popularity skew."),
    SchemaKey("settings", "probe_interval_minutes", "float", default=30.0,
              check=_positive, doc="Freshness probe period in minutes."),
    SchemaKey("settings", "warmup_fraction", "float", default=0.1,
              check=_fraction_closed_open,
              doc="Leading fraction of the horizon excluded from metrics."),
    SchemaKey("settings", "fanout", "integer", default=3,
              check=_at_least_one, doc="Refresh-tree fanout."),
    SchemaKey("settings", "max_depth", "integer", default=3,
              check=_at_least_one, doc="Refresh-tree depth limit."),
    SchemaKey("settings", "max_relays", "integer", default=5,
              check=_non_negative, doc="Relays provisioned per tree edge."),
    SchemaKey("settings", "refresh_jitter", "float", default=0.25,
              check=_non_negative,
              doc="Relative jitter on the refresh schedule."),
    # [run]
    SchemaKey("run", "schemes", "array of strings", required=True,
              check=_known_schemes,
              doc="Refresh schemes to run at every grid point."),
    SchemaKey("run", "with_queries", "boolean", default=False,
              doc="Schedule the query workload and report query metrics."),
    SchemaKey("run", "backend", "string", default="object",
              check=_known_backend,
              doc="Execution engine; 'soa' is the vectorised backend "
                  "(no queries, faults, placement or on-path caching)."),
    # [workload.diurnal]
    SchemaKey("workload.diurnal", "activity", "array of floats",
              default="24 x 1.0-ish office-hours profile", check=_activity_24,
              doc="24 hourly query-rate multipliers; the table's presence "
                  "alone enables the default diurnal cycle."),
    # [[workload.flash_crowds]]
    SchemaKey("workload.flash_crowds", "start_hours", "float", required=True,
              check=_non_negative, doc="Burst window start, hours."),
    SchemaKey("workload.flash_crowds", "length_hours", "float", required=True,
              check=_positive, doc="Burst window length, hours."),
    SchemaKey("workload.flash_crowds", "boost", "float", default=4.0,
              check=_boost, doc="Query-rate multiplier inside the window."),
    SchemaKey("workload.flash_crowds", "focus", "integer", default=2,
              check=_at_least_one,
              doc="The burst concentrates on this many head items."),
    SchemaKey("workload.flash_crowds", "focus_weight", "float", default=0.7,
              check=_fraction_closed,
              doc="Probability a burst query targets a focus item."),
    # [caching.onpath]
    SchemaKey("caching.onpath", "strategy", "string", default="lce",
              check=_onpath_strategy,
              doc="On-path caching strategy: leave-copy-everywhere or "
                  "leave-copy-down."),
    SchemaKey("caching.onpath", "capacity", "integer", default=8,
              check=_at_least_one,
              doc="Bounded on-path store size on ordinary nodes."),
    # [placement]
    SchemaKey("placement", "policy", "string", required=True,
              check=_placement_policy,
              doc="Placement family: popularity-budgeted cooperative "
                  "replicas, or geographic-spread node selection."),
    SchemaKey("placement", "s", "float", default=0.8, check=_non_negative,
              doc="(popularity) Zipf exponent of the replica allocation."),
    SchemaKey("placement", "budget_fraction", "float", default=0.5,
              check=_fraction_open_closed,
              doc="(popularity) replica budget as a fraction of full "
                  "replication."),
    SchemaKey("placement", "spread_quantile", "float", default=0.8,
              check=_fraction_open_closed,
              doc="(geographic) contact-rate quantile above which two "
                  "caching nodes are 'too close'."),
    # [grid] axes -- validated structurally in _validate_grid
    SchemaKey("grid.axes", "key", "string",
              doc="(scalar axis) dotted override key, e.g. "
                  "'settings.refresh_interval_hours'."),
    SchemaKey("grid.axes", "values", "array of floats", check=_non_empty,
              doc="(scalar axis) one grid position per value."),
    SchemaKey("grid.axes", "name", "string",
              doc="(case axis) axis label shown in point names."),
    SchemaKey("grid.axes", "label", "string", required=True,
              doc="(case axis) one case's label; cases are "
                  "[[grid.axes.cases]] tables."),
    SchemaKey("grid.axes", "overrides", "string",
              doc="(case axis) table of dotted override keys applied "
                  "together, e.g. { \"run.backend\" = \"soa\" }."),
)

#: tables whose keys the generic walker validates directly
_FLAT_TABLES = ("scenario", "settings", "run", "caching.onpath", "placement")

#: top-level tables the schema knows (anything else is an error)
KNOWN_TABLES = ("scenario", "settings", "run", "workload", "caching",
                "placement", "faults", "grid")


def schema_for(table: str) -> dict[str, SchemaKey]:
    """The schema rows of one (dotted) table, keyed by key name."""
    return {row.key: row for row in SCHEMA if row.table == table}


def schema_defaults(table: str) -> dict[str, Any]:
    """Documented defaults of one table (required keys excluded)."""
    return {
        row.key: row.default
        for row in SCHEMA
        if row.table == table and not row.required and row.default is not None
    }


#: dotted keys valid as grid-axis override targets: every scalar schema
#: key of the flat tables (grid axes sweep values, not sub-tables)
def override_targets() -> set[str]:
    return {
        f"{row.table}.{row.key}"
        for row in SCHEMA
        if row.table in _FLAT_TABLES and row.table != "scenario"
    }


@dataclass(frozen=True)
class Scenario:
    """A loaded, fully validated scenario file."""

    name: str
    title: str
    description: str
    path: str
    doc: dict = field(hash=False)

    @property
    def schemes(self) -> tuple[str, ...]:
        return tuple(self.doc["run"]["schemes"])


# -- validation ------------------------------------------------------------


def _check_table(
    doc_table: dict,
    table: str,
    where: str,
    errors: list[str],
) -> None:
    """Validate one flat table against the schema (collects, not raises)."""
    rows = schema_for(table)
    for key, value in doc_table.items():
        row = rows.get(key)
        if row is None:
            known = ", ".join(sorted(rows))
            errors.append(f"{where}: unknown key {key!r} (known: {known})")
            continue
        problem = row.problem(value)
        if problem is not None:
            errors.append(f"{where}: {key}: {problem}")
    for key, row in rows.items():
        if row.required and key not in doc_table:
            errors.append(f"{where}: missing required key {key!r}")


def _validate_workload(workload: Any, errors: list[str]) -> None:
    where = "[workload]"
    if not isinstance(workload, dict):
        errors.append(f"{where}: expected a table, got {workload!r}")
        return
    for key, value in workload.items():
        if key == "diurnal":
            if not isinstance(value, dict):
                errors.append(f"[workload.diurnal]: expected a table")
                continue
            _check_table(value, "workload.diurnal", "[workload.diurnal]", errors)
        elif key == "flash_crowds":
            if not isinstance(value, list) or not all(
                isinstance(c, dict) for c in value
            ):
                errors.append(
                    "[workload.flash_crowds]: expected an array of tables "
                    "([[workload.flash_crowds]])"
                )
                continue
            for index, crowd in enumerate(value):
                _check_table(
                    crowd, "workload.flash_crowds",
                    f"[workload.flash_crowds] #{index}", errors,
                )
        else:
            errors.append(
                f"{where}: unknown key {key!r} (known: diurnal, flash_crowds)"
            )


def _validate_caching(caching: Any, errors: list[str]) -> None:
    if not isinstance(caching, dict):
        errors.append(f"[caching]: expected a table, got {caching!r}")
        return
    for key, value in caching.items():
        if key != "onpath":
            errors.append(f"[caching]: unknown key {key!r} (known: onpath)")
            continue
        if not isinstance(value, dict):
            errors.append("[caching.onpath]: expected a table")
            continue
        _check_table(value, "caching.onpath", "[caching.onpath]", errors)


def _validate_faults(faults: Any, errors: list[str]) -> None:
    from repro.faults.plan import plan_from_dict

    if not isinstance(faults, dict):
        errors.append(f"[faults]: expected a table, got {faults!r}")
        return
    try:
        plan_from_dict(faults).validate()
    except (TypeError, ValueError) as exc:
        errors.append(f"[faults]: {exc}")


def _validate_grid(grid: Any, errors: list[str]) -> None:
    where = "[grid]"
    if not isinstance(grid, dict):
        errors.append(f"{where}: expected a table, got {grid!r}")
        return
    unknown = set(grid) - {"axes"}
    for key in sorted(unknown):
        errors.append(f"{where}: unknown key {key!r} (known: axes)")
    axes = grid.get("axes", [])
    if not isinstance(axes, list) or not all(isinstance(a, dict) for a in axes):
        errors.append(f"{where}: axes must be an array of tables ([[grid.axes]])")
        return
    targets = override_targets()
    for index, axis in enumerate(axes):
        axis_where = f"[grid.axes] #{index}"
        scalar = "key" in axis or "values" in axis
        cased = "cases" in axis
        if scalar and cased:
            errors.append(
                f"{axis_where}: an axis is either scalar (key/values) or "
                "labeled (name/cases), not both"
            )
            continue
        if scalar:
            unknown = set(axis) - {"key", "values", "name"}
            for key in sorted(unknown):
                errors.append(f"{axis_where}: unknown key {key!r} "
                              "(scalar axis keys: key, values, name)")
            key = axis.get("key")
            if not isinstance(key, str):
                errors.append(f"{axis_where}: key must be a dotted string")
            elif key not in targets:
                errors.append(
                    f"{axis_where}: key {key!r} is not sweepable "
                    f"(valid: {', '.join(sorted(targets))})"
                )
            values = axis.get("values")
            if not isinstance(values, list) or not values:
                errors.append(f"{axis_where}: values must be a non-empty array")
            elif isinstance(key, str) and key in targets:
                table, _, sub = key.rpartition(".")
                row = schema_for(table).get(sub)
                for value in values:
                    problem = row.problem(value) if row else None
                    if problem is not None:
                        errors.append(f"{axis_where}: values: {problem}")
                        break
        elif cased:
            unknown = set(axis) - {"name", "cases"}
            for key in sorted(unknown):
                errors.append(f"{axis_where}: unknown key {key!r} "
                              "(case axis keys: name, cases)")
            cases = axis.get("cases")
            if not isinstance(cases, list) or not cases or not all(
                isinstance(c, dict) for c in cases
            ):
                errors.append(
                    f"{axis_where}: cases must be a non-empty array of "
                    "tables ([[grid.axes.cases]])"
                )
                continue
            for case_index, case in enumerate(cases):
                case_where = f"{axis_where} case #{case_index}"
                unknown = set(case) - {"label", "overrides"}
                for key in sorted(unknown):
                    errors.append(f"{case_where}: unknown key {key!r} "
                                  "(case keys: label, overrides)")
                if not isinstance(case.get("label"), str) or not case.get("label"):
                    errors.append(f"{case_where}: label must be a non-empty "
                                  "string")
                overrides = case.get("overrides", {})
                if not isinstance(overrides, dict):
                    errors.append(f"{case_where}: overrides must be a table "
                                  "of dotted keys")
                    continue
                for dotted, value in overrides.items():
                    if dotted not in targets:
                        errors.append(
                            f"{case_where}: override key {dotted!r} is not "
                            f"sweepable (valid: {', '.join(sorted(targets))})"
                        )
                        continue
                    table, _, sub = dotted.rpartition(".")
                    problem = schema_for(table)[sub].problem(value)
                    if problem is not None:
                        errors.append(f"{case_where}: {dotted}: {problem}")
        else:
            errors.append(
                f"{axis_where}: an axis needs either key+values (scalar) or "
                "name+cases (labeled)"
            )


def validate_doc(doc: dict, file: str = "<inline>") -> list[str]:
    """All validation errors of a parsed scenario document.

    Pure collection: returns the (possibly empty) error list instead of
    raising, so both the loader and the grid expander can reuse it.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level: expected TOML tables, got {doc!r}"]
    for table in doc:
        if table not in KNOWN_TABLES:
            known = ", ".join(KNOWN_TABLES)
            errors.append(f"top level: unknown table [{table}] (known: {known})")
    for table in ("scenario", "run"):
        if table not in doc:
            errors.append(f"top level: missing required table [{table}]")
    for table in _FLAT_TABLES:
        value = doc.get(table)
        if value is None:
            continue
        if not isinstance(value, dict):
            errors.append(f"[{table}]: expected a table, got {value!r}")
            continue
        _check_table(value, table, f"[{table}]", errors)
    if "workload" in doc:
        _validate_workload(doc["workload"], errors)
    if "caching" in doc:
        _validate_caching(doc["caching"], errors)
    if "faults" in doc:
        _validate_faults(doc["faults"], errors)
    if "grid" in doc:
        _validate_grid(doc["grid"], errors)
    if not errors:
        errors.extend(_validate_semantics(doc))
    return errors


def _validate_semantics(doc: dict) -> list[str]:
    """Cross-table rules, checked once the per-key shape is clean."""
    errors: list[str] = []
    run = doc.get("run", {})
    with_queries = bool(run.get("with_queries", False))
    backend = run.get("backend", "object")
    workload = doc.get("workload", {})
    has_cycle = bool(workload.get("diurnal") is not None
                     or workload.get("flash_crowds"))
    has_onpath = "onpath" in doc.get("caching", {})
    if has_cycle and not with_queries:
        errors.append(
            "[workload]: diurnal/flash_crowds need [run] with_queries = true"
        )
    if has_onpath and not with_queries:
        errors.append(
            "[caching.onpath]: on-path caching needs [run] "
            "with_queries = true"
        )
    if backend == "soa":
        for active, what in (
            (with_queries, "[run] with_queries"),
            ("faults" in doc, "[faults]"),
            ("placement" in doc, "[placement]"),
            (has_onpath, "[caching.onpath]"),
            (has_cycle, "[workload] cycles"),
        ):
            if active:
                errors.append(
                    f"[run]: backend = 'soa' does not support {what}"
                )
    return errors


# -- loading ---------------------------------------------------------------


def load_scenario(path: str | Path) -> Scenario:
    """Load one scenario file, validating it eagerly and completely.

    Raises :class:`ScenarioError` (naming the file, table and key of
    every problem) or ``OSError`` if the file cannot be read.
    """
    path = Path(path)
    try:
        doc = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError(str(path), [f"TOML parse error: {exc}"]) from None
    errors = validate_doc(doc, file=str(path))
    if errors:
        raise ScenarioError(str(path), errors)
    meta = doc["scenario"]
    return Scenario(
        name=meta["name"],
        title=meta.get("title", ""),
        description=meta.get("description", ""),
        path=str(path),
        doc=doc,
    )


def load_registry(directory: str | Path = DEFAULT_SCENARIO_DIR) -> dict[str, Scenario]:
    """Load every ``*.toml`` under ``directory``, keyed by scenario name.

    Files load in sorted order; a duplicate name raises
    :class:`ScenarioError` naming both files.  An empty or missing
    directory yields an empty registry.
    """
    directory = Path(directory)
    registry: dict[str, Scenario] = {}
    for path in sorted(directory.glob("*.toml")):
        scenario = load_scenario(path)
        if scenario.name in registry:
            raise ScenarioError(
                str(path),
                [f"[scenario]: duplicate name {scenario.name!r} "
                 f"(already defined by {registry[scenario.name].path})"],
            )
        registry[scenario.name] = scenario
    return registry
