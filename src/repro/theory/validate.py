"""Model-vs-simulation validation: diff predictions against measurements.

:func:`compare` lines a :class:`~repro.theory.model.ModelPrediction` up
against measured values -- a :class:`~repro.experiments.runner.RunMetrics`,
a plain ``metric -> value`` mapping, or a
:class:`~repro.obs.registry.MetricsRegistry` snapshot dict -- and
produces a :class:`ModelReport`: one row per metric with the absolute
error and whether it falls inside the agreement tolerance.

The tolerance is not arbitrary: the model is exact *under the
pairwise-Poisson assumption*, so its error budget is how far the trace's
inter-contact times deviate from exponential.  E2 measures that
deviation as a Kolmogorov-Smirnov distance (0.043 on the
Reality-calibrated profile, 0.079 on Infocom06);
:func:`agreement_band` turns a KS distance into the documented
tolerance used by E16 and the benchmarks.

>>> from repro.theory.validate import ModelRow, ModelReport
>>> report = ModelReport(
...     rows=[ModelRow("freshness", 0.90, 0.87, 0.03, True)], tolerance=0.1)
>>> report.agreement
True
>>> round(report.max_error, 2)
0.03
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.analysis.tables import format_table
from repro.theory.model import ModelPrediction

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.records import TraceRecord

#: the RunMetrics fields the model predicts, in report order
DEFAULT_METRICS = ("freshness", "validity", "on_time_ratio")

#: query-plane metrics appended when the measured run had queries
QUERY_METRICS = ("query_fresh_ratio", "query_valid_ratio")

#: tolerance floor: discretisation, warm-up truncation and finite-run
#: noise that persist even on a perfectly exponential trace
BAND_FLOOR = 0.05

#: how many tolerance units one unit of KS distance buys.  The KS
#: distance bounds the per-edge CDF error; hops compound roughly
#: linearly along a depth<=3 path, hence a small integer multiplier.
BAND_SCALE = 2.0


def agreement_band(ks_distance: float, floor: float = BAND_FLOOR,
                   scale: float = BAND_SCALE) -> float:
    """Tolerance for model-vs-simulation agreement on a given trace.

    ``floor + scale * ks_distance``: the further the trace's
    inter-contact law is from exponential (E2's KS statistic), the more
    slack the exponential model is allowed.

    >>> agreement_band(0.0)
    0.05
    >>> agreement_band(0.043)  # Reality-calibrated profile (E2)
    0.136
    """
    if ks_distance < 0:
        raise ValueError("ks_distance must be non-negative")
    return floor + scale * ks_distance


@dataclass(frozen=True)
class ModelRow:
    """One metric's predicted-vs-measured comparison."""

    metric: str
    predicted: float
    measured: float
    error: float  #: ``|predicted - measured|``; NaN when unmeasured
    within: bool  #: error inside tolerance (vacuously true when unmeasured)


@dataclass(frozen=True)
class ModelReport:
    """Predicted-vs-measured diff for one run."""

    rows: list[ModelRow]
    tolerance: float

    @property
    def agreement(self) -> bool:
        """True when every measured metric is inside the tolerance."""
        return all(row.within for row in self.rows)

    @property
    def max_error(self) -> float:
        """Largest absolute error over the measured metrics (NaN if none)."""
        errors = [row.error for row in self.rows if not math.isnan(row.error)]
        return max(errors) if errors else math.nan

    def format(self, title: str = "model vs simulation") -> str:
        """Human-readable table, same style as the experiment output."""
        rows = [
            {
                "metric": row.metric,
                "predicted": row.predicted,
                "measured": row.measured,
                "|error|": row.error,
                "within": "yes" if row.within else "NO",
            }
            for row in self.rows
        ]
        table = format_table(
            rows,
            columns=["metric", "predicted", "measured", "|error|", "within"],
            title=f"{title} (tolerance {self.tolerance:.3f})",
        )
        return table

    def records(self, time: float = 0.0) -> "list[TraceRecord]":
        """One ``model.predict`` obs record per row, for trace export."""
        from repro.obs.records import ModelPredictRecord

        return [
            ModelPredictRecord(
                time=time,
                metric=row.metric,
                predicted=row.predicted,
                measured=row.measured,
                error=row.error,
            )
            for row in self.rows
        ]


def measured_values(measured) -> dict[str, float]:
    """Normalise a measurement source into a ``metric -> value`` dict.

    Accepts a :class:`~repro.experiments.runner.RunMetrics` (field
    access), a :class:`~repro.obs.registry.MetricsRegistry` snapshot
    (the ``{"counters": ..., "gauges": ...}`` shape -- probe gauges are
    translated when present), or any plain mapping.
    """
    if isinstance(measured, Mapping):
        if "gauges" in measured and "counters" in measured:
            out: dict[str, float] = {}
            gauges = measured.get("gauges", {})
            fresh = gauges.get("probe.fresh_slots")
            valid = gauges.get("probe.valid_slots")
            total = gauges.get("probe.total_slots")
            if total:
                if fresh is not None:
                    out["freshness"] = fresh / total
                if valid is not None:
                    out["validity"] = valid / total
            return out
        return {str(k): float(v) for k, v in measured.items()}
    out = {}
    for name in DEFAULT_METRICS + QUERY_METRICS:
        value = getattr(measured, name, None)
        if value is not None:
            out[name] = float(value)
    return out


def compare(
    prediction: ModelPrediction,
    measured=None,
    tolerance: float = 0.1,
    metrics: Optional[Sequence[str]] = None,
) -> ModelReport:
    """Diff a prediction against measurements (or none, for pure predict).

    ``metrics`` defaults to :data:`DEFAULT_METRICS` plus the query
    ratios when the measurement carries finite values for them.  Rows
    whose measurement is missing/NaN get ``error = NaN`` and count as
    within tolerance (there is nothing to disagree with).
    """
    predicted = prediction.summary()
    observed = measured_values(measured) if measured is not None else {}
    if metrics is None:
        names = list(DEFAULT_METRICS)
        names += [
            name for name in QUERY_METRICS
            if not math.isnan(observed.get(name, math.nan))
        ]
    else:
        names = list(metrics)
    rows = []
    for name in names:
        if name not in predicted:
            raise KeyError(f"model does not predict metric {name!r}")
        p = predicted[name]
        m = observed.get(name, math.nan)
        error = abs(p - m) if not math.isnan(m) else math.nan
        within = math.isnan(error) or error <= tolerance
        rows.append(ModelRow(
            metric=name, predicted=p, measured=m, error=error, within=within,
        ))
    return ModelReport(rows=rows, tolerance=tolerance)
