"""Closed-form freshness model: compose the per-edge analysis end to end.

:mod:`repro.core.replication` gives the per-edge building blocks under
the pairwise-Poisson contact model -- direct delivery is Exp(lambda),
a two-hop relay is hypoexponential, and independent relay paths multiply
their miss probabilities.  This module composes those into whole-tree
predictions:

- the **edge delivery CDF** ``F_e(t)``: probability a provisioned tree
  edge (direct path plus its provisioned relay copies, modelled as
  pooled recruitment over the qualifying population -- see
  :meth:`FreshnessModel._relay_paths`) hands a new version from parent
  to child within ``t`` seconds of the parent holding it;
- the **end-to-end delivery CDF** for each caching node: the hops along
  its path to the root are independent, so the node's delay is the sum
  of per-hop delays and its CDF is the convolution of the hop CDFs
  (a generalised hypoexponential chain, computed numerically on a grid);
- the **renewal-average freshness** of each node: a new version appears
  every ``R`` seconds, so the long-run fresh fraction is the mean of the
  delivery CDF over one cycle, ``(1/R) * integral_0^R F(s) ds`` --
  the multi-hop generalisation of
  :func:`~repro.core.replication.expected_fresh_fraction`;
- the **validity** of each node: the cached copy at cycle offset ``s``
  is the newest version the node has received; it is valid while that
  version's age is below the item lifetime.  Versions are delivered
  independently, so the probability the node holds the ``j``-cycles-old
  version is ``F(s + jR) * prod_{i<j} (1 - F(s + iR))``;
- **query predictions** via PASTA: Poisson query arrivals see
  time averages, so a cache hit is fresh with probability equal to the
  time-averaged freshness and valid with the time-averaged validity.

Everything here is a pure function of the wired structures (rate table,
refresh trees, relay plans, catalog) -- prediction never touches the
simulator state, consumes no randomness, and is therefore passive
(gated by the ``theory`` section of ``repro bench``).

Example -- a two-level chain, predicted against the closed forms it is
built from::

    >>> from repro.caching.items import DataCatalog
    >>> from repro.contacts.rates import RateTable
    >>> from repro.core.hierarchy import RefreshTree
    >>> rates = RateTable({(0, 1): 2.0 / 3600.0, (1, 2): 1.0 / 3600.0})
    >>> tree = RefreshTree(root=0)
    >>> tree.attach(1, 0)
    >>> tree.attach(2, 1)
    >>> catalog = DataCatalog.uniform(
    ...     num_items=1, sources=[0], refresh_interval=3600.0, lifetime=7200.0)
    >>> model = FreshnessModel(rates, {0: tree}, {}, catalog)
    >>> prediction = model.predict()
    >>> from repro.core.replication import contact_probability, two_hop_probability
    >>> p1 = prediction.nodes[(0, 1)]
    >>> abs(p1.on_time - contact_probability(2.0 / 3600.0, 3600.0)) < 1e-6
    True
    >>> p2 = prediction.nodes[(0, 2)]
    >>> abs(p2.on_time - two_hop_probability(2/3600, 1/3600, 3600.0)) < 1e-3
    True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable
from repro.core.hierarchy import RefreshTree
from repro.core.replication import (
    RelayPlan,
    contact_probability,
    two_hop_probability,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheme import SchemeRuntime

#: grid resolution of the numeric CDFs; at the default model horizon of
#: ``lifetime + 2 * refresh_interval`` this puts ~250 points per
#: refresh interval, far below the closed forms' curvature scale.
DEFAULT_GRID_POINTS = 1024

#: sample count for the renewal-average integrals over one cycle
_INTEGRAL_SAMPLES = 257

#: ``np.trapz`` was renamed ``trapezoid`` in NumPy 2.0
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def _erlang_weight(rate: float, stages: int, t: float) -> float:
    """``int_0^t rate^i x^(i-1)/(i-1)! e^(-rate x) dx`` for any ``rate != 0``.

    For positive ``rate`` this is the Erlang(``stages``, ``rate``) CDF;
    the polynomial-exponential identity it evaluates holds for negative
    ``rate`` too, which :func:`relay_path_probability` exploits.
    """
    total = sum((rate * t) ** n / math.factorial(n) for n in range(stages))
    return 1.0 - math.exp(-rate * t) * total


def relay_path_probability(
    pool_rate: float, stages: int, delivery_rate: float, t: float
) -> float:
    """P(the ``stages``-th pooled recruit delivers within ``t``).

    The path's delay is ``Erlang(stages, pool_rate)`` (time until the
    ``stages``-th qualifying encounter when qualifying encounters arrive
    at the pooled rate) plus ``Exp(delivery_rate)`` (the recruit's
    carry-to-target time).  With one stage this *is* the two-hop
    hypoexponential; with more it is the exact convolution, obtained by
    integrating the Erlang density against the exponential tail::

        P = G(pool, i, t) - (pool / (pool - mu))**i * e**(-mu t) * G(pool - mu, i, t)

    where ``G`` is :func:`_erlang_weight` (valid for either sign of
    ``pool - mu``; the equal-rate case collapses to an
    ``Erlang(i + 1)``).  Using the exact Erlang wait matters: replacing
    it by an exponential of the same mean front-loads probability mass
    and overestimates early delivery for every path beyond the first.

    >>> relay_path_probability(2.0, 1, 1.0, 1.5) == two_hop_probability(2.0, 1.0, 1.5)
    True
    >>> round(relay_path_probability(3.0, 2, 0.7, 2.0), 4)  # vs Monte Carlo 0.5867
    0.5867
    >>> relay_path_probability(1.0, 2, 1.0, 2.0) == _erlang_weight(1.0, 3, 2.0)
    True
    """
    if pool_rate <= 0.0 or delivery_rate <= 0.0 or t <= 0.0:
        return 0.0
    if abs(pool_rate - delivery_rate) < 1e-9 * max(pool_rate, delivery_rate):
        return _erlang_weight(pool_rate, stages + 1, t)
    ratio = (pool_rate / (pool_rate - delivery_rate)) ** stages
    return (
        _erlang_weight(pool_rate, stages, t)
        - ratio
        * math.exp(-delivery_rate * t)
        * _erlang_weight(pool_rate - delivery_rate, stages, t)
    )


def edge_delivery_cdf(
    direct_rate: float,
    relay_rates: Sequence[tuple],
    t: float,
) -> float:
    """P(a provisioned edge delivers within ``t``).

    The direct path completes within ``t`` with probability
    ``1 - exp(-direct_rate * t)``; each relay path is an independent
    two-stage chain -- either ``(rate_up, rate_down)`` (a specific
    relay: hypoexponential) or ``(pool_rate, stages, rate_down)``
    (the ``stages``-th recruit from a pooled qualifying population,
    :func:`relay_path_probability`).  Paths fail independently, so the
    edge misses only if every path misses::

        F_e(t) = 1 - (1 - P_direct(t)) * prod_r (1 - P_relay_r(t))

    This generalises :func:`~repro.core.replication.plan_edge`'s
    ``achieved`` to an arbitrary ``t`` instead of only the hop window.

    >>> round(edge_delivery_cdf(1.0, [], 1.0), 6)  # direct only: 1 - e^-1
    0.632121
    >>> edge_delivery_cdf(0.0, [(1.0, 1.0)], 2.0) == two_hop_probability(1.0, 1.0, 2.0)
    True
    >>> edge_delivery_cdf(0.0, [(2.0, 1, 1.0)], 1.5) == two_hop_probability(2.0, 1.0, 1.5)
    True
    """
    miss = 1.0 - contact_probability(direct_rate, t)
    for path in relay_rates:
        if len(path) == 2:
            rate_up, rate_down = path
            p_path = two_hop_probability(rate_up, rate_down, t)
        else:
            pool_rate, stages, rate_down = path
            p_path = relay_path_probability(pool_rate, stages, rate_down, t)
        miss *= 1.0 - p_path
    return 1.0 - miss


@dataclass(frozen=True)
class DelayDistribution:
    """A delivery-delay CDF sampled on a uniform grid ``[0, horizon]``.

    The distribution may be *defective* (``cdf[-1] < 1``): a path
    through a zero-rate edge never completes, and the missing mass is
    the probability of never delivering.  Evaluation beyond the horizon
    clamps to the last grid value (a slight underestimate of the true
    CDF there; the model sizes its horizon so nothing it integrates
    reaches that regime).

    >>> d = DelayDistribution.from_function(
    ...     lambda t: contact_probability(1.0, t), horizon=20.0)
    >>> round(d.at(1.0), 4)      # 1 - e^-1
    0.6321
    >>> two = d.convolve(d)      # sum of two Exp(1) delays
    >>> round(two.at(2.0), 3) == round(two_hop_probability(1.0, 1.0, 2.0), 3)
    True
    """

    grid: np.ndarray
    cdf: np.ndarray

    def __post_init__(self) -> None:
        if self.grid.shape != self.cdf.shape or self.grid.ndim != 1:
            raise ValueError("grid and cdf must be equal-length 1-D arrays")
        if len(self.grid) < 2:
            raise ValueError("need at least two grid points")

    @classmethod
    def from_function(
        cls,
        fn: Callable[[float], float],
        horizon: float,
        points: int = DEFAULT_GRID_POINTS,
    ) -> "DelayDistribution":
        """Sample a closed-form CDF ``fn`` on ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        grid = np.linspace(0.0, horizon, points)
        cdf = np.clip(np.array([fn(t) for t in grid], dtype=float), 0.0, 1.0)
        return cls(grid=grid, cdf=cdf)

    @property
    def horizon(self) -> float:
        return float(self.grid[-1])

    def at(self, t) -> "float | np.ndarray":
        """CDF value(s) at ``t`` (scalar or array), clamped outside the grid."""
        out = np.interp(t, self.grid, self.cdf)
        return float(out) if np.ndim(out) == 0 else out

    def convolve(self, other: "DelayDistribution") -> "DelayDistribution":
        """CDF of the sum of two independent delays (same grid required).

        Bucket masses are convolved and the result truncated at the
        horizon -- exact there, because any pair of components summing
        past the horizon lands past it.  Each bucket's mass sits a half
        step below its grid point on average, so the raw convolution
        index overshoots time by one step; averaging the cumulative sum
        at ``k`` and ``k+1`` re-centres it (empirically O(step^2):
        ~2e-5 absolute CDF error at the default resolution, vs ~4e-3
        uncorrected).
        """
        if not np.array_equal(self.grid, other.grid):
            raise ValueError("convolve requires identical grids")
        n = len(self.grid)
        pmf_a = np.diff(self.cdf, prepend=0.0)
        pmf_b = np.diff(other.cdf, prepend=0.0)
        full = np.cumsum(np.convolve(pmf_a, pmf_b))
        cdf = np.clip(0.5 * (full[:n] + full[1 : n + 1]), 0.0, 1.0)
        return DelayDistribution(grid=self.grid, cdf=cdf)

    def fresh_fraction(self, refresh_interval: float) -> float:
        """Renewal-average fresh fraction: ``(1/R) * int_0^R F(s) ds``.

        At cycle offset ``s`` the node is fresh iff the current version
        (published ``s`` ago) has already arrived, which happens with
        probability ``F(s)``; averaging over the cycle gives the
        long-run fraction of time spent fresh.
        """
        if refresh_interval <= 0:
            raise ValueError("refresh_interval must be positive")
        s = np.linspace(0.0, refresh_interval, _INTEGRAL_SAMPLES)
        return float(_trapezoid(np.asarray(self.at(s)), s) / refresh_interval)

    def valid_fraction(self, refresh_interval: float, lifetime: float) -> float:
        """Renewal-average probability the cached copy is unexpired.

        At cycle offset ``s`` the node holds the newest version it has
        received, and that copy is valid while its age is below the
        lifetime.  The protocol *supersedes* refresh tasks: once version
        ``v+1`` reaches a refresher, it stops pushing ``v`` -- so a
        version's delivery effort is censored at (roughly) one refresh
        interval after its publication.  Hence the node lags ``j >= 1``
        cycles with probability::

            (1 - F(s)) * (1 - F(R))**(j-1) * F(R)

        (the current version has not arrived in ``s`` seconds; the
        ``j-1`` versions before it were never delivered inside their
        effort window; the ``j``-lagged one was), and is fresh (lag 0)
        with probability ``F(s)``.  A ``j``-lagged copy is valid while
        ``s + jR < lifetime``; the never-delivered residual counts as
        invalid.
        """
        if refresh_interval <= 0 or lifetime <= 0:
            raise ValueError("refresh_interval and lifetime must be positive")
        R = refresh_interval
        s = np.linspace(0.0, R, _INTEGRAL_SAMPLES)
        current = np.asarray(self.at(s))
        on_time = float(self.at(R))
        total = current.copy()  # lag 0: fresh and (age s < R <= lifetime) valid
        lagged = 1.0 - current  # P(current version still missing at s)
        j = 1
        while j * R < lifetime:
            age_ok = (s + j * R) < lifetime
            total += np.where(age_ok, lagged * on_time, 0.0)
            lagged = lagged * (1.0 - on_time)
            j += 1
        return float(_trapezoid(total, s) / R)


@dataclass(frozen=True)
class NodePrediction:
    """Model outputs for one (item, caching node) pair."""

    item_id: int
    node: int
    depth: int
    on_time: float  #: P(new version arrives within one refresh interval)
    fresh: float  #: long-run fraction of time the copy is fresh
    valid: float  #: long-run fraction of time the copy is unexpired
    distribution: DelayDistribution = field(repr=False)


@dataclass(frozen=True)
class ModelPrediction:
    """Closed-form predictions for one wired scheme instance.

    ``nodes`` maps ``(item_id, node)`` to per-node predictions;
    ``level_grid``/``levels`` hold the depth-averaged delivery CDFs on a
    grid of *fractions of the refresh interval* (so items with different
    intervals average coherently); the scalar aggregates mirror the
    same-named :class:`~repro.experiments.runner.RunMetrics` fields.
    """

    nodes: dict[tuple[int, int], NodePrediction]
    level_grid: np.ndarray
    levels: dict[int, np.ndarray]
    freshness: float
    validity: float
    on_time_ratio: float
    query_rate: float
    num_requesters: int

    @property
    def query_fresh_ratio(self) -> float:
        """PASTA: Poisson arrivals sample the time-averaged freshness."""
        return self.freshness

    @property
    def query_valid_ratio(self) -> float:
        """PASTA: Poisson arrivals sample the time-averaged validity."""
        return self.validity

    def expected_queries(self, duration: float) -> float:
        """Expected workload size over ``duration`` seconds."""
        return self.query_rate * self.num_requesters * duration

    def level_rows(self, fractions: Sequence[float] = (0.25, 0.5, 1.0, 2.0)) -> list[dict]:
        """Per-depth delivery CDF sampled at fractions of the interval."""
        rows = []
        for depth in sorted(self.levels):
            row: dict = {"depth": depth, "nodes": sum(
                1 for p in self.nodes.values() if p.depth == depth
            )}
            for frac in fractions:
                value = float(np.interp(frac, self.level_grid, self.levels[depth]))
                row[f"P(d<={frac:g}R)"] = value
            rows.append(row)
        return rows

    def summary(self) -> dict[str, float]:
        """The scalar predictions, keyed like ``RunMetrics`` fields."""
        return {
            "freshness": self.freshness,
            "validity": self.validity,
            "on_time_ratio": self.on_time_ratio,
            "query_fresh_ratio": self.query_fresh_ratio,
            "query_valid_ratio": self.query_valid_ratio,
        }

    def as_dict(self) -> dict:
        """JSON-ready structure: summary, per-level and per-node tables."""
        return {
            "summary": self.summary(),
            "query_rate": self.query_rate,
            "num_requesters": self.num_requesters,
            "levels": self.level_rows(),
            "nodes": [
                {
                    "item_id": p.item_id,
                    "node": p.node,
                    "depth": p.depth,
                    "on_time": p.on_time,
                    "fresh": p.fresh,
                    "valid": p.valid,
                }
                for p in self.nodes.values()
            ],
        }


class FreshnessModel:
    """Closed-form freshness predictions for a wired scheme.

    Takes the fitted contact-rate table, the per-item refresh trees, the
    relay plans the provisioning produced, and the catalog; yields a
    :class:`ModelPrediction`.  Build one straight from a
    :class:`~repro.core.scheme.SchemeRuntime` with :meth:`from_runtime`.

    The model covers the tree-structured schemes (``hdr``, ``flat``,
    ``random``, ``source``); epidemic schemes have no per-edge closed
    form and raise.
    """

    def __init__(
        self,
        rates: RateTable,
        trees: Mapping[int, RefreshTree],
        plans: Mapping[tuple[int, int, int], RelayPlan],
        catalog: DataCatalog,
        *,
        query_rate: float = 0.0,
        num_requesters: int = 0,
        grid_points: int = DEFAULT_GRID_POINTS,
    ) -> None:
        if not trees:
            raise ValueError(
                "no refresh trees to model (epidemic/none schemes have no "
                "closed-form structure)"
            )
        self.rates = rates
        self.trees = dict(trees)
        self.plans = dict(plans)
        self.catalog = catalog
        self.query_rate = query_rate
        self.num_requesters = num_requesters
        self.grid_points = grid_points
        self._neighbor_cache: Optional[dict[int, list[tuple[int, float]]]] = None

    @classmethod
    def from_runtime(
        cls,
        runtime: "SchemeRuntime",
        *,
        query_rate: float = 0.0,
        grid_points: int = DEFAULT_GRID_POINTS,
    ) -> "FreshnessModel":
        """Model the exact structures a wired runtime will simulate.

        Reads only static wiring (rates, trees, plans, catalog, node
        sets); never touches the simulator, so building and evaluating
        the model before ``runtime.run()`` cannot perturb the run.
        ``query_rate`` is the per-requester Poisson rate (1/s) used for
        query predictions; requesters are counted the way
        :func:`~repro.workloads.queries.schedule_queries` counts them
        (every node that is neither a source nor a caching node).
        """
        requesters = (
            set(runtime.nodes)
            - set(runtime.sources)
            - set(runtime.caching_nodes)
        )
        return cls(
            runtime.rates,
            runtime.trees,
            runtime.plans,
            runtime.catalog,
            query_rate=query_rate,
            num_requesters=len(requesters),
            grid_points=grid_points,
        )

    # -- per-edge and per-node distributions --------------------------------

    @property
    def _neighbor_rates(self) -> dict[int, list[tuple[int, float]]]:
        """Adjacency view of the rate table: node -> [(peer, rate)]."""
        if self._neighbor_cache is None:
            cached: dict[int, list[tuple[int, float]]] = {}
            for (a, b), rate in self.rates.pairs():
                if rate > 0.0:
                    cached.setdefault(a, []).append((b, rate))
                    cached.setdefault(b, []).append((a, rate))
            self._neighbor_cache = cached
        return self._neighbor_cache

    def _relay_paths(
        self, item_id: int, parent: int, child: int
    ) -> list[tuple[float, int, float]]:
        """(pool_rate, stages, delivery_rate) for the edge's relay paths.

        The plan provisions ``k = num_relays`` copies, but the runtime
        does not wait for the *planned* relays: it hands a copy to the
        first ``k`` encountered nodes that qualify (a planned relay, or
        any node with a better contact rate to the target than the
        parent itself -- see ``HdrRefreshHandler._relay_qualifies``).
        Modelling ``k`` specific relays therefore badly underestimates
        the recruitment speed whenever many nodes qualify.

        Instead the model pools recruitment over the qualifying set
        ``Q``: qualifying encounters arrive at the pooled rate ``Lam =
        sum_{r in Q} lambda(parent, r)``, so the ``i``-th recruit is
        found after an ``Erlang(i, Lam)`` wait and then delivers at the
        recruitment-likelihood-weighted mean rate ``lbar = sum_{r in Q}
        lambda(parent, r) * lambda(r, child) / Lam``.  The edge gets
        ``min(k, |Q|)`` independent relay paths ``(Lam, i, lbar)``,
        evaluated exactly by :func:`relay_path_probability`.
        """
        plan = self.plans.get((item_id, parent, child))
        if plan is None or plan.num_relays == 0:
            return []
        own = self.rates.rate(parent, child)
        planned = set(plan.relays)
        meet = []
        deliver = []
        for peer, rate_to_parent in self._neighbor_rates.get(parent, ()):
            if peer == child:
                continue
            rate_to_child = self.rates.rate(peer, child)
            if peer in planned or rate_to_child > own:
                meet.append(rate_to_parent)
                deliver.append(rate_to_child)
        if not meet:
            return []
        pooled = float(sum(meet))
        weighted = float(
            sum(m * d for m, d in zip(meet, deliver)) / pooled
        )
        paths = min(plan.num_relays, len(meet))
        return [(pooled, i, weighted) for i in range(1, paths + 1)]

    def _horizon(self, item) -> float:
        """Grid horizon: far enough that every integral stays on-grid.

        ``valid_fraction`` evaluates the CDF up to ``lifetime +
        refresh_interval``; one extra interval of slack keeps the
        clamped tail out of every integrand.
        """
        return item.lifetime + 2.0 * item.refresh_interval

    def edge_distribution(
        self, item_id: int, parent: int, child: int
    ) -> DelayDistribution:
        """Delivery-delay CDF of one provisioned tree edge."""
        item = self.catalog.get(item_id)
        direct = self.rates.rate(parent, child)
        relays = self._relay_paths(item_id, parent, child)
        return DelayDistribution.from_function(
            lambda t: edge_delivery_cdf(direct, relays, t),
            horizon=self._horizon(item),
            points=self.grid_points,
        )

    def node_distribution(self, item_id: int, node: int) -> DelayDistribution:
        """End-to-end delivery CDF: convolution of the hops to the root."""
        tree = self.trees[item_id]
        path = tree.path_to_root(node)  # node .. root
        if len(path) < 2:
            raise ValueError(f"node {node} is the root of item {item_id}'s tree")
        dist: Optional[DelayDistribution] = None
        for child, parent in zip(path, path[1:]):
            hop = self.edge_distribution(item_id, parent, child)
            dist = hop if dist is None else dist.convolve(hop)
        assert dist is not None
        return dist

    # -- whole-scheme prediction --------------------------------------------

    def predict(self) -> ModelPrediction:
        """Evaluate the model for every (item, caching node) pair."""
        nodes: dict[tuple[int, int], NodePrediction] = {}
        # Shared hop distributions: sibling subtrees reuse parent edges.
        hop_cache: dict[tuple[int, int, int], DelayDistribution] = {}
        chain_cache: dict[tuple[int, int], Optional[DelayDistribution]] = {}

        def chain(item_id: int, node: int) -> Optional[DelayDistribution]:
            key = (item_id, node)
            if key in chain_cache:
                return chain_cache[key]
            tree = self.trees[item_id]
            if node == tree.root:
                chain_cache[key] = None
                return None
            parent = tree.parent[node]
            edge_key = (item_id, parent, node)
            hop = hop_cache.get(edge_key)
            if hop is None:
                hop = self.edge_distribution(item_id, parent, node)
                hop_cache[edge_key] = hop
            upstream = chain(item_id, parent)
            dist = hop if upstream is None else upstream.convolve(hop)
            chain_cache[key] = dist
            return dist

        for item_id, tree in sorted(self.trees.items()):
            item = self.catalog.get(item_id)
            for node in sorted(tree.members):
                dist = chain(item_id, node)
                assert dist is not None
                nodes[(item_id, node)] = NodePrediction(
                    item_id=item_id,
                    node=node,
                    depth=tree.depth_of(node),
                    on_time=float(dist.at(item.refresh_interval)),
                    fresh=dist.fresh_fraction(item.refresh_interval),
                    valid=dist.valid_fraction(item.refresh_interval, item.lifetime),
                    distribution=dist,
                )

        level_grid, levels = self._level_cdfs(nodes)
        predictions = list(nodes.values())
        return ModelPrediction(
            nodes=nodes,
            level_grid=level_grid,
            levels=levels,
            freshness=_mean(p.fresh for p in predictions),
            validity=_mean(p.valid for p in predictions),
            on_time_ratio=_mean(p.on_time for p in predictions),
            query_rate=self.query_rate,
            num_requesters=self.num_requesters,
        )

    def _level_cdfs(
        self, nodes: dict[tuple[int, int], NodePrediction]
    ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
        """Depth-averaged CDFs on a normalised time grid.

        Time is expressed in fractions of each item's refresh interval
        so items with different intervals average coherently; the grid
        spans the smallest normalised horizon across items.
        """
        max_frac = min(
            (
                self._horizon(self.catalog.get(item_id))
                / self.catalog.get(item_id).refresh_interval
                for item_id in self.trees
            ),
            default=3.0,
        )
        grid = np.linspace(0.0, max_frac, self.grid_points)
        levels: dict[int, np.ndarray] = {}
        counts: dict[int, int] = {}
        for (item_id, _), pred in nodes.items():
            interval = self.catalog.get(item_id).refresh_interval
            sampled = np.asarray(pred.distribution.at(grid * interval))
            if pred.depth in levels:
                levels[pred.depth] = levels[pred.depth] + sampled
                counts[pred.depth] += 1
            else:
                levels[pred.depth] = sampled.copy()
                counts[pred.depth] = 1
        for depth in levels:
            levels[depth] /= counts[depth]
        return grid, levels


def _mean(values) -> float:
    items = list(values)
    return sum(items) / len(items) if items else math.nan
