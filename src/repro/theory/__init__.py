"""Analytical freshness-guarantee model (the paper's math, end to end).

``repro.theory`` composes the per-edge closed forms of
:mod:`repro.core.replication` over a wired refresh hierarchy into
whole-scheme predictions, and diffs them against simulation:

- :class:`FreshnessModel` -- rates + trees + relay plans + catalog in,
  :class:`ModelPrediction` out (per-node and per-level delivery CDFs,
  renewal-average freshness/validity, on-time ratio, PASTA query
  predictions);
- :func:`compare` / :class:`ModelReport` -- predicted-vs-measured rows
  with an agreement verdict;
- :func:`agreement_band` -- the KS-anchored tolerance that says *how
  close the simulation must track the model* on a given trace.

See ``docs/MODEL.md`` for the derivations, `repro predict` for the CLI
entry point, and E16 for the validation sweep.
"""

from repro.theory.model import (
    DEFAULT_GRID_POINTS,
    DelayDistribution,
    FreshnessModel,
    ModelPrediction,
    NodePrediction,
    edge_delivery_cdf,
    relay_path_probability,
)
from repro.theory.validate import (
    BAND_FLOOR,
    BAND_SCALE,
    DEFAULT_METRICS,
    ModelReport,
    ModelRow,
    agreement_band,
    compare,
    measured_values,
)

__all__ = [
    "BAND_FLOOR",
    "BAND_SCALE",
    "DEFAULT_GRID_POINTS",
    "DEFAULT_METRICS",
    "DelayDistribution",
    "FreshnessModel",
    "ModelPrediction",
    "ModelReport",
    "ModelRow",
    "NodePrediction",
    "agreement_band",
    "compare",
    "edge_delivery_cdf",
    "measured_values",
    "relay_path_probability",
]
