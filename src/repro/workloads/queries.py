"""Query arrival scheduling.

Each requesting node issues queries as an independent Poisson process;
the queried item is drawn from a popularity distribution.  Arrivals are
pre-scheduled on the simulator's event heap before the run starts, so a
fixed seed yields an identical workload across schemes -- the paper-style
apples-to-apples comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.workloads.popularity import ZipfPopularity

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheme import SchemeRuntime


def schedule_queries(
    runtime: "SchemeRuntime",
    rate_per_node: float,
    duration: float,
    rng: np.random.Generator,
    requesters: Optional[Sequence[int]] = None,
    popularity: Optional[ZipfPopularity] = None,
    start: float = 0.0,
) -> int:
    """Schedule Poisson query arrivals onto ``runtime``'s simulator.

    ``rate_per_node`` is queries per requester per second over
    ``[start, start + duration]``.  ``requesters`` defaults to every
    node that is neither a source nor a caching node (the ordinary
    users).  Returns the number of queries scheduled.

    The runtime must have been built with ``with_queries=True``.
    """
    if not runtime.query_managers:
        raise ValueError("runtime was built without the query plane")
    if rate_per_node < 0:
        raise ValueError("rate_per_node must be non-negative")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if requesters is None:
        excluded = set(runtime.sources) | set(runtime.caching_nodes)
        requesters = [nid for nid in sorted(runtime.nodes) if nid not in excluded]
    if popularity is None:
        popularity = ZipfPopularity(runtime.catalog.item_ids, s=0.8)

    scheduled = 0
    for requester in requesters:
        manager = runtime.query_managers[requester]
        count = rng.poisson(rate_per_node * duration)
        if count == 0:
            continue
        times = np.sort(rng.random(count)) * duration + start
        items = popularity.sample_array(count, rng)
        for time, item_id in zip(times.tolist(), items.tolist()):
            runtime.sim.schedule_at(time, manager.issue_query, item_id)
            scheduled += 1
    return scheduled
