"""Item popularity distributions.

Data access in mobile networks is skewed: a few items attract most
queries.  The standard model -- and the one used by this research
line's evaluations -- is Zipf: item of rank ``r`` is requested with
probability proportional to ``1 / r**s``, with exponent ``s`` around
0.8 for web-like workloads.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class ZipfPopularity:
    """Zipf-distributed popularity over a fixed set of item ids.

    Items are ranked in the order given: ``item_ids[0]`` is the most
    popular.  ``s=0`` degenerates to uniform.
    """

    def __init__(self, item_ids: Sequence[int], s: float = 0.8) -> None:
        if len(item_ids) == 0:
            raise ValueError("need at least one item")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.item_ids = [int(i) for i in item_ids]
        self.s = float(s)
        weights = np.arange(1, len(self.item_ids) + 1, dtype=float) ** (-self.s)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    def pmf(self) -> np.ndarray:
        """Probability of each item, in rank order."""
        return self._pmf.copy()

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one item id."""
        index = int(np.searchsorted(self._cdf, rng.random(), side="right"))
        return self.item_ids[min(index, len(self.item_ids) - 1)]

    def sample_many(self, count: int, rng: np.random.Generator) -> list[int]:
        """Draw ``count`` item ids."""
        draws = rng.random(count)
        indexes = np.searchsorted(self._cdf, draws, side="right")
        last = len(self.item_ids) - 1
        return [self.item_ids[min(int(i), last)] for i in indexes]


class UniformPopularity(ZipfPopularity):
    """All items equally popular (``s = 0``)."""

    def __init__(self, item_ids: Sequence[int]) -> None:
        super().__init__(item_ids, s=0.0)
