"""Item popularity distributions.

Data access in mobile networks is skewed: a few items attract most
queries.  The standard model -- and the one used by this research
line's evaluations -- is Zipf: item of rank ``r`` is requested with
probability proportional to ``1 / r**s``, with exponent ``s`` around
0.8 for web-like workloads.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

# Normalisation constants depend only on (number of items, exponent),
# not on the item ids themselves, so every ZipfPopularity over the same
# shape can share one frozen (pmf, cdf) pair.  The live-service load
# generator constructs popularity objects in its hot path; without the
# cache each construction is an O(n) power + cumsum.
_NORMALISATION_CACHE: dict[tuple[int, float], tuple[np.ndarray, np.ndarray]] = {}


def _normalisation(n: int, s: float) -> tuple[np.ndarray, np.ndarray]:
    key = (n, s)
    cached = _NORMALISATION_CACHE.get(key)
    if cached is None:
        weights = np.arange(1, n + 1, dtype=float) ** (-s)
        pmf = weights / weights.sum()
        cdf = np.cumsum(pmf)
        pmf.flags.writeable = False
        cdf.flags.writeable = False
        cached = _NORMALISATION_CACHE[key] = (pmf, cdf)
    return cached


class ZipfPopularity:
    """Zipf-distributed popularity over a fixed set of item ids.

    Items are ranked in the order given: ``item_ids[0]`` is the most
    popular.  ``s=0`` degenerates to uniform.
    """

    def __init__(self, item_ids: Sequence[int], s: float = 0.8) -> None:
        if len(item_ids) == 0:
            raise ValueError("need at least one item")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.item_ids = [int(i) for i in item_ids]
        self.s = float(s)
        self._pmf, self._cdf = _normalisation(len(self.item_ids), self.s)
        self._ids_array = np.asarray(self.item_ids, dtype=np.int64)

    def pmf(self) -> np.ndarray:
        """Probability of each item, in rank order."""
        return self._pmf.copy()

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one item id."""
        index = int(np.searchsorted(self._cdf, rng.random(), side="right"))
        return self.item_ids[min(index, len(self.item_ids) - 1)]

    def sample_array(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` item ids as an int64 array (hot path)."""
        draws = rng.random(count)
        indexes = np.searchsorted(self._cdf, draws, side="right")
        np.minimum(indexes, len(self.item_ids) - 1, out=indexes)
        return self._ids_array[indexes]

    def sample_many(self, count: int, rng: np.random.Generator) -> list[int]:
        """Draw ``count`` item ids."""
        return [int(i) for i in self.sample_array(count, rng)]


class UniformPopularity(ZipfPopularity):
    """All items equally popular (``s = 0``)."""

    def __init__(self, item_ids: Sequence[int]) -> None:
        super().__init__(item_ids, s=0.0)
