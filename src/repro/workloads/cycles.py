"""Time-varying query workloads: diurnal cycles and flash crowds.

:func:`repro.workloads.queries.schedule_queries` drives a homogeneous
Poisson process -- fine for steady state, but real query load is not
flat.  This module adds two inhomogeneous arrival shapes, both
pre-scheduled onto the event heap so a fixed seed still yields an
identical workload across schemes:

- :class:`DiurnalCycle` modulates the per-node query rate with a 24-hour
  activity profile (people query during the day, not at 4am), using the
  standard thinning construction for inhomogeneous Poisson processes.
- :class:`FlashCrowd` layers a burst window on top: inside
  ``[start, start + length]`` the rate is multiplied by ``boost`` and
  popularity mass shifts toward the ``focus`` hottest items -- the
  breaking-news pattern that stresses freshness maintenance hardest,
  because demand spikes exactly when versions are churning.

Both are plain frozen dataclasses, picklable for sweep job specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.popularity import ZipfPopularity

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheme import SchemeRuntime

DAY = 86400.0
HOUR = 3600.0

# Fraction of the daily mean rate per hour-of-day; mirrors the mobility
# layer's DEFAULT_ACTIVITY shape (quiet nights, office-hours plateau).
DEFAULT_QUERY_ACTIVITY: Tuple[float, ...] = (
    0.2, 0.15, 0.1, 0.1, 0.1, 0.2,
    0.4, 0.8, 1.2, 1.5, 1.6, 1.6,
    1.5, 1.5, 1.6, 1.6, 1.5, 1.4,
    1.3, 1.2, 1.0, 0.8, 0.5, 0.3,
)


@dataclass(frozen=True)
class DiurnalCycle:
    """24-hour activity modulation of the query rate.

    ``activity`` holds one multiplier per hour of day, applied to the
    nominal ``rate_per_node``; values need not average to 1 (a profile
    averaging 1.2 simply means 20% more queries than the flat process).

    >>> DiurnalCycle().rate_multiplier(9.5 * HOUR)
    1.5
    >>> DiurnalCycle().rate_multiplier(25 * HOUR)  # wraps past midnight
    0.15
    """

    activity: Tuple[float, ...] = DEFAULT_QUERY_ACTIVITY

    def __post_init__(self) -> None:
        if len(self.activity) != 24:
            raise ValueError("activity must have 24 hourly multipliers")
        if any(a < 0 for a in self.activity):
            raise ValueError("activity multipliers must be non-negative")
        if max(self.activity) == 0:
            raise ValueError("activity must have at least one positive hour")

    def rate_multiplier(self, time: float) -> float:
        """The activity multiplier in effect at absolute ``time``."""
        hour = int((time % DAY) // HOUR)
        return self.activity[hour]

    def peak(self) -> float:
        """Largest hourly multiplier (the thinning envelope)."""
        return max(self.activity)


@dataclass(frozen=True)
class FlashCrowd:
    """A transient demand spike concentrated on popular items.

    During ``[start, start + length]`` the instantaneous query rate is
    multiplied by ``boost`` and, with probability ``focus_weight``, the
    queried item is redrawn uniformly from the ``focus`` most popular
    catalog items instead of the baseline distribution.

    >>> fc = FlashCrowd(start=6 * HOUR, length=2 * HOUR, boost=5.0)
    >>> fc.active_at(7 * HOUR), fc.active_at(9 * HOUR)
    (True, False)
    """

    start: float
    length: float
    boost: float = 4.0
    focus: int = 2
    focus_weight: float = 0.7

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.boost < 1:
            raise ValueError("boost must be >= 1")
        if self.focus < 1:
            raise ValueError("focus must be >= 1")
        if not 0 <= self.focus_weight <= 1:
            raise ValueError("focus_weight must be in [0, 1]")

    def active_at(self, time: float) -> bool:
        """Whether ``time`` falls inside the burst window."""
        return self.start <= time < self.start + self.length


@dataclass(frozen=True)
class QueryCycle:
    """Composition of an optional diurnal profile and flash crowds.

    This is the value the scenario registry builds from a
    ``[workload.cycle]`` table.  Either part may be absent; with both
    absent the process degenerates to the flat one (but is scheduled via
    thinning, so arrival times differ from
    :func:`~repro.workloads.queries.schedule_queries` even then).
    """

    diurnal: Optional[DiurnalCycle] = None
    crowds: Tuple[FlashCrowd, ...] = ()

    def rate_multiplier(self, time: float) -> float:
        """Combined multiplier: diurnal level times any active burst."""
        mult = self.diurnal.rate_multiplier(time) if self.diurnal else 1.0
        for crowd in self.crowds:
            if crowd.active_at(time):
                mult *= crowd.boost
        return mult

    def peak(self) -> float:
        """Upper bound on :meth:`rate_multiplier` over all times."""
        mult = self.diurnal.peak() if self.diurnal else 1.0
        for crowd in self.crowds:
            mult *= crowd.boost
        return mult

    def crowd_at(self, time: float) -> Optional[FlashCrowd]:
        """The first flash crowd active at ``time``, if any."""
        for crowd in self.crowds:
            if crowd.active_at(time):
                return crowd
        return None


def schedule_cycle_queries(
    runtime: "SchemeRuntime",
    rate_per_node: float,
    duration: float,
    rng: np.random.Generator,
    cycle: QueryCycle,
    requesters: Optional[Sequence[int]] = None,
    popularity: Optional[ZipfPopularity] = None,
    start: float = 0.0,
) -> int:
    """Schedule inhomogeneous Poisson query arrivals via thinning.

    Per requester, candidate arrivals are drawn from a homogeneous
    process at the envelope rate ``rate_per_node * cycle.peak()`` and
    each is kept with probability ``multiplier(t) / peak`` -- the
    classic Lewis-Shedler construction, which keeps the RNG consumption
    a deterministic function of the seed and the requester order.

    Items are drawn from ``popularity`` except inside a flash-crowd
    window, where with probability ``focus_weight`` the item is instead
    uniform over the ``focus`` most popular items.  Returns the number
    of queries scheduled.
    """
    if not runtime.query_managers:
        raise ValueError("runtime was built without the query plane")
    if rate_per_node < 0:
        raise ValueError("rate_per_node must be non-negative")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if requesters is None:
        excluded = set(runtime.sources) | set(runtime.caching_nodes)
        requesters = [nid for nid in sorted(runtime.nodes) if nid not in excluded]
    if popularity is None:
        popularity = ZipfPopularity(runtime.catalog.item_ids, s=0.8)
    peak = cycle.peak()
    # ZipfPopularity ranks item_ids[0] most popular; a flash crowd
    # focuses on that same head of the catalog.
    head = list(popularity.item_ids[: max(c.focus for c in cycle.crowds)]) if cycle.crowds else []

    scheduled = 0
    for requester in requesters:
        manager = runtime.query_managers[requester]
        count = rng.poisson(rate_per_node * peak * duration)
        if count == 0:
            continue
        times = np.sort(rng.random(count)) * duration + start
        keep_draws = rng.random(count)
        items = popularity.sample_array(count, rng)
        focus_draws = rng.random(count)
        focus_picks = rng.integers(0, max(len(head), 1), size=count)
        for k in range(count):
            time = float(times[k])
            if keep_draws[k] * peak >= cycle.rate_multiplier(time):
                continue
            item_id = int(items[k])
            crowd = cycle.crowd_at(time)
            if crowd is not None and focus_draws[k] < crowd.focus_weight:
                item_id = head[int(focus_picks[k]) % crowd.focus]
            runtime.sim.schedule_at(time, manager.issue_query, item_id)
            scheduled += 1
    return scheduled
