"""Workload generation: item popularity and query arrival processes."""

from repro.workloads.popularity import UniformPopularity, ZipfPopularity
from repro.workloads.queries import schedule_queries
from repro.workloads.cycles import (
    DEFAULT_QUERY_ACTIVITY,
    DiurnalCycle,
    FlashCrowd,
    QueryCycle,
    schedule_cycle_queries,
)

__all__ = [
    "DEFAULT_QUERY_ACTIVITY",
    "DiurnalCycle",
    "FlashCrowd",
    "QueryCycle",
    "UniformPopularity",
    "ZipfPopularity",
    "schedule_cycle_queries",
    "schedule_queries",
]
