"""Workload generation: item popularity and query arrival processes."""

from repro.workloads.popularity import UniformPopularity, ZipfPopularity
from repro.workloads.queries import schedule_queries

__all__ = ["UniformPopularity", "ZipfPopularity", "schedule_queries"]
