"""Data items, versions, and ground-truth version history.

A :class:`DataItem` is produced by one *source* node and refreshed
periodically: the source generates version 1, 2, 3, ... at (roughly)
``refresh_interval`` spacing.  A cached copy of version ``v`` is

- **fresh** at time ``t`` while ``v`` is still the source's current
  version, and
- **valid** (unexpired) while ``t < creation_time(v) + lifetime``.

Serving stale-but-unexpired data may still be acceptable; serving
expired data never is.  The per-item ``freshness_requirement`` is the
probability target the scheme's probabilistic replication must meet.

:class:`VersionHistory` records, per item, when each version was
generated -- the ground truth the metrics layer compares cached copies
against.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np


@dataclass(frozen=True)
class DataItem:
    """An identifiable, periodically refreshed data item."""

    item_id: int
    source: int
    refresh_interval: float
    lifetime: float
    size: int = 1024
    freshness_requirement: float = 0.9

    def __post_init__(self) -> None:
        if self.refresh_interval <= 0:
            raise ValueError("refresh_interval must be positive")
        if self.lifetime <= 0:
            raise ValueError("lifetime must be positive")
        if not 0 < self.freshness_requirement < 1:
            raise ValueError("freshness_requirement must be in (0, 1)")
        if self.size <= 0:
            raise ValueError("size must be positive")


@dataclass
class CacheEntry:
    """A cached copy of one version of one item."""

    item_id: int
    version: int
    version_time: float
    cached_at: float
    access_count: int = 0
    last_access: float = field(default=0.0)

    def expired(self, now: float, item: DataItem) -> bool:
        """True once this version has outlived the item's lifetime."""
        return now >= self.version_time + item.lifetime


class VersionHistory:
    """Ground-truth record of when each version of each item appeared."""

    def __init__(self) -> None:
        self._times: dict[int, list[float]] = {}

    def record(self, item_id: int, version: int, time: float) -> None:
        """Record that ``version`` of ``item_id`` was generated at ``time``.

        Versions must be recorded in order starting from 1.
        """
        times = self._times.setdefault(item_id, [])
        if version != len(times) + 1:
            raise ValueError(
                f"item {item_id}: expected version {len(times) + 1}, got {version}"
            )
        if times and time < times[-1]:
            raise ValueError(f"item {item_id}: version {version} goes back in time")
        times.append(time)

    def current_version(self, item_id: int, now: float) -> int:
        """Latest version generated at or before ``now`` (0 = none yet)."""
        times = self._times.get(item_id, [])
        return bisect_right(times, now)

    def version_time(self, item_id: int, version: int) -> float:
        """Generation time of ``version`` of ``item_id``."""
        times = self._times.get(item_id, [])
        if not 1 <= version <= len(times):
            raise KeyError(f"item {item_id} has no version {version}")
        return times[version - 1]

    def num_versions(self, item_id: int) -> int:
        return len(self._times.get(item_id, []))

    def is_fresh(self, item_id: int, version: int, now: float) -> bool:
        """Whether ``version`` is still the current version at ``now``."""
        return version == self.current_version(item_id, now) and version > 0


class DataCatalog:
    """The set of items in a simulation, with lookup helpers."""

    def __init__(self, items: Optional[list[DataItem]] = None) -> None:
        self._items: dict[int, DataItem] = {}
        for item in items or []:
            self.add(item)

    def add(self, item: DataItem) -> None:
        if item.item_id in self._items:
            raise ValueError(f"duplicate item id {item.item_id}")
        self._items[item.item_id] = item

    def get(self, item_id: int) -> DataItem:
        return self._items[item_id]

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items.values())

    @property
    def item_ids(self) -> list[int]:
        return sorted(self._items)

    def items_of_source(self, source: int) -> list[DataItem]:
        return [item for item in self._items.values() if item.source == source]

    @classmethod
    def uniform(
        cls,
        num_items: int,
        sources: list[int],
        refresh_interval: float,
        lifetime: Optional[float] = None,
        size: int = 1024,
        freshness_requirement: float = 0.9,
        rng: Optional[np.random.Generator] = None,
    ) -> "DataCatalog":
        """Catalog of ``num_items`` identical items spread over ``sources``.

        Sources are assigned round-robin (or uniformly at random when an
        ``rng`` is given).  ``lifetime`` defaults to twice the refresh
        interval: a copy survives missing one refresh but not two.
        """
        if num_items < 1:
            raise ValueError("need at least one item")
        if not sources:
            raise ValueError("need at least one source node")
        life = 2.0 * refresh_interval if lifetime is None else lifetime
        catalog = cls()
        for k in range(num_items):
            if rng is not None:
                source = int(sources[int(rng.integers(0, len(sources)))])
            else:
                source = int(sources[k % len(sources)])
            catalog.add(
                DataItem(
                    item_id=k,
                    source=source,
                    refresh_interval=refresh_interval,
                    lifetime=life,
                    size=size,
                    freshness_requirement=freshness_requirement,
                )
            )
        return catalog
