"""On-path caching strategies: LCE and LCD over the response plane.

ICN-style on-path caching (the icarus taxonomy) caches content at nodes
a response *passes through*, not just at the designated caching nodes:

- **LCE** (leave copy everywhere): every node that takes custody of a
  response caches the carried version.
- **LCD** (leave copy down): only the node that receives the response
  *directly from the answering node* caches it, so each request moves
  the content one hop down toward the requesters instead of smearing it
  along the whole path.

In a DTN the "path" is the store-carry-forward custody chain of the
response message, observed via
:meth:`repro.routing.base.RoutingAgent.on_custody`.  Ordinary nodes get
a small bounded :class:`~repro.caching.store.CacheStore` (LRU by
default) that doubles as their :class:`~repro.caching.query.QueryManager`
store, so an on-path copy can answer later queries locally or from one
hop away.  Designated caching nodes reuse their refresh-plane store: a
passing response carrying a strictly newer version upgrades it (the
store's version guard makes stale responses a no-op), which flows
through the freshness accountant like any other refresh.

The extra per-node stores are invisible to the freshness accountant
(it only tracks designated caching nodes), so the dominant effect is on
query metrics -- hit rate, delay, freshness of answers -- which is
exactly the axis these strategies trade on.  Freshness can still shift
slightly: a response transiting a designated caching node may carry a
newer version than its store holds, and the resulting upgrade is a
legitimate refresh the accountant records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.caching.items import CacheEntry
from repro.caching.store import CacheStore, EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.base import RoutingAgent
    from repro.sim.messages import Message
    from repro.sim.node import Node

STRATEGIES = ("lce", "lcd")


@dataclass(frozen=True)
class OnPathConfig:
    """Which on-path strategy to run and how big the extra stores are.

    ``capacity`` bounds the per-node on-path store (ordinary nodes
    only; designated caching nodes keep their configured store).

    >>> OnPathConfig("lce").strategy
    'lce'
    >>> OnPathConfig("lcu")
    Traceback (most recent call last):
      ...
    ValueError: unknown on-path strategy 'lcu'; choose from ('lce', 'lcd')
    """

    strategy: str = "lce"
    capacity: int = 8
    policy: EvictionPolicy = EvictionPolicy.LRU

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown on-path strategy {self.strategy!r}; "
                f"choose from {STRATEGIES}"
            )
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    def make_store(self) -> CacheStore:
        """A bounded store for one ordinary node."""
        return CacheStore(capacity=self.capacity, policy=self.policy)


def attach_onpath(agent: "RoutingAgent", store: CacheStore, config: OnPathConfig) -> None:
    """Cache response custody into ``store`` per ``config.strategy``.

    Registers an ``on_custody`` hook on the node's response-plane
    routing ``agent``.  LCE caches every custody; LCD caches only when
    the response came directly from the node that answered it
    (``payload["served_by"]``).
    """

    lcd = config.strategy == "lcd"

    def custody(message: "Message", sender: "Node") -> None:
        payload = message.payload
        if lcd and sender.node_id != payload["served_by"]:
            return
        now = agent.node.sim.now
        store.put(
            CacheEntry(
                item_id=payload["item_id"],
                version=payload["version"],
                version_time=payload["version_time"],
                cached_at=now,
            ),
            now,
        )

    agent.on_custody("response", custody)
