"""Cache placement policies: popularity-ranked replicas, geographic spread.

The base experiments replicate *every* item on *every* caching node (the
paper's setting).  Two related lines relax that:

- **Popularity-ranking cooperative caching** (Wang & Kulkarni): caching
  nodes cooperate on a shared replica budget, allocating more replicas
  to popular items and deduplicating placements across nodes instead of
  all caching the same head items.  :class:`PopularityPlacement` assigns
  each item a replica count proportional to its Zipf probability and
  places the replicas round-robin over centrality-ranked caching nodes.
  Unassigned (node, item) slots stay empty and count against freshness
  -- the budget/freshness trade-off these schemes measure.

- **Geographic-constraint placement** (Avrachenkov, Goseling &
  Serbetci): caches should be *spread out*, not clustered where density
  is highest.  Without coordinates, pairwise contact rate is the
  natural proximity proxy (nodes that meet constantly are co-located).
  :class:`GeographicPlacement` selects caching nodes greedily by
  centrality while rejecting candidates whose contact rate to any
  already-selected node exceeds a quantile of the positive pairwise
  rates -- high coverage, low mutual overlap.

Both are frozen dataclasses so they can ride inside pickled sweep-job
specs, and both plug into :func:`repro.core.scheme.build_simulation`
via its ``placement`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.caching.ncl import DEFAULT_WINDOW
from repro.contacts.centrality import contact_centrality, rank_nodes
from repro.contacts.rates import RateTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.caching.items import DataCatalog


@dataclass(frozen=True)
class PlacementPolicy:
    """Base class: hooks a policy may implement.

    ``select_nodes`` may replace NCL caching-node selection;
    ``assign`` may restrict which caching nodes hold which item.
    Returning ``None`` from either keeps the default behaviour.
    """

    def select_nodes(
        self,
        rates: RateTable,
        k: int,
        exclude: set[int],
        window: float = DEFAULT_WINDOW,
    ) -> Optional[list[int]]:
        return None

    def assign(
        self,
        catalog: "DataCatalog",
        caching_nodes: list[int],
        rates: RateTable,
        window: float = DEFAULT_WINDOW,
    ) -> Optional[dict[int, tuple[int, ...]]]:
        return None


@dataclass(frozen=True)
class PopularityPlacement(PlacementPolicy):
    """Budgeted replica allocation proportional to Zipf popularity.

    The shared budget is ``budget_fraction`` of the full replication
    grid (``num_items * num_caching_nodes`` slots).  Item ``i`` (in
    catalog order, most popular first -- the ordering
    :class:`~repro.workloads.popularity.ZipfPopularity` uses) receives
    replicas proportional to ``(i + 1) ** -s``, at least one each,
    apportioned by largest remainder.  Replicas are dealt round-robin
    over the centrality ranking so no two consecutive-popularity items
    pile onto the same node -- the cooperative dedup.
    """

    s: float = 0.8
    budget_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.s < 0:
            raise ValueError("s must be non-negative")
        if not 0 < self.budget_fraction <= 1:
            raise ValueError("budget_fraction must be in (0, 1]")

    def replica_counts(self, num_items: int, num_nodes: int) -> list[int]:
        """Replicas per item rank under the budget (sums to the budget).

        >>> PopularityPlacement(s=1.0, budget_fraction=0.5).replica_counts(4, 6)
        [6, 3, 2, 1]
        """
        if num_items < 1 or num_nodes < 1:
            raise ValueError("need at least one item and one node")
        budget = max(num_items, int(round(num_items * num_nodes * self.budget_fraction)))
        budget = min(budget, num_items * num_nodes)
        pmf = (np.arange(1, num_items + 1, dtype=np.float64)) ** -self.s
        pmf /= pmf.sum()
        # Largest-remainder apportionment with a floor of 1 and a
        # ceiling of num_nodes per item.
        ideal = pmf * budget
        counts = np.clip(np.floor(ideal).astype(np.int64), 1, num_nodes)
        remainder = budget - int(counts.sum())
        if remainder > 0:
            frac = ideal - np.floor(ideal)
            # Most-deserving first; item index breaks ties deterministically.
            order = np.lexsort((np.arange(num_items), -frac))
            for idx in list(order) * num_nodes:
                if remainder == 0:
                    break
                if counts[idx] < num_nodes:
                    counts[idx] += 1
                    remainder -= 1
        elif remainder < 0:
            order = np.lexsort((np.arange(num_items), counts))
            for idx in list(order)[::-1] * num_nodes:
                if remainder == 0:
                    break
                if counts[idx] > 1:
                    counts[idx] -= 1
                    remainder += 1
        return counts.tolist()

    def assign(
        self,
        catalog: "DataCatalog",
        caching_nodes: list[int],
        rates: RateTable,
        window: float = DEFAULT_WINDOW,
    ) -> dict[int, tuple[int, ...]]:
        """Per-item caching-node subsets under the replica budget."""
        nodes = sorted(int(n) for n in caching_nodes)
        scores = contact_centrality(rates, window, node_ids=nodes)
        ranked = rank_nodes(scores, top=len(nodes))
        counts = self.replica_counts(len(catalog), len(nodes))
        assignment: dict[int, tuple[int, ...]] = {}
        cursor = 0
        for item, count in zip(catalog, counts):
            picked = [ranked[(cursor + j) % len(ranked)] for j in range(count)]
            assignment[item.item_id] = tuple(sorted(picked))
            cursor = (cursor + count) % len(ranked)
        return assignment


@dataclass(frozen=True)
class GeographicPlacement(PlacementPolicy):
    """Spread-constrained caching-node selection.

    Candidates are ranked by contact centrality and picked greedily; a
    candidate is rejected while its contact rate to *any* already-picked
    node exceeds the ``spread_quantile`` quantile of all positive
    pairwise rates among candidates (it would sit "too close" to an
    existing cache).  If the constraint would leave the quota unmet,
    the remaining slots are filled by plain centrality order -- the
    constraint relaxes rather than fails.
    """

    spread_quantile: float = 0.8

    def __post_init__(self) -> None:
        if not 0 < self.spread_quantile <= 1:
            raise ValueError("spread_quantile must be in (0, 1]")

    def select_nodes(
        self,
        rates: RateTable,
        k: int,
        exclude: set[int],
        window: float = DEFAULT_WINDOW,
    ) -> list[int]:
        if k < 1:
            raise ValueError("k must be >= 1")
        candidates = sorted(rates.nodes() - set(exclude))
        if len(candidates) < k:
            raise ValueError(f"only {len(candidates)} candidates for k={k}")
        scores = contact_centrality(rates, window, node_ids=candidates)
        ranked = rank_nodes(scores, top=len(candidates))
        positive = [
            rates.rate(a, b)
            for i, a in enumerate(candidates)
            for b in candidates[i + 1 :]
            if rates.rate(a, b) > 0
        ]
        if not positive:
            return sorted(ranked[:k])
        threshold = float(np.quantile(np.asarray(positive), self.spread_quantile))
        picked: list[int] = []
        for nid in ranked:
            if len(picked) == k:
                break
            if all(rates.rate(nid, other) <= threshold for other in picked):
                picked.append(nid)
        if len(picked) < k:  # constraint too tight: relax to centrality order
            for nid in ranked:
                if len(picked) == k:
                    break
                if nid not in picked:
                    picked.append(nid)
        return sorted(picked)
