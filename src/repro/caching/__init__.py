"""Cooperative caching substrate.

The freshness scheme runs on top of cooperative caching: data items are
generated at source nodes, cached at a set of *caching nodes* (selected
by contact centrality -- the "network central locations"), and queried
by everyone else over opportunistic contacts.

- :mod:`repro.caching.items` -- data items, source version clocks and
  the ground-truth version history used for freshness accounting.
- :mod:`repro.caching.store` -- per-node cache stores with LRU/FIFO/LFU
  eviction.
- :mod:`repro.caching.ncl` -- caching-node (NCL) selection.
- :mod:`repro.caching.query` -- query dissemination and response
  delivery, with per-query outcome records.
- :mod:`repro.caching.onpath` -- LCE/LCD on-path caching of responses.
- :mod:`repro.caching.placement` -- popularity-budgeted and
  geographic-spread cache placement policies.
"""

from repro.caching.items import (
    CacheEntry,
    DataCatalog,
    DataItem,
    VersionHistory,
)
from repro.caching.store import CacheStore, EvictionPolicy
from repro.caching.ncl import select_caching_nodes
from repro.caching.onpath import OnPathConfig, attach_onpath
from repro.caching.placement import (
    GeographicPlacement,
    PlacementPolicy,
    PopularityPlacement,
)
from repro.caching.query import QueryManager, QueryRecord

__all__ = [
    "CacheEntry",
    "CacheStore",
    "DataCatalog",
    "DataItem",
    "EvictionPolicy",
    "GeographicPlacement",
    "OnPathConfig",
    "PlacementPolicy",
    "PopularityPlacement",
    "QueryManager",
    "QueryRecord",
    "VersionHistory",
    "attach_onpath",
    "select_caching_nodes",
]
