"""Per-node cache store with pluggable eviction.

Each caching node owns one :class:`CacheStore`: a bounded map of
``item_id -> CacheEntry``.  Refresh schemes call :meth:`CacheStore.put`
with newer versions; the query path calls :meth:`CacheStore.lookup`
(which records the access for LRU/LFU eviction).

Eviction only matters when the store is smaller than the set of items a
node is asked to cache; the paper-style experiments give caching nodes
room for their assigned items, and the eviction policies exist for the
cache-pressure ablation.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Optional

from repro.caching.items import CacheEntry, DataItem

from repro.obs.records import CacheEvict, CacheExpire, CachePut, CacheRemove


#: Signature of a store change listener: ``(item_id, old, new, now)``.
#: ``old``/``new`` are ``None`` for inserts/removals respectively; ``now``
#: is NaN for removals that carry no timestamp (:meth:`CacheStore.remove`).
ChangeListener = Callable[[int, Optional[CacheEntry], Optional[CacheEntry], float], None]


class EvictionPolicy(enum.Enum):
    """Which entry to discard when the store is full."""

    LRU = "lru"
    FIFO = "fifo"
    LFU = "lfu"


class CacheStore:
    """Bounded per-node store of cached item versions."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        policy: EvictionPolicy = EvictionPolicy.LRU,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.policy = policy
        self._entries: dict[int, CacheEntry] = {}
        self.evictions = 0
        #: Optional hook fired on every entry mutation (insert, upgrade,
        #: eviction, removal).  All mutations flow through this class, so
        #: a listener sees the store's exact contents incrementally --
        #: the freshness accountant keys off this.
        self.change_listener: Optional[ChangeListener] = None
        #: Optional :class:`repro.obs.bus.EventBus`, plus the node id used
        #: to attribute records.  Separate from ``change_listener`` (whose
        #: single slot the freshness accountant occupies, and whose
        #: signature cannot distinguish evict/expire/remove).
        self.trace = None
        self.trace_node: int = -1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._entries

    def item_ids(self) -> list[int]:
        return sorted(self._entries)

    def entries(self) -> list[CacheEntry]:
        return list(self._entries.values())

    def peek(self, item_id: int) -> Optional[CacheEntry]:
        """Entry for ``item_id`` without recording an access."""
        return self._entries.get(item_id)

    def lookup(self, item_id: int, now: float) -> Optional[CacheEntry]:
        """Entry for ``item_id``, recording the access for eviction."""
        entry = self._entries.get(item_id)
        if entry is not None:
            entry.access_count += 1
            entry.last_access = now
        return entry

    def put(self, entry: CacheEntry, now: float) -> bool:
        """Insert or upgrade the entry for ``entry.item_id``.

        An existing entry is only replaced by a strictly newer version.
        Returns ``True`` if the store changed.
        """
        current = self._entries.get(entry.item_id)
        if current is not None:
            if entry.version <= current.version:
                return False
            # Preserve access statistics across refreshes.
            entry.access_count = current.access_count
            entry.last_access = current.last_access
            self._entries[entry.item_id] = entry
            if self.change_listener is not None:
                self.change_listener(entry.item_id, current, entry, now)
            if self.trace is not None:
                self.trace.emit(
                    CachePut(now, self.trace_node, entry.item_id,
                             entry.version, True)
                )
            return True
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self._evict(now)
        self._entries[entry.item_id] = entry
        if self.change_listener is not None:
            self.change_listener(entry.item_id, None, entry, now)
        if self.trace is not None:
            self.trace.emit(
                CachePut(now, self.trace_node, entry.item_id,
                         entry.version, False)
            )
        return True

    def remove(self, item_id: int) -> bool:
        old = self._entries.pop(item_id, None)
        if old is not None and self.change_listener is not None:
            self.change_listener(item_id, old, None, math.nan)
        if old is not None and self.trace is not None:
            self.trace.emit(
                CacheRemove(math.nan, self.trace_node, item_id, old.version)
            )
        return old is not None

    def clear(self, now: float) -> int:
        """Remove every entry (a crashed device losing its cache).

        Each removal flows through ``change_listener`` with the real
        timestamp, so incremental accounting (the freshness accountant)
        stays consistent; traced stores emit one ``cache.remove`` per
        entry.  Returns the number of entries dropped.
        """
        dropped = list(self._entries.items())
        self._entries.clear()
        for item_id, old in dropped:
            if self.change_listener is not None:
                self.change_listener(item_id, old, None, now)
            if self.trace is not None:
                self.trace.emit(
                    CacheRemove(now, self.trace_node, item_id, old.version)
                )
        return len(dropped)

    def drop_expired(self, now: float, items: dict[int, DataItem]) -> int:
        """Remove entries whose version has expired; returns the count."""
        dead = [
            item_id
            for item_id, entry in self._entries.items()
            if item_id in items and entry.expired(now, items[item_id])
        ]
        for item_id in dead:
            old = self._entries.pop(item_id)
            if self.change_listener is not None:
                self.change_listener(item_id, old, None, now)
            if self.trace is not None:
                self.trace.emit(
                    CacheExpire(now, self.trace_node, item_id, old.version)
                )
        return len(dead)

    def _evict(self, now: float) -> None:
        if not self._entries:
            return
        if self.policy is EvictionPolicy.LRU:
            victim = min(
                self._entries.values(), key=lambda e: (e.last_access, e.item_id)
            )
        elif self.policy is EvictionPolicy.FIFO:
            victim = min(self._entries.values(), key=lambda e: (e.cached_at, e.item_id))
        else:  # LFU
            victim = min(
                self._entries.values(), key=lambda e: (e.access_count, e.item_id)
            )
        del self._entries[victim.item_id]
        self.evictions += 1
        if self.change_listener is not None:
            self.change_listener(victim.item_id, victim, None, now)
        if self.trace is not None:
            self.trace.emit(
                CacheEvict(now, self.trace_node, victim.item_id, victim.version)
            )
