"""Caching-node (NCL) selection.

Cooperative caching in this research line places data at *network
central locations*: the nodes whose contact processes reach the rest of
the network fastest.  Selection ranks nodes by a centrality metric over
the estimated pairwise rates and takes the top ``k``, always including
each item's source implicitly (sources hold their own data regardless).

Metrics:

- ``"contact"`` (default) -- expected distinct nodes met within a window
  (the metric of the paper's caching substrate);
- ``"degree"`` -- total contact rate;
- ``"betweenness"`` -- delay-weighted betweenness;
- ``"random"`` -- uniform random selection (ablation baseline).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.contacts import rates as rates_module
from repro.contacts.centrality import (
    betweenness_centrality,
    contact_centrality,
    contact_centrality_array,
    degree_centrality,
    degree_centrality_array,
    rank_nodes,
)
from repro.contacts.graph import contact_graph
from repro.contacts.rates import RateTable

DEFAULT_WINDOW = 6 * 3600.0


def select_caching_nodes(
    rates: RateTable,
    k: int,
    metric: str = "contact",
    window: float = DEFAULT_WINDOW,
    exclude: Optional[set[int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> list[int]:
    """Select ``k`` caching nodes by the given centrality metric.

    ``exclude`` removes candidates (e.g. nodes reserved as pure
    sources).  The ``"random"`` metric requires ``rng``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if (
        rates.is_array_backed
        and rates_module.VECTORISED_RATES
        and metric in ("contact", "degree")
    ):
        return _select_array(rates, k, metric, window, exclude)
    candidates = sorted(rates.nodes() - (exclude or set()))
    if len(candidates) < k:
        raise ValueError(f"only {len(candidates)} candidates for k={k}")

    if metric == "random":
        if rng is None:
            raise ValueError("random selection needs an rng")
        picked = rng.choice(len(candidates), size=k, replace=False)
        return sorted(candidates[i] for i in picked)

    if metric == "contact":
        scores = contact_centrality(rates, window, node_ids=candidates)
    elif metric == "degree":
        scores = degree_centrality(rates, node_ids=candidates)
    elif metric == "betweenness":
        graph = contact_graph(rates).subgraph(candidates)
        scores = betweenness_centrality(graph)
        scores = {nid: scores.get(nid, 0.0) for nid in candidates}
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return rank_nodes(scores, top=k)


def _select_array(
    rates: RateTable,
    k: int,
    metric: str,
    window: float,
    exclude: Optional[set[int]],
) -> list[int]:
    """Array fast path: score candidates and rank without dicts.

    Produces the same selection as the scalar path -- candidates ascend,
    scores accumulate in the same order, and the ranking key is
    ``(-score, id)`` like :func:`rank_nodes`.
    """
    candidates = rates.node_array()
    if exclude:
        candidates = candidates[~np.isin(candidates, sorted(exclude))]
    if len(candidates) < k:
        raise ValueError(f"only {len(candidates)} candidates for k={k}")
    if metric == "contact":
        scores = contact_centrality_array(rates, window, candidates)
    else:
        scores = degree_centrality_array(rates, candidates)
    order = np.lexsort((candidates, -scores))
    return candidates[order[:k]].tolist()
