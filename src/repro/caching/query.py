"""Query dissemination and response delivery.

Data access works in two legs:

1. **Query flood** -- the requester's :class:`QueryManager` propagates a
   small query message epidemically (bounded by a hop budget and a TTL)
   until it reaches a node that can answer: a caching node holding the
   item, or the item's source.
2. **Response routing** -- the answering node builds a response carrying
   the version it holds and hands it to its routing agent addressed to
   the requester.

The requester keeps a :class:`QueryRecord` per query; whether the served
version was *fresh* or *valid* is judged afterwards by the metrics layer
against the ground-truth :class:`~repro.caching.items.VersionHistory`
(nodes themselves cannot know the source's current version -- that is
the whole problem the paper addresses).

Answer lookup is provider-based: by default a node answers from its
cache store; the refresh schemes register an authoritative provider on
source nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.caching.items import DataCatalog
from repro.caching.store import CacheStore
from repro.obs.records import QueryComplete, QueryHit, QueryIssue, QueryMiss

from repro.routing.base import RoutingAgent
from repro.sim.messages import Message
from repro.sim.node import Node, ProtocolHandler
from repro.sim.stats import StatsRegistry

#: An answer provider returns ``(version, version_time)`` or ``None``.
AnswerProvider = Callable[[int], Optional[tuple[int, float]]]

_QUERY_IDS = itertools.count(1)

QUERY_SIZE = 64
RESPONSE_OVERHEAD = 64


@dataclass
class QueryRecord:
    """Outcome of one query, judged later against ground truth."""

    query_id: int
    requester: int
    item_id: int
    issued_at: float
    answered_at: Optional[float] = None
    version: Optional[int] = None
    version_time: Optional[float] = None
    served_by: Optional[int] = None

    @property
    def answered(self) -> bool:
        return self.answered_at is not None

    @property
    def delay(self) -> Optional[float]:
        return None if self.answered_at is None else self.answered_at - self.issued_at


class QueryManager(ProtocolHandler):
    """Per-node query origination, forwarding, and answering."""

    handled_kinds = frozenset({"query"})

    def __init__(
        self,
        catalog: DataCatalog,
        store: Optional[CacheStore] = None,
        hop_limit: int = 4,
        query_ttl: float = 6 * 3600.0,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        super().__init__()
        self.catalog = catalog
        self.store = store
        self.hop_limit = hop_limit
        self.query_ttl = query_ttl
        self.stats = stats or StatsRegistry()
        self.records: list[QueryRecord] = []
        self._records_by_id: dict[int, QueryRecord] = {}
        #: queries this node carries and may still forward
        self._carried: dict[int, Message] = {}
        self._forwarded_to: dict[int, set[int]] = {}
        self._answered: set[int] = set()
        self.providers: list[AnswerProvider] = []
        if store is not None:
            self.providers.append(self._store_provider)
        #: optional :class:`repro.obs.bus.EventBus` for query records
        self.trace = None

    # -- wiring ----------------------------------------------------------

    def on_start(self) -> None:
        agent = self.node.find_handler(RoutingAgent)
        if agent is not None:
            agent.on_delivery("response", self._on_response)

    def add_provider(self, provider: AnswerProvider) -> None:
        """Register an answer source tried before the cache store."""
        self.providers.insert(0, provider)

    def _store_provider(self, item_id: int) -> Optional[tuple[int, float]]:
        if self.store is None:
            return None
        entry = self.store.lookup(item_id, self.node.sim.now)
        if entry is None:
            return None
        return entry.version, entry.version_time

    # -- query origination -------------------------------------------------

    def issue_query(self, item_id: int) -> QueryRecord:
        """Issue a query for ``item_id`` from this node."""
        if item_id not in self.catalog:
            raise KeyError(f"unknown item {item_id}")
        now = self.node.sim.now
        record = QueryRecord(
            query_id=next(_QUERY_IDS),
            requester=self.node.node_id,
            item_id=item_id,
            issued_at=now,
        )
        self.records.append(record)
        self._records_by_id[record.query_id] = record
        self.stats.counter("query.issued").add(1)
        if self.trace is not None:
            self.trace.emit(
                QueryIssue(now, self.node.node_id, record.query_id, item_id)
            )

        # Local hit: the requester itself may hold (or source) the item.
        answer = self._find_answer(item_id)
        if answer is not None:
            version, version_time = answer
            if self.trace is not None:
                self.trace.emit(
                    QueryHit(now, self.node.node_id, record.query_id,
                             item_id, answer[0], True)
                )
            self._record_answer(record, version, version_time, self.node.node_id, now)
            return record

        message = Message(
            kind="query",
            src=self.node.node_id,
            dst=None,
            created_at=now,
            size=QUERY_SIZE,
            ttl=self.query_ttl,
            hops_left=self.hop_limit,
            payload={"query_id": record.query_id, "item_id": item_id},
        )
        self._carried[record.query_id] = message
        self._forwarded_to[record.query_id] = set()
        for peer_id in self.node.neighbors:
            self._forward_to(message, self.node.network.nodes[peer_id])
        return record

    # -- contact machinery --------------------------------------------------

    def on_contact_start(self, peer: Node) -> None:
        now = self.node.sim.now
        for query_id, message in list(self._carried.items()):
            if message.expired(now):
                del self._carried[query_id]
                self._forwarded_to.pop(query_id, None)
                continue
            self._forward_to(message, peer)

    def _forward_to(self, message: Message, peer: Node) -> None:
        query_id = message.payload["query_id"]
        if message.hops_left is not None and message.hops_left <= 0:
            return
        given = self._forwarded_to.setdefault(query_id, set())
        if peer.node_id in given:
            return
        peer_manager = peer.find_handler(QueryManager)
        if isinstance(peer_manager, QueryManager) and query_id in peer_manager._carried:
            return  # peer already carries it (summary-vector shortcut)
        outgoing = message.copy()
        if outgoing.hops_left is not None:
            outgoing.hops_left -= 1
        if self.node.send(outgoing, peer):
            given.add(peer.node_id)
            self.stats.counter("query.forwarded").add(1)

    def on_message(self, message: Message, sender: Node) -> None:
        if message.kind != "query":
            return
        query_id = message.payload["query_id"]
        item_id = message.payload["item_id"]
        now = self.node.sim.now
        if query_id in self._carried or query_id in self._answered:
            return
        answer = self._find_answer(item_id)
        if answer is not None:
            self._answered.add(query_id)
            if self.trace is not None:
                self.trace.emit(
                    QueryHit(now, self.node.node_id, query_id, item_id,
                             answer[0], False)
                )
            self._send_response(message, answer)
            return
        # Cannot answer: keep carrying the query.
        if self.trace is not None:
            self.trace.emit(
                QueryMiss(now, self.node.node_id, query_id, item_id)
            )
        self._carried[query_id] = message
        self._forwarded_to.setdefault(query_id, set()).add(sender.node_id)
        for peer_id in self.node.neighbors:
            if peer_id != sender.node_id:
                self._forward_to(message, self.node.network.nodes[peer_id])

    # -- answering ----------------------------------------------------------

    def _find_answer(self, item_id: int) -> Optional[tuple[int, float]]:
        for provider in self.providers:
            answer = provider(item_id)
            if answer is not None:
                return answer
        return None

    def _send_response(self, query: Message, answer: tuple[int, float]) -> None:
        version, version_time = answer
        item = self.catalog.get(query.payload["item_id"])
        response = Message(
            kind="response",
            src=self.node.node_id,
            dst=query.src,
            created_at=self.node.sim.now,
            size=item.size + RESPONSE_OVERHEAD,
            ttl=self.query_ttl,
            payload={
                "query_id": query.payload["query_id"],
                "item_id": item.item_id,
                "version": version,
                "version_time": version_time,
                "served_by": self.node.node_id,
            },
        )
        self.stats.counter("query.answered").add(1)
        agent = self.node.find_handler(RoutingAgent)
        if agent is None:
            raise RuntimeError(
                f"node {self.node.node_id} answers queries but has no routing agent"
            )
        agent.originate(response)

    def _on_response(self, message: Message) -> None:
        record = self._records_by_id.get(message.payload["query_id"])
        if record is None or record.answered:
            return
        self._record_answer(
            record,
            message.payload["version"],
            message.payload["version_time"],
            message.payload["served_by"],
            self.node.sim.now,
        )
        # Stop forwarding the satisfied query.
        self._carried.pop(record.query_id, None)
        self._forwarded_to.pop(record.query_id, None)

    def _record_answer(
        self,
        record: QueryRecord,
        version: int,
        version_time: float,
        served_by: int,
        now: float,
    ) -> None:
        record.answered_at = now
        record.version = version
        record.version_time = version_time
        record.served_by = served_by
        self.stats.counter("query.completed").add(1)
        self.stats.tally("query.delay").observe(now - record.issued_at)
        if self.trace is not None:
            self.trace.emit(
                QueryComplete(now, record.requester, record.query_id,
                              record.item_id, served_by,
                              now - record.issued_at)
            )
