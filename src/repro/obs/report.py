"""Render ``repro report`` text from a trace summary.

The report answers the two questions end-of-run aggregates cannot:
*where did the messages go* (per-kind flow table plus the busiest
links) and *how did cache freshness evolve* (hourly timeline of
upgrades vs expirations).  It consumes the plain summary dict from
:func:`repro.obs.export.summarize_trace`, so it works on any trace --
fresh from a bus, reloaded from JSONL, or merged from a manifest.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import format_table
from repro.obs.export import summarize_trace
from repro.obs.records import TraceRecord

#: timeline rows beyond this are resampled into coarser buckets
_MAX_TIMELINE_ROWS = 14


def _span_text(span) -> str:
    if span is None:
        return "empty"
    t0, t1 = span
    return f"t={t0:.0f}s .. t={t1:.0f}s ({(t1 - t0) / 3600.0:.1f} h)"


def _timeline_rows(timeline: dict[int, dict[str, int]]) -> list[dict]:
    if not timeline:
        return []
    hours = sorted(timeline)
    lo, hi = hours[0], hours[-1]
    step = max(1, -(-(hi - lo + 1) // _MAX_TIMELINE_ROWS))
    rows = []
    for start in range(lo, hi + 1, step):
        bucket = {"puts": 0, "upgrades": 0, "expired": 0, "lost": 0}
        for hour in range(start, min(start + step, hi + 1)):
            entry = timeline.get(hour)
            if entry:
                for key in bucket:
                    bucket[key] += entry[key]
        rows.append({
            "hour": f"{start}-{start + step}" if step > 1 else str(start),
            "puts": bucket["puts"],
            "upgrades": bucket["upgrades"],
            "expired": bucket["expired"],
            "invalidated": bucket["lost"],
        })
    return rows


def format_trace_report(records: Sequence[TraceRecord],
                        title: str = "trace report") -> str:
    """The full ``repro report`` text for a record list."""
    summary = summarize_trace(records)
    lines = [
        f"== {title} ==",
        f"records   : {summary['records']}",
        f"nodes     : {summary['nodes']}",
        f"span      : {_span_text(summary['time_span'])}",
    ]

    if summary["kinds"]:
        rows = [{"record": kind, "count": count}
                for kind, count in summary["kinds"].items()]
        lines += ["", format_table(rows, title="record counts")]

    if summary["flows"]:
        rows = [
            {"message": kind, **{k: int(v) for k, v in flow.items()}}
            for kind, flow in summary["flows"].items()
        ]
        lines += ["", format_table(rows, title="message flow")]

    if summary["top_pairs"]:
        rows = [
            {"link": f"{a}->{b}", "transfers": count}
            for (a, b), count in summary["top_pairs"]
        ]
        lines += ["", format_table(rows, title="busiest links")]

    fault_rows = [
        {"fault": kind.split(".", 1)[1], "count": count}
        for kind, count in summary["kinds"].items()
        if kind.startswith("fault.")
    ]
    if fault_rows:
        lines += ["", format_table(fault_rows, title="injected faults")]

    build_rows = [
        {
            "phase": record.phase,
            "seconds": round(record.seconds, 3),
            "nodes": record.nodes,
            "contacts": record.contacts,
        }
        for record in records
        if record.kind == "build.phase"
    ]
    if build_rows:
        lines += ["", format_table(
            build_rows, title="build phases (wall-clock)",
            columns=["phase", "seconds", "nodes", "contacts"],
        )]

    model_rows = [
        {
            "metric": record.metric,
            "predicted": record.predicted,
            "measured": record.measured,
            "|error|": record.error,
        }
        for record in records
        if record.kind == "model.predict"
    ]
    if model_rows:
        lines += ["", format_table(
            model_rows, title="model predictions vs measured",
            columns=["metric", "predicted", "measured", "|error|"],
        )]

    service_rows = [
        {
            "sim_time": round(record.time, 1),
            "uptime_s": round(record.uptime_s, 2),
            "contacts": record.contacts,
            "queries": record.queries,
            "shed": record.shed,
            "p95_ms": round(record.p95_ms, 3),
            "freshness": round(record.freshness, 4),
            "validity": round(record.validity, 4),
        }
        for record in records
        if record.kind == "service.snapshot"
    ]
    if service_rows:
        lines += ["", format_table(
            service_rows, title="live service snapshots",
            columns=["sim_time", "uptime_s", "contacts", "queries",
                     "shed", "p95_ms", "freshness", "validity"],
        )]

    durability_rows = []
    for record in records:
        if record.kind == "service.checkpoint":
            durability_rows.append({
                "event": "checkpoint",
                "sim_time": round(record.time, 1),
                "records": record.records,
                "detail": (f"{record.journal_bytes:,d} B journal, "
                           f"{record.wall_ms:.1f} ms"
                           + (f", {record.quarantined} rejected"
                              if record.quarantined else "")),
            })
        elif record.kind == "service.restore":
            durability_rows.append({
                "event": "restore",
                "sim_time": round(record.time, 1),
                "records": record.records,
                "detail": (f"cursor {record.cursor}, "
                           + ("digest verified" if record.verified
                              else "unverified")
                           + f", {record.wall_ms:.0f} ms"),
            })
        elif record.kind == "service.restart":
            durability_rows.append({
                "event": "restart",
                "sim_time": round(record.time, 1),
                "records": record.attempt,
                "detail": f"exit {record.exit_code} after "
                          f"{record.uptime_s:.1f}s, backoff "
                          f"{record.backoff_s:.1f}s",
            })
        elif record.kind == "source.reconnect":
            durability_rows.append({
                "event": "reconnect",
                "sim_time": round(record.time, 1),
                "records": record.disconnects,
                "detail": f"peer {record.peer} "
                          f"({record.peers} connected)",
            })
    if durability_rows:
        lines += ["", format_table(
            durability_rows, title="durability events",
            columns=["event", "sim_time", "records", "detail"],
        )]

    queries = summary["queries"]
    if queries["issued"]:
        lines += ["", format_table(
            [queries], title="query funnel",
            columns=["issued", "hits", "misses", "completed"],
        )]

    timeline_rows = _timeline_rows(summary["timeline"])
    if timeline_rows:
        lines += ["", format_table(
            timeline_rows, title="freshness timeline (cache activity per hour)"
        )]

    return "\n".join(lines)
