"""Observability: structured event tracing, metrics, and run reports.

The three pieces:

- :mod:`repro.obs.bus` -- the :class:`EventBus` that instrumentation
  points across the engine, network, stores, refresh handlers, and
  query managers emit typed :mod:`repro.obs.records` onto.  Off by
  default; ``build_simulation(..., bus=EventBus())`` turns it on for
  one run without perturbing the simulation (traced and untraced runs
  produce identical metrics).
- :mod:`repro.obs.registry` -- :class:`MetricsRegistry`, the named
  counter/gauge/histogram namespace every runtime records into,
  snapshotable at any simulation time.
- :mod:`repro.obs.export` / :mod:`repro.obs.report` -- JSONL and
  Chrome trace-event exporters plus the ``repro report`` renderer.

See ``docs/OBSERVABILITY.md`` for the architecture and record schema.
"""

from repro.obs.bus import EventBus, tee_online_listener
from repro.obs.export import (
    chrome_trace,
    load_trace,
    read_jsonl,
    read_manifest,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
    write_manifest,
)
from repro.obs.records import RECORD_TYPES, TraceRecord, record_from_dict
from repro.obs.registry import MetricsRegistry


def __getattr__(name: str):
    # Lazy: report pulls in repro.analysis, whose metrics module imports
    # the refresh/query protocol modules.  Those protocol modules import
    # repro.obs.records at module level (hot-path emission sites), so an
    # eager import here would close a circular chain.
    if name == "format_trace_report":
        from repro.obs.report import format_trace_report

        return format_trace_report
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EventBus",
    "MetricsRegistry",
    "RECORD_TYPES",
    "TraceRecord",
    "chrome_trace",
    "format_trace_report",
    "load_trace",
    "read_jsonl",
    "read_manifest",
    "record_from_dict",
    "summarize_trace",
    "tee_online_listener",
    "write_chrome_trace",
    "write_jsonl",
    "write_manifest",
]
