"""Typed trace records emitted on the observability event bus.

Each record class is a tiny ``__slots__`` object with a ``kind`` class
attribute (the stable wire name, e.g. ``"contact.open"``), a ``time``
field in simulation seconds, and :meth:`TraceRecord.as_dict` /
:func:`record_from_dict` for loss-free JSONL round-trips.

Records are deliberately dumb data: no behaviour, no references into
the simulation, so a trace can outlive (and be loaded without) the run
that produced it.  The full catalogue:

================== ====================================================
kind                emitted when
================== ====================================================
``engine.run``      the simulator's run loop starts/stops
``engine.event``    one executed event (``engine_events=True`` opt-in)
``contact.open``    a trace contact opens (both endpoints online)
``contact.close``   an opened contact closes
``node.churn``      a node flips online/offline
``msg.create``      a :class:`~repro.sim.messages.Message` is built
``msg.tx``          the network admits a transfer
``msg.rx``          the flattened delivery executes at the receiver
``msg.drop``        a transfer is rejected (no contact/expired/bandwidth)
``task.create``     a refresh handler takes on a (item, target) task
``task.drop``       a task leaves (delivered/expired/suppressed)
``cache.put``       a store inserts or upgrades an entry
``cache.evict``     the eviction policy discards an entry
``cache.expire``    ``drop_expired`` removes a dead entry
``cache.remove``    an entry is removed explicitly (invalidation)
``query.issue``     a node issues a query
``query.hit``       a node answers a query from a provider
``query.miss``      a queried node has no answer and keeps forwarding
``query.complete``  the requester receives its answer
``fault.msg_loss``  the fault layer loses an admitted transfer in flight
``fault.truncate``  a contact close truncates an in-flight transfer
``fault.crash``     a node crashes (``cache_wiped``/``entries_lost``)
``fault.recover``   a crashed node comes back
``fault.flap``      a link flap cuts a contact short
``fault.outage``    a data source stalls/resumes version generation
``model.predict``   one predicted-vs-measured metric row (theory layer)
``build.phase``     wall-clock split of one build stage (scale harness)
``service.snapshot`` periodic live-service progress summary
``service.checkpoint`` the durability layer wrote a consistent manifest
``service.restore`` a service was rebuilt from a checkpoint directory
``service.restart`` the supervisor restarted a crashed service child
``source.reconnect`` a streaming peer reconnected after a disconnect
``fault.stream``    the stream fault injector perturbed the ingest feed
================== ====================================================

The ``fault.*`` family is emitted only by
:mod:`repro.faults.injectors`; a run without a fault plan produces none
of them (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

from typing import Any, Type

#: Per-class flattened slot tuple (MRO walk done once, not per record;
#: serialising a large trace calls ``as_dict`` millions of times).
_FIELDS_CACHE: dict[type, tuple[str, ...]] = {}


def _fields_of(cls: type) -> tuple[str, ...]:
    fields = _FIELDS_CACHE.get(cls)
    if fields is None:
        collected = []
        for klass in cls.__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot != "time":
                    collected.append(slot)
        fields = _FIELDS_CACHE[cls] = tuple(collected)
    return fields


class TraceRecord:
    """Base class: every record has a ``kind`` and a ``time``.

    Subclass constructors assign ``self.time`` directly instead of
    chaining through ``super().__init__`` -- records are built on the
    hot path of every traced run, and the extra frame is measurable at
    trace volumes.
    """

    kind: str = ""
    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = time

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-serialisable dict (``kind`` plus every slot)."""
        out: dict[str, Any] = {"kind": self.kind, "time": self.time}
        for slot in _fields_of(type(self)):
            out[slot] = getattr(self, slot)
        return out

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.as_dict() == other.as_dict()  # type: ignore[union-attr]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{k}={v!r}" for k, v in self.as_dict().items() if k != "kind"
        )
        return f"{type(self).__name__}({fields})"


class EngineRun(TraceRecord):
    """Run-loop start/stop marker (``phase`` is ``"begin"``/``"end"``)."""

    kind = "engine.run"
    __slots__ = ("phase", "events_executed")

    def __init__(self, time: float, phase: str, events_executed: int) -> None:
        self.time = time
        self.phase = phase
        self.events_executed = events_executed


class EngineEvent(TraceRecord):
    """One executed simulator event (``EventBus(engine_events=True)``
    opt-in; highest-volume record by far)."""

    kind = "engine.event"
    __slots__ = ("callback", "priority", "node")

    def __init__(self, time: float, callback: str, priority: int,
                 node: int | None) -> None:
        self.time = time
        self.callback = callback
        self.priority = priority
        self.node = node


class ContactOpen(TraceRecord):
    kind = "contact.open"
    __slots__ = ("a", "b", "duration")

    def __init__(self, time: float, a: int, b: int, duration: float) -> None:
        self.time = time
        self.a = a
        self.b = b
        self.duration = duration


class ContactClose(TraceRecord):
    kind = "contact.close"
    __slots__ = ("a", "b")

    def __init__(self, time: float, a: int, b: int) -> None:
        self.time = time
        self.a = a
        self.b = b


class NodeChurn(TraceRecord):
    kind = "node.churn"
    __slots__ = ("node", "online")

    def __init__(self, time: float, node: int, online: bool) -> None:
        self.time = time
        self.node = node
        self.online = online


class MessageCreate(TraceRecord):
    kind = "msg.create"
    __slots__ = ("msg_kind", "src", "dst", "size", "msg_id", "copy_id")

    def __init__(self, time: float, msg_kind: str, src: int, dst: int | None,
                 size: int, msg_id: int, copy_id: int) -> None:
        self.time = time
        self.msg_kind = msg_kind
        self.src = src
        self.dst = dst
        self.size = size
        self.msg_id = msg_id
        self.copy_id = copy_id


class MessageTx(TraceRecord):
    kind = "msg.tx"
    __slots__ = ("msg_kind", "sender", "receiver", "size", "msg_id",
                 "copy_id", "hop_count")

    def __init__(self, time: float, msg_kind: str, sender: int, receiver: int,
                 size: int, msg_id: int, copy_id: int, hop_count: int) -> None:
        self.time = time
        self.msg_kind = msg_kind
        self.sender = sender
        self.receiver = receiver
        self.size = size
        self.msg_id = msg_id
        self.copy_id = copy_id
        self.hop_count = hop_count


class MessageRx(TraceRecord):
    kind = "msg.rx"
    __slots__ = ("msg_kind", "sender", "receiver", "size", "msg_id", "copy_id")

    def __init__(self, time: float, msg_kind: str, sender: int, receiver: int,
                 size: int, msg_id: int, copy_id: int) -> None:
        self.time = time
        self.msg_kind = msg_kind
        self.sender = sender
        self.receiver = receiver
        self.size = size
        self.msg_id = msg_id
        self.copy_id = copy_id


class MessageDrop(TraceRecord):
    """A rejected transfer; ``reason`` is ``no_contact``/``expired``/
    ``bandwidth``."""

    kind = "msg.drop"
    __slots__ = ("msg_kind", "sender", "receiver", "size", "msg_id", "reason")

    def __init__(self, time: float, msg_kind: str, sender: int, receiver: int,
                 size: int, msg_id: int, reason: str) -> None:
        self.time = time
        self.msg_kind = msg_kind
        self.sender = sender
        self.receiver = receiver
        self.size = size
        self.msg_id = msg_id
        self.reason = reason


class TaskCreate(TraceRecord):
    kind = "task.create"
    __slots__ = ("node", "item_id", "target", "version", "may_recruit")

    def __init__(self, time: float, node: int, item_id: int, target: int,
                 version: int, may_recruit: bool) -> None:
        self.time = time
        self.node = node
        self.item_id = item_id
        self.target = target
        self.version = version
        self.may_recruit = may_recruit


class TaskDrop(TraceRecord):
    """``reason`` is ``delivered``/``expired``/``suppressed``."""

    kind = "task.drop"
    __slots__ = ("node", "item_id", "target", "version", "reason")

    def __init__(self, time: float, node: int, item_id: int, target: int,
                 version: int, reason: str) -> None:
        self.time = time
        self.node = node
        self.item_id = item_id
        self.target = target
        self.version = version
        self.reason = reason


class CachePut(TraceRecord):
    kind = "cache.put"
    __slots__ = ("node", "item_id", "version", "upgrade")

    def __init__(self, time: float, node: int, item_id: int, version: int,
                 upgrade: bool) -> None:
        self.time = time
        self.node = node
        self.item_id = item_id
        self.version = version
        self.upgrade = upgrade


class CacheEvict(TraceRecord):
    kind = "cache.evict"
    __slots__ = ("node", "item_id", "version")

    def __init__(self, time: float, node: int, item_id: int, version: int) -> None:
        self.time = time
        self.node = node
        self.item_id = item_id
        self.version = version


class CacheExpire(TraceRecord):
    kind = "cache.expire"
    __slots__ = ("node", "item_id", "version")

    def __init__(self, time: float, node: int, item_id: int, version: int) -> None:
        self.time = time
        self.node = node
        self.item_id = item_id
        self.version = version


class CacheRemove(TraceRecord):
    """Explicit removal (e.g. an invalidation notice); ``time`` may be
    NaN when the caller carries no timestamp."""

    kind = "cache.remove"
    __slots__ = ("node", "item_id", "version")

    def __init__(self, time: float, node: int, item_id: int, version: int) -> None:
        self.time = time
        self.node = node
        self.item_id = item_id
        self.version = version


class QueryIssue(TraceRecord):
    kind = "query.issue"
    __slots__ = ("node", "query_id", "item_id")

    def __init__(self, time: float, node: int, query_id: int, item_id: int) -> None:
        self.time = time
        self.node = node
        self.query_id = query_id
        self.item_id = item_id


class QueryHit(TraceRecord):
    """A node found an answer; ``local`` means the requester itself."""

    kind = "query.hit"
    __slots__ = ("node", "query_id", "item_id", "version", "local")

    def __init__(self, time: float, node: int, query_id: int, item_id: int,
                 version: int, local: bool) -> None:
        self.time = time
        self.node = node
        self.query_id = query_id
        self.item_id = item_id
        self.version = version
        self.local = local


class QueryMiss(TraceRecord):
    kind = "query.miss"
    __slots__ = ("node", "query_id", "item_id")

    def __init__(self, time: float, node: int, query_id: int, item_id: int) -> None:
        self.time = time
        self.node = node
        self.query_id = query_id
        self.item_id = item_id


class QueryComplete(TraceRecord):
    kind = "query.complete"
    __slots__ = ("node", "query_id", "item_id", "served_by", "delay")

    def __init__(self, time: float, node: int, query_id: int, item_id: int,
                 served_by: int, delay: float) -> None:
        self.time = time
        self.node = node
        self.query_id = query_id
        self.item_id = item_id
        self.served_by = served_by
        self.delay = delay


class FaultMessageLoss(TraceRecord):
    """The fault layer lost an admitted transfer in flight (the sender
    was charged and believes the send succeeded)."""

    kind = "fault.msg_loss"
    __slots__ = ("msg_kind", "sender", "receiver", "msg_id")

    def __init__(self, time: float, msg_kind: str, sender: int, receiver: int,
                 msg_id: int) -> None:
        self.time = time
        self.msg_kind = msg_kind
        self.sender = sender
        self.receiver = receiver
        self.msg_id = msg_id


class FaultTruncation(TraceRecord):
    """A contact closed while a finite-bandwidth transfer was in flight."""

    kind = "fault.truncate"
    __slots__ = ("msg_kind", "sender", "receiver", "msg_id")

    def __init__(self, time: float, msg_kind: str, sender: int, receiver: int,
                 msg_id: int) -> None:
        self.time = time
        self.msg_kind = msg_kind
        self.sender = sender
        self.receiver = receiver
        self.msg_id = msg_id


class FaultCrash(TraceRecord):
    kind = "fault.crash"
    __slots__ = ("node", "cache_wiped", "entries_lost")

    def __init__(self, time: float, node: int, cache_wiped: bool,
                 entries_lost: int) -> None:
        self.time = time
        self.node = node
        self.cache_wiped = cache_wiped
        self.entries_lost = entries_lost


class FaultRecover(TraceRecord):
    kind = "fault.recover"
    __slots__ = ("node",)

    def __init__(self, time: float, node: int) -> None:
        self.time = time
        self.node = node


class FaultLinkFlap(TraceRecord):
    """A link flap force-closed a contact before its trace end time."""

    kind = "fault.flap"
    __slots__ = ("a", "b", "planned_duration", "cut_duration")

    def __init__(self, time: float, a: int, b: int, planned_duration: float,
                 cut_duration: float) -> None:
        self.time = time
        self.a = a
        self.b = b
        self.planned_duration = planned_duration
        self.cut_duration = cut_duration


class FaultOutage(TraceRecord):
    """A data source stalled (``phase="begin"``) or resumed
    (``phase="end"``) version generation."""

    kind = "fault.outage"
    __slots__ = ("node", "phase", "duration")

    def __init__(self, time: float, node: int, phase: str,
                 duration: float) -> None:
        self.time = time
        self.node = node
        self.phase = phase
        self.duration = duration


class ModelPredictRecord(TraceRecord):
    """One metric of a :class:`~repro.theory.validate.ModelReport`.

    Emitted by the theory layer (never by the simulation itself --
    prediction is passive), so a trace can carry its own
    predicted-vs-measured table into ``repro report``.  ``measured``
    and ``error`` are NaN for prediction-only reports.
    """

    kind = "model.predict"
    __slots__ = ("metric", "predicted", "measured", "error")

    def __init__(self, time: float, metric: str, predicted: float,
                 measured: float, error: float) -> None:
        self.time = time
        self.metric = metric
        self.predicted = predicted
        self.measured = measured
        self.error = error


class BuildPhaseRecord(TraceRecord):
    """Wall-clock seconds one build stage took in the scale harness
    (``phase`` is ``"synthesis"``/``"estimation"``/``"construction"``/
    ``"run"``).  Emitted by :mod:`repro.experiments.scale`, never by the
    simulation itself; ``time`` is the stage's offset from the
    measurement start, in wall-clock seconds (there is no simulation
    clock while building)."""

    kind = "build.phase"
    __slots__ = ("phase", "seconds", "nodes", "contacts")

    def __init__(self, time: float, phase: str, seconds: float,
                 nodes: int, contacts: int) -> None:
        self.time = time
        self.phase = phase
        self.seconds = seconds
        self.nodes = nodes
        self.contacts = contacts


class ServiceSnapshot(TraceRecord):
    """Periodic progress snapshot of the live service.

    Emitted by the service's result-builder stage (never by the
    simulation itself); ``time`` is the simulation clock at the
    snapshot, ``uptime_s`` the wall-clock seconds since the service
    started.  Latency percentiles are NaN until a query is served.
    """

    kind = "service.snapshot"
    __slots__ = ("uptime_s", "contacts", "queries", "shed",
                 "p50_ms", "p95_ms", "p99_ms", "queue_depth",
                 "freshness", "validity")

    def __init__(self, time: float, uptime_s: float, contacts: int,
                 queries: int, shed: int, p50_ms: float, p95_ms: float,
                 p99_ms: float, queue_depth: int, freshness: float,
                 validity: float) -> None:
        self.time = time
        self.uptime_s = uptime_s
        self.contacts = contacts
        self.queries = queries
        self.shed = shed
        self.p50_ms = p50_ms
        self.p95_ms = p95_ms
        self.p99_ms = p99_ms
        self.queue_depth = queue_depth
        self.freshness = freshness
        self.validity = validity


class CheckpointWritten(TraceRecord):
    """The durability layer wrote a watermark-consistent manifest.

    ``time`` is the simulation clock at the checkpoint, ``records`` the
    number of journal records the manifest covers, ``journal_bytes``
    the synced journal size, and ``wall_ms`` the manifest write cost
    (digest + fsync + atomic rename)."""

    kind = "service.checkpoint"
    __slots__ = ("records", "watermark", "journal_bytes", "wall_ms",
                 "quarantined")

    def __init__(self, time: float, records: int, watermark: float,
                 journal_bytes: int, wall_ms: float,
                 quarantined: int = 0) -> None:
        self.time = time
        self.records = records
        self.watermark = watermark
        self.journal_bytes = journal_bytes
        self.wall_ms = wall_ms
        self.quarantined = quarantined


class CheckpointRestored(TraceRecord):
    """A live service was rebuilt from a checkpoint directory.

    ``records`` journal records were re-ingested to reach ``watermark``;
    ``cursor`` is where the upstream source resumes (``None`` for
    non-resumable sources); ``verified`` whether a manifest digest was
    matched along the way; ``wall_ms`` the total restore cost."""

    kind = "service.restore"
    __slots__ = ("records", "watermark", "cursor", "verified", "wall_ms")

    def __init__(self, time: float, records: int, watermark: float,
                 cursor: "int | None", verified: bool,
                 wall_ms: float) -> None:
        self.time = time
        self.records = records
        self.watermark = watermark
        self.cursor = cursor
        self.verified = verified
        self.wall_ms = wall_ms


class ServiceRestart(TraceRecord):
    """The supervisor restarted a crashed service child.

    Emitted by the supervisor *process* (there is no simulation clock),
    so ``time`` is wall-clock seconds since the supervisor started."""

    kind = "service.restart"
    __slots__ = ("attempt", "exit_code", "uptime_s", "backoff_s")

    def __init__(self, time: float, attempt: int, exit_code: int,
                 uptime_s: float, backoff_s: float) -> None:
        self.time = time
        self.attempt = attempt
        self.exit_code = exit_code
        self.uptime_s = uptime_s
        self.backoff_s = backoff_s


class SourceReconnect(TraceRecord):
    """A streaming ingest peer connected after an earlier disconnect."""

    kind = "source.reconnect"
    __slots__ = ("peer", "peers", "disconnects")

    def __init__(self, time: float, peer: str, peers: int,
                 disconnects: int) -> None:
        self.time = time
        self.peer = peer
        self.peers = peers
        self.disconnects = disconnects


class FaultStream(TraceRecord):
    """The stream fault injector perturbed the ingest feed (``action``
    is ``"malformed"``/``"duplicate"``/``"reorder"``/``"skew"``/
    ``"disconnect"``)."""

    kind = "fault.stream"
    __slots__ = ("action", "count")

    def __init__(self, time: float, action: str, count: int) -> None:
        self.time = time
        self.action = action
        self.count = count


#: wire name -> record class, for JSONL reconstruction
RECORD_TYPES: dict[str, Type[TraceRecord]] = {
    cls.kind: cls
    for cls in (
        EngineRun, EngineEvent, ContactOpen, ContactClose, NodeChurn,
        MessageCreate, MessageTx, MessageRx, MessageDrop,
        TaskCreate, TaskDrop,
        CachePut, CacheEvict, CacheExpire, CacheRemove,
        QueryIssue, QueryHit, QueryMiss, QueryComplete,
        FaultMessageLoss, FaultTruncation, FaultCrash, FaultRecover,
        FaultLinkFlap, FaultOutage,
        ModelPredictRecord, BuildPhaseRecord, ServiceSnapshot,
        CheckpointWritten, CheckpointRestored, ServiceRestart,
        SourceReconnect, FaultStream,
    )
}


def record_from_dict(data: dict[str, Any]) -> TraceRecord:
    """Rebuild the typed record a :meth:`TraceRecord.as_dict` produced."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = RECORD_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace record kind {kind!r}")
    return cls(**payload)
