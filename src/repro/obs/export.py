"""Trace exporters: JSONL, Chrome trace-event format, summary tables.

Three output formats for a bus's records:

- **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) -- one record per
  line, ``kind`` plus the record's fields; the round trip reconstructs
  the exact typed records.  This is what ``repro run --trace`` writes
  (one file per (seed, scheme) job, plus a ``*.manifest.json`` index).
- **Chrome trace-event JSON** (:func:`chrome_trace`) -- loadable in
  ``chrome://tracing`` / Perfetto.  Each simulation node becomes a
  process (pid = node id) with one lane (tid) per record family, so a
  node's contacts, cache churn, and message activity line up on a
  shared timeline.  Contacts render as duration slices, everything else
  as instant events.
- **summary dict** (:func:`summarize_trace`) -- the per-run aggregate
  (``repro report`` renders it; the manifest embeds the counts).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.records import TraceRecord, record_from_dict

#: Chrome trace lanes (tid) per record family, per node-process.
_LANES = {
    "contact": (0, "contacts"),
    "msg": (1, "messages"),
    "cache": (2, "cache"),
    "task": (3, "refresh tasks"),
    "query": (4, "queries"),
    "node": (5, "churn"),
    "engine": (6, "engine"),
    "fault": (7, "faults"),
}


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


#: Lines buffered per write in :func:`write_jsonl` -- large enough to
#: amortise the I/O syscall, small enough to keep the buffer off the
#: high-water mark of big traces.
_JSONL_CHUNK = 8192


def write_jsonl(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write one JSON object per record; returns the record count.

    Lines are serialised in chunks and flushed with a single ``write``
    per chunk rather than two per record.
    """
    count = 0
    dumps = json.dumps
    chunk: list[str] = []
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            chunk.append(dumps(record.as_dict()))
            count += 1
            if len(chunk) >= _JSONL_CHUNK:
                handle.write("\n".join(chunk))
                handle.write("\n")
                chunk.clear()
        if chunk:
            handle.write("\n".join(chunk))
            handle.write("\n")
    return count


def read_jsonl(path: str | Path) -> list[TraceRecord]:
    """Load a JSONL trace back into typed records."""
    records: list[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_dict(json.loads(line)))
    return records


def write_manifest(path: str | Path, entries: Sequence[dict]) -> None:
    """Write the merged-trace manifest for a multi-job run.

    Each entry describes one per-(seed, scheme) JSONL file:
    ``{"seed", "scheme", "point", "path", "records"}``.
    """
    payload = {"format": "repro-trace-manifest", "version": 1,
               "files": list(entries)}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def read_manifest(path: str | Path) -> list[dict]:
    """Entries of a manifest written by :func:`write_manifest`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro-trace-manifest":
        raise ValueError(f"{path} is not a repro trace manifest")
    return list(payload["files"])


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Load records from a JSONL trace *or* a manifest (all files merged).

    Manifest entries resolve relative to the manifest's directory.
    """
    path = Path(path)
    if path.suffix == ".json":
        records: list[TraceRecord] = []
        for entry in read_manifest(path):
            file_path = Path(entry["path"])
            if not file_path.is_absolute():
                file_path = path.parent / file_path
            records.extend(read_jsonl(file_path))
        return records
    return read_jsonl(path)


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------


def _lane(kind: str) -> tuple[int, str]:
    return _LANES.get(kind.split(".", 1)[0], (8, "other"))


def _node_events(record: TraceRecord) -> list[tuple[int, dict]]:
    """(node id, extra fields) pairs for the Chrome events of a record."""
    data = record.as_dict()
    kind = record.kind
    if kind == "contact.open":
        dur = max(float(data["duration"]), 0.0) * 1e6
        return [(data["a"], {"ph": "X", "dur": dur}),
                (data["b"], {"ph": "X", "dur": dur})]
    if kind == "contact.close":
        return [(data["a"], {"ph": "i", "s": "t"}),
                (data["b"], {"ph": "i", "s": "t"})]
    if kind in ("msg.tx", "msg.drop"):
        return [(data["sender"], {"ph": "i", "s": "t"})]
    if kind == "msg.rx":
        return [(data["receiver"], {"ph": "i", "s": "t"})]
    if kind in ("fault.msg_loss", "fault.truncate"):
        return [(data["sender"], {"ph": "i", "s": "t"}),
                (data["receiver"], {"ph": "i", "s": "t"})]
    if kind == "fault.flap":
        return [(data["a"], {"ph": "i", "s": "t"}),
                (data["b"], {"ph": "i", "s": "t"})]
    if kind == "msg.create":
        return [(data["src"], {"ph": "i", "s": "t"})]
    node = data.get("node")
    if node is None:
        return []  # engine.run and friends carry no node
    return [(node, {"ph": "i", "s": "t"})]


def chrome_trace(records: Iterable[TraceRecord]) -> dict:
    """Records as a ``chrome://tracing`` / Perfetto trace-event dict.

    Keyed by node: every simulation node is a trace process, with one
    thread lane per record family.  Records with a non-finite timestamp
    (e.g. unstamped ``cache.remove``) are skipped -- the viewer requires
    finite microsecond timestamps.
    """
    events: list[dict] = []
    seen: set[tuple[int, int]] = set()
    for record in records:
        if not math.isfinite(record.time):
            continue
        ts = record.time * 1e6
        tid, lane_name = _lane(record.kind)
        args = {k: v for k, v in record.as_dict().items()
                if k not in ("kind", "time") and v is not None}
        for node, extra in _node_events(record):
            if (node, tid) not in seen:
                seen.add((node, tid))
                events.append({"name": "process_name", "ph": "M", "pid": node,
                               "tid": 0, "args": {"name": f"node {node}"}})
                events.append({"name": "thread_name", "ph": "M", "pid": node,
                               "tid": tid, "args": {"name": lane_name}})
            events.append({"name": record.kind, "cat": lane_name, "ts": ts,
                           "pid": node, "tid": tid, "args": args, **extra})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[TraceRecord],
                       path: str | Path) -> int:
    """Write :func:`chrome_trace` JSON; returns the event count."""
    trace = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    return len(trace["traceEvents"])


# ---------------------------------------------------------------------------
# Summary
# ---------------------------------------------------------------------------


def summarize_trace(records: Sequence[TraceRecord]) -> dict:
    """Aggregate a trace into the dict ``repro report`` renders.

    Includes record counts per kind, the per-message-kind flow table
    (created/sent/received/dropped/bytes), the busiest sender->receiver
    pairs, the query funnel, and an hourly freshness timeline built from
    cache activity (upgrades vs expirations).
    """
    counts: dict[str, int] = {}
    flows: dict[str, dict[str, float]] = {}
    pairs: dict[tuple[int, int], int] = {}
    nodes: set[int] = set()
    t_min, t_max = math.inf, -math.inf
    timeline: dict[int, dict[str, int]] = {}
    queries = {"issued": 0, "hits": 0, "misses": 0, "completed": 0}

    def flow(msg_kind: str) -> dict[str, float]:
        entry = flows.get(msg_kind)
        if entry is None:
            entry = flows[msg_kind] = {
                "created": 0, "sent": 0, "received": 0, "dropped": 0,
                "bytes": 0,
            }
        return entry

    for record in records:
        counts[record.kind] = counts.get(record.kind, 0) + 1
        time = record.time
        if math.isfinite(time):
            t_min = min(t_min, time)
            t_max = max(t_max, time)
        kind = record.kind
        data = record.as_dict()
        for key in ("node", "a", "b", "sender", "receiver", "src"):
            value = data.get(key)
            if value is not None:
                nodes.add(value)
        if kind == "msg.create":
            flow(data["msg_kind"])["created"] += 1
        elif kind == "msg.tx":
            entry = flow(data["msg_kind"])
            entry["sent"] += 1
            entry["bytes"] += data["size"]
            pair = (data["sender"], data["receiver"])
            pairs[pair] = pairs.get(pair, 0) + 1
        elif kind == "msg.rx":
            flow(data["msg_kind"])["received"] += 1
        elif kind == "msg.drop":
            flow(data["msg_kind"])["dropped"] += 1
        elif kind in ("cache.put", "cache.expire", "cache.evict",
                      "cache.remove") and math.isfinite(time):
            hour = int(time // 3600.0)
            bucket = timeline.setdefault(
                hour, {"puts": 0, "upgrades": 0, "expired": 0, "lost": 0}
            )
            if kind == "cache.put":
                bucket["puts"] += 1
                if data["upgrade"]:
                    bucket["upgrades"] += 1
            elif kind == "cache.expire":
                bucket["expired"] += 1
            else:
                bucket["lost"] += 1
        elif kind == "query.issue":
            queries["issued"] += 1
        elif kind == "query.hit":
            queries["hits"] += 1
        elif kind == "query.miss":
            queries["misses"] += 1
        elif kind == "query.complete":
            queries["completed"] += 1

    return {
        "records": len(records),
        "kinds": dict(sorted(counts.items())),
        "nodes": len(nodes),
        "time_span": (None if t_min > t_max else (t_min, t_max)),
        "flows": dict(sorted(flows.items())),
        "top_pairs": sorted(pairs.items(), key=lambda kv: (-kv[1], kv[0]))[:8],
        "queries": queries,
        "timeline": dict(sorted(timeline.items())),
    }
