"""Metrics registry: named instruments, snapshotable at any sim time.

:class:`MetricsRegistry` extends the flat
:class:`~repro.sim.stats.StatsRegistry` namespace (counters, gauges,
tallies, time series) with

- **histograms** -- :class:`~repro.sim.stats.Tally` instruments whose
  snapshot includes the exact p50/p95/p99 percentiles the tally now
  computes from its retained samples, and
- **snapshots** -- :meth:`MetricsRegistry.snapshot` renders every
  instrument into one plain JSON-serialisable dict, stamped with the
  simulation time it was taken at.

``build_simulation`` hands every scheme a ``MetricsRegistry`` (it *is*
a ``StatsRegistry``, so all existing recording code is unaffected);
experiments and protocol handlers register additional instruments by
simply naming them: ``stats.histogram("refresh.hop_delay")``.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.stats import StatsRegistry, Tally

#: percentiles included in every histogram snapshot
SNAPSHOT_PERCENTILES = (50.0, 95.0, 99.0)


class MetricsRegistry(StatsRegistry):
    """A :class:`StatsRegistry` with histograms and full snapshots."""

    def __init__(self) -> None:
        super().__init__()
        self._histograms: dict[str, Tally] = {}

    def histogram(self, name: str) -> Tally:
        """A percentile-capable distribution instrument.

        Backed by :class:`~repro.sim.stats.Tally` (same ``observe``
        API); listed under ``histograms`` in :meth:`snapshot` with its
        percentile summary.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Tally(name)
        return histogram

    def all_histograms(self) -> dict[str, Tally]:
        return dict(self._histograms)

    @staticmethod
    def _summarise(tally: Tally) -> dict[str, float]:
        summary = {
            "count": tally.count,
            "mean": tally.mean,
            "stdev": tally.stdev,
            "min": tally.min,
            "max": tally.max,
        }
        for q in SNAPSHOT_PERCENTILES:
            summary[f"p{q:g}"] = tally.percentile(q)
        return summary

    def snapshot(self, now: Optional[float] = None) -> dict:
        """Every instrument's current value as one plain dict.

        ``now`` stamps the snapshot with the simulation time it was
        taken at (callers pass ``sim.now``); the registry itself keeps
        no clock, so snapshots can be taken mid-run at any point.
        Tallies and histograms share the same summary shape; histograms
        are the instruments registered via :meth:`histogram`.
        """
        return {
            "time": now,
            "counters": self.counters(),
            "gauges": self.gauges(),
            "tallies": {
                name: self._summarise(t)
                for name, t in sorted(self._tallies.items())
            },
            "histograms": {
                name: self._summarise(t)
                for name, t in sorted(self._histograms.items())
            },
            "series": {
                name: len(series)
                for name, series in sorted(self._series.items())
            },
        }
