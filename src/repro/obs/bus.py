"""The observability event bus.

A :class:`EventBus` collects :class:`~repro.obs.records.TraceRecord`
instances emitted by instrumentation points across the stack (engine,
network, stores, refresh handlers, query managers).  Tracing is **off by
default**: instrumented components hold a ``trace`` attribute that is
``None`` unless a bus was explicitly wired in (``build_simulation(...,
bus=bus)``), and every emission site is guarded by a single

    if self.trace is not None:

check -- one attribute load and an identity test, cheap enough that the
committed engine/scheme benchmarks show no regression with tracing
disabled.  No listener, wrapper, or subscription is installed anywhere
when no bus is attached, so the disabled fast path allocates nothing.

A bus either buffers records in memory (``bus.records``), streams them
to subscriber callables, or both.  Ordering is emission order, which for
a deterministic simulation is itself deterministic.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.obs.records import TraceRecord

Subscriber = Callable[[TraceRecord], None]


def _emit_discard(record: TraceRecord) -> None:
    """``emit`` binding for a bus that neither buffers nor streams."""


class EventBus:
    """Collects (and optionally streams) trace records.

    ``keep_records`` may be switched off when a subscriber persists the
    stream (e.g. a JSONL writer) and the run is too large to buffer.
    ``engine_events`` additionally turns on per-executed-event engine
    records (``engine.event`` volume is *per simulation event* -- orders
    of magnitude above everything else, so it is a separate opt-in).
    """

    __slots__ = ("records", "keep_records", "engine_events", "_subscribers",
                 "emit")

    def __init__(self, keep_records: bool = True,
                 engine_events: bool = False) -> None:
        self.records: list[TraceRecord] = []
        self.keep_records = keep_records
        self.engine_events = engine_events
        self._subscribers: list[Subscriber] = []
        self._rebind_emit()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ``emit`` is an instance attribute, not a method: with no
    # subscribers it is bound straight to ``records.append`` (one C call
    # per record instead of a Python frame + flag test + empty loop).
    # Tracing is the dominant cost of an instrumented run, so this
    # hot-path shortcut is worth the rebinding dance below.

    def _rebind_emit(self) -> None:
        if self._subscribers:
            self.emit = self._emit_general
        elif self.keep_records:
            self.emit = self.records.append
        else:
            self.emit = _emit_discard

    def _emit_general(self, record: TraceRecord) -> None:
        """Dispatch one record to the buffer and all subscribers."""
        if self.keep_records:
            self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, subscriber: Subscriber) -> None:
        """Stream every subsequent record to ``subscriber(record)``."""
        self._subscribers.append(subscriber)
        self._rebind_emit()

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """Buffered records with the given wire ``kind``."""
        return [r for r in self.records if r.kind == kind]

    def counts(self) -> dict[str, int]:
        """Buffered record count per kind, sorted by kind."""
        out: dict[str, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return dict(sorted(out.items()))

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Emit many records (used when merging per-seed traces)."""
        for record in records:
            self.emit(record)


def tee_online_listener(bus: EventBus):
    """An online-listener (``(node_id, online, now)``) that forwards node
    churn onto ``bus`` -- plugs into
    :meth:`repro.sim.network.ContactNetwork.add_online_listener`, the
    hook churn already flows through."""
    from repro.obs.records import NodeChurn

    def listener(node_id: int, online: bool, now: float) -> None:
        bus.emit(NodeChurn(now, node_id, online))

    return listener
