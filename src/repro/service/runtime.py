"""The live service: online freshness maintenance over a streamed trace.

:class:`LiveService` wraps a normal object-backend
:class:`~repro.core.scheme.SchemeRuntime` whose contact schedule starts
*empty*: instead of front-loading a trace at construction, contacts are
injected one at a time as they arrive from a stream
(:meth:`~repro.sim.network.ContactNetwork.schedule_contact`), and the
simulation clock is advanced *exclusively* -- all protocol events
strictly before the next contact's start run before that contact is
scheduled (the watermark discipline).  Because the injected events use
the same callbacks and priorities as the batch path, and because
refresh timers and contact times never coincide exactly (contact times
come out of continuous RNG draws), the event order is identical to the
batch run -- which is what the replay-equivalence guarantee rests on:
replaying a recorded trace at infinite time-dilation produces
freshness/validity metrics ``same_as``-identical to
:func:`~repro.core.scheme.build_simulation` over the same trace, scheme
and seed.

The query plane is deliberately passive: :meth:`answer_query` reads the
best cached entry across online caching nodes via ``CacheStore.peek``
(no LRU touch, no message, no RNG), so serving queries can never
perturb the simulation.  Queries flow through one bounded
:class:`asyncio.Queue` and are **shed** (counted, HTTP 503) when it is
full; contacts are never shed -- they block the ingest pipeline
instead (see :mod:`repro.service.pipeline`).
"""

from __future__ import annotations

import asyncio
import math
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, Optional, Sequence

from repro.analysis.metrics import freshness_summary, refresh_outcomes
from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable, mle_rates
from repro.core.scheme import SchemeConfig, SchemeRuntime, build_simulation
from repro.mobility.trace import ContactTrace
from repro.obs.bus import EventBus
from repro.obs.records import ServiceSnapshot
from repro.service.durability import CheckpointError, CommittedBatch
from repro.service.events import ContactEvent, MalformedEvent, QueryResult
from repro.service.pipeline import Handler, Pipeline
from repro.service.sources import ReplaySource

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import Settings

#: queue-end sentinel for the query worker
_QUERY_EOS = object()


class ContactPlanner(Handler):
    """Parse raw stream lines into :class:`ContactEvent` batches.

    Already-parsed events (from :class:`ReplaySource`) pass through
    untouched.  Malformed lines are counted and dropped -- a garbage
    line must not stall the ingest path.
    """

    name = "planner"

    def __init__(self, registry) -> None:
        self._malformed = registry.counter("service.shed.malformed")

    async def handle(self, batch):
        if isinstance(batch, CommittedBatch):
            # already parsed + journaled by DurableSource; pass through
            # untouched so the commit tag survives to the cache stage
            return batch
        events = []
        for item in batch:
            if isinstance(item, ContactEvent):
                events.append(item)
                continue
            try:
                events.append(ContactEvent.from_line(item))
            except MalformedEvent:
                self._malformed.add(1)
        return events or None


class CacheStage(Handler):
    """Drive the simulator: advance the clock and schedule contacts."""

    name = "cache"

    def __init__(self, service: "LiveService") -> None:
        self.service = service

    async def on_start(self) -> None:
        self.service.start_sim()

    async def handle(self, events):
        scheduled = self.service.ingest_batch(events)
        checkpointer = self.service.checkpointer
        if checkpointer is not None and isinstance(events, CommittedBatch):
            # the runtime now reflects exactly this journal prefix --
            # the watermark-consistent point a manifest may describe
            checkpointer.note_commit(events.commit)
        # One batch of contacts can cascade into many protocol events;
        # yield so the query worker interleaves between batches.
        await asyncio.sleep(0)
        return {
            "scheduled": scheduled,
            "sim_time": self.service.runtime.sim.now,
            "watermark": self.service.watermark,
        }

    async def on_finish(self) -> None:
        # final manifest before the caller runs finish(): past the
        # horizon the state is no longer an ingest-consistent point
        checkpointer = self.service.checkpointer
        if checkpointer is not None:
            checkpointer.write()


class ResultBuilder(Handler):
    """Terminal stage: periodic service snapshots to the trace bus."""

    name = "results"

    def __init__(self, service: "LiveService", interval: float = 1.0) -> None:
        self.service = service
        self.interval = interval
        self._last = 0.0

    async def handle(self, summary):
        now = perf_counter()
        if now - self._last >= self.interval:
            self._last = now
            self.service.emit_snapshot()
        return None

    async def on_finish(self) -> None:
        self.service.emit_snapshot()


class LiveService:
    """Online runtime over a streaming contact feed plus a query plane.

    Use :func:`build_live_service` (or :func:`service_from_settings`)
    rather than constructing directly.
    """

    def __init__(
        self,
        runtime: SchemeRuntime,
        horizon: float,
        warmup_fraction: float = 0.1,
        contact_queue: int = 256,
        query_queue: int = 1024,
        serve_rate: Optional[float] = None,
        bus: Optional[EventBus] = None,
        snapshot_interval: float = 1.0,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if serve_rate is not None and serve_rate <= 0:
            raise ValueError("serve_rate must be positive")
        self.runtime = runtime
        self.horizon = float(horizon)
        self.warmup_fraction = warmup_fraction
        self.contact_queue = contact_queue
        self.serve_rate = serve_rate
        self.bus = bus
        self.snapshot_interval = snapshot_interval
        #: start time of the newest scheduled contact; arrivals behind
        #: it are late (the clock may already have passed them) and are
        #: counted + dropped rather than breaking monotonicity
        self.watermark = 0.0
        #: coarse health state; the durability layer flips it to
        #: ``"resuming"`` while a journal replays (see :meth:`health`)
        self.state = "ok"
        #: attached by :meth:`enable_checkpointing` / ``restore_service``
        self.checkpointer = None
        self._last_shed_wall: Optional[float] = None
        self._wall_start = perf_counter()
        self._sim_started = False
        self._finished = False
        self._worker: Optional[asyncio.Task] = None
        self._queries: asyncio.Queue = asyncio.Queue(maxsize=query_queue)

        stats = runtime.stats
        self.stats = stats
        self.query_latency = stats.histogram("service.query.latency_ms")
        self._c_ingested = stats.counter("service.contacts.ingested")
        self._c_late = stats.counter("service.contacts.shed_late")
        self._c_unknown = stats.counter("service.contacts.shed_unknown")
        self._c_beyond = stats.counter("service.contacts.shed_past_horizon")
        self._c_offered = stats.counter("service.queries.offered")
        self._c_served = stats.counter("service.queries.served")
        self._c_shed = stats.counter("service.queries.shed")
        self._c_hit = stats.counter("service.queries.hit")
        self._c_fresh = stats.counter("service.queries.fresh")
        self._c_valid = stats.counter("service.queries.valid")
        self._g_sim_time = stats.gauge("service.sim_time")
        self._g_qdepth = stats.gauge("service.queue.queries")
        self._g_qpeak = stats.gauge("service.queue.queries.peak")
        self._qpeak_seen = 0

    # -- simulation side ---------------------------------------------------

    def start_sim(self) -> None:
        """Fire the runtime's ``on_start`` hooks (idempotent)."""
        if not self._sim_started:
            self._sim_started = True
            self.runtime.network.start()

    def ingest_batch(self, events: Sequence[ContactEvent]) -> int:
        """Advance the clock and schedule a batch of streamed contacts.

        For each event, every pending simulation event strictly before
        the contact's start runs first (exclusive advance), then the
        contact is scheduled -- so by the time a contact executes, the
        protocol state is exactly what the batch run would have had.
        Returns the number of contacts actually scheduled.
        """
        self.start_sim()
        sim = self.runtime.sim
        network = self.runtime.network
        peek_time = sim.peek_time
        step = sim.step
        scheduled = 0
        for event in events:
            start = event.start
            if start > self.horizon:
                self._c_beyond.add(1)
                continue
            if start < self.watermark or start < sim.now:
                self._c_late.add(1)
                continue
            while True:
                next_time = peek_time()
                if next_time is None or next_time >= start:
                    break
                step()
            if network.schedule_contact(event.a, event.b, start, event.end):
                self.watermark = start
                scheduled += 1
            else:
                self._c_unknown.add(1)
        if scheduled:
            self._c_ingested.add(scheduled)
        self._g_sim_time.set(sim.now)
        return scheduled

    def finish(self) -> float:
        """Run the remaining events out to the horizon (idempotent).

        After the stream ends, this is what makes the service's state
        comparable to a batch run over the same horizon: the clock
        advances to ``horizon`` inclusive, exactly like
        ``runtime.run(until=horizon)`` on the batch path.
        """
        if not self._finished:
            self._finished = True
            self.start_sim()
            self.runtime.sim.run(until=self.horizon)
            self._g_sim_time.set(self.runtime.sim.now)
        return self.runtime.sim.now

    # -- durability --------------------------------------------------------

    #: a query shed within this many wall seconds keeps ``/healthz``
    #: reporting ``shedding`` (429) -- long enough for probes to see it
    SHED_WINDOW_S = 5.0

    def enable_checkpointing(
        self,
        directory,
        spec=None,
        interval_s: Optional[float] = None,
        journal=None,
        spec_fingerprint: Optional[str] = None,
    ):
        """Attach a write-ahead journal plus periodic manifests.

        Fresh services pass ``spec`` (a
        :class:`~repro.service.durability.BuildSpec`, saved into the
        directory so a later ``--resume`` can rebuild the runtime);
        ``restore_service`` instead passes the recovered ``journal``.
        Once enabled, :meth:`serve` transparently wraps any source in a
        :class:`~repro.service.durability.DurableSource`.
        """
        from repro.service.durability import (
            DEFAULT_INTERVAL_S,
            JOURNAL_FILE,
            QUARANTINE_FILE,
            Checkpointer,
            Journal,
            Quarantine,
        )

        if self.checkpointer is not None:
            raise RuntimeError("checkpointing is already enabled")
        directory = Path(directory)
        if spec is not None:
            spec.save(directory)
            spec_fingerprint = spec.fingerprint()
        if journal is None:
            journal = Journal.open(directory / JOURNAL_FILE)
            if journal.records and spec is not None:
                records = journal.records
                journal.close()
                raise CheckpointError(
                    f"{directory} already holds a journal with {records} "
                    "committed records; resume from it (--resume) or "
                    "use a fresh checkpoint directory"
                )
        quarantine = Quarantine(
            directory / QUARANTINE_FILE, registry=self.stats
        )
        self.checkpointer = Checkpointer(
            directory,
            self,
            journal,
            quarantine=quarantine,
            interval_s=(
                DEFAULT_INTERVAL_S if interval_s is None else interval_s
            ),
            spec_fingerprint=spec_fingerprint,
        )
        return self.checkpointer

    def health(self) -> tuple[int, dict]:
        """Health state plus HTTP code for ``/healthz`` and probes.

        ``ok`` -> 200; ``checkpoint_stale`` (committed state has outrun
        the manifest for too long) -> 200 but flagged degraded;
        ``shedding`` (a query was shed within :attr:`SHED_WINDOW_S`)
        -> 429 so load balancers back off; ``resuming`` (journal replay
        in progress after a restore) -> 503 so probes wait.
        """
        state = self.state
        if state == "ok":
            if (
                self._last_shed_wall is not None
                and perf_counter() - self._last_shed_wall < self.SHED_WINDOW_S
            ):
                state = "shedding"
            elif self.checkpointer is not None and self.checkpointer.stale():
                state = "checkpoint_stale"
        code = 503 if state == "resuming" else 429 if state == "shedding" else 200
        return code, {
            "ok": state == "ok",
            "state": state,
            "degraded": state != "ok",
        }

    # -- query plane -------------------------------------------------------

    def answer_query(self, item_id: int) -> QueryResult:
        """Judge the best cached copy of ``item_id`` right now.

        Purely passive: reads stores via ``peek`` (no LRU touch), the
        version history, and the clock.  Raises ``KeyError`` for items
        outside the catalog.
        """
        runtime = self.runtime
        now = runtime.sim.now
        item = runtime.catalog.get(item_id)
        best = None
        best_node = None
        for node_id in runtime.caching_nodes:
            if not runtime.nodes[node_id].online:
                continue
            entry = runtime.stores[node_id].peek(item_id)
            if entry is None:
                continue
            if best is None or (entry.version, entry.version_time) > (
                best.version,
                best.version_time,
            ):
                best = entry
                best_node = node_id
        if best is None:
            return QueryResult(item_id=item_id, sim_time=now, hit=False)
        fresh = runtime.history.is_fresh(item_id, best.version, now)
        valid = not best.expired(now, item)
        self._c_hit.add(1)
        if fresh:
            self._c_fresh.add(1)
        if valid:
            self._c_valid.add(1)
        return QueryResult(
            item_id=item_id,
            sim_time=now,
            hit=True,
            fresh=fresh,
            valid=valid,
            version=best.version,
            version_time=best.version_time,
            served_by=best_node,
        )

    def submit_query(self, item_id: int, wait: bool = True):
        """Enqueue a query; returns a future, or ``None`` when shed.

        ``wait=False`` skips creating the result future (fire-and-forget
        load generation); the query is still answered and measured.
        The queue is bounded: a full queue sheds the query (counted in
        ``service.queries.shed``) instead of growing without limit.
        """
        self._c_offered.add(1)
        future = None
        if wait:
            future = asyncio.get_running_loop().create_future()
        entry = (item_id, perf_counter(), future)
        try:
            self._queries.put_nowait(entry)
        except asyncio.QueueFull:
            self._c_shed.add(1)
            self._last_shed_wall = perf_counter()
            return None
        depth = self._queries.qsize()
        self._g_qdepth.set(depth)
        if depth > self._qpeak_seen:
            self._qpeak_seen = depth
            self._g_qpeak.set(depth)
        return future

    async def _drain_queries(self) -> None:
        queue = self._queries
        observe = self.query_latency.observe
        min_interval = 1.0 / self.serve_rate if self.serve_rate else 0.0
        loop = asyncio.get_running_loop()
        next_free = loop.time()
        while True:
            entry = await queue.get()
            if entry is _QUERY_EOS:
                break
            if min_interval:
                now = loop.time()
                if now < next_free:
                    await asyncio.sleep(next_free - now)
                next_free = max(now, next_free) + min_interval
            item_id, submitted, future = entry
            try:
                result = self.answer_query(item_id)
            except KeyError as exc:
                if future is not None and not future.cancelled():
                    future.set_exception(exc)
                continue
            self._c_served.add(1)
            observe((perf_counter() - submitted) * 1e3)
            if future is not None and not future.cancelled():
                future.set_result(result)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the simulation side and the query worker (idempotent)."""
        self.start_sim()
        if self._worker is None:
            self._worker = asyncio.ensure_future(self._drain_queries())

    async def stop(self) -> None:
        """Drain and stop the query worker (idempotent)."""
        if self._worker is not None:
            await self._queries.put(_QUERY_EOS)
            await self._worker
            self._worker = None

    def build_pipeline(self) -> Pipeline:
        return Pipeline(
            [
                ContactPlanner(self.stats),
                CacheStage(self),
                ResultBuilder(self, interval=self.snapshot_interval),
            ],
            registry=self.stats,
            queue_size=self.contact_queue,
        )

    async def serve(self, source) -> None:
        """Ingest ``source`` to exhaustion while answering queries.

        Returns when the source ends (replay finished, tail/socket
        stopped).  The caller decides whether to :meth:`finish` (advance
        to the horizon) and must :meth:`stop` the query worker.

        With checkpointing enabled the source is wrapped in a
        :class:`~repro.service.durability.DurableSource`, so every event
        the pipeline sees is journaled before it is ingested.
        """
        await self.start()
        if self.checkpointer is not None:
            from repro.service.durability import DurableSource

            if not isinstance(source, DurableSource):
                source = DurableSource(
                    source,
                    self.checkpointer.journal,
                    self.checkpointer.quarantine,
                )
        await self.build_pipeline().run(source)

    # -- reporting ---------------------------------------------------------

    def _latency_percentiles(self) -> dict[str, float]:
        tally = self.query_latency
        return {
            "p50_ms": tally.percentile(50.0),
            "p95_ms": tally.percentile(95.0),
            "p99_ms": tally.percentile(99.0),
        }

    def status(self) -> dict:
        """One JSON-serialisable health/progress summary."""
        runtime = self.runtime
        fresh, valid, total = runtime.freshness_snapshot()
        counters = self.stats.counters()
        return {
            "scheme": runtime.config.name,
            "state": self.health()[1]["state"],
            "sim_time": runtime.sim.now,
            "horizon": self.horizon,
            "watermark": self.watermark,
            "uptime_s": perf_counter() - self._wall_start,
            "contacts": {
                "ingested": counters.get("service.contacts.ingested", 0),
                "shed_late": counters.get("service.contacts.shed_late", 0),
                "shed_unknown": counters.get("service.contacts.shed_unknown", 0),
                "shed_past_horizon": counters.get(
                    "service.contacts.shed_past_horizon", 0
                ),
                "malformed": counters.get("service.shed.malformed", 0),
            },
            "queries": {
                "offered": counters.get("service.queries.offered", 0),
                "served": counters.get("service.queries.served", 0),
                "shed": counters.get("service.queries.shed", 0),
                "queue_depth": self._queries.qsize(),
                **self._latency_percentiles(),
            },
            "freshness": {
                "fresh": fresh,
                "valid": valid,
                "total": total,
                "freshness": fresh / total if total else math.nan,
                "validity": valid / total if total else math.nan,
            },
        }

    def emit_snapshot(self) -> None:
        """Append one ``service.snapshot`` record to the trace bus."""
        if self.bus is None:
            return
        runtime = self.runtime
        fresh, valid, total = runtime.freshness_snapshot()
        counters = self.stats.counters()
        pct = self._latency_percentiles()
        self.bus.emit(
            ServiceSnapshot(
                runtime.sim.now,
                perf_counter() - self._wall_start,
                int(counters.get("service.contacts.ingested", 0)),
                int(counters.get("service.queries.served", 0)),
                int(counters.get("service.queries.shed", 0)),
                pct["p50_ms"],
                pct["p95_ms"],
                pct["p99_ms"],
                self._queries.qsize(),
                fresh / total if total else math.nan,
                valid / total if total else math.nan,
            )
        )

    def score(self) -> dict:
        """Score the finished run exactly like the batch path does.

        Mirrors ``run_once``: freshness/validity from the probe series
        over the post-warmup window, refresh outcomes from the update
        log.  Call after :meth:`finish`.
        """
        runtime = self.runtime
        warmup = self.warmup_fraction * self.horizon
        fresh = freshness_summary(runtime, t0=warmup, t1=self.horizon)
        refresh = refresh_outcomes(
            runtime.update_log,
            runtime.history,
            runtime.catalog,
            runtime.caching_nodes,
            horizon=self.horizon,
            messages=runtime.refresh_overhead(),
        )
        return {
            "freshness": fresh.freshness,
            "validity": fresh.validity,
            "messages": refresh.messages,
            "messages_per_update": refresh.messages_per_update,
            "on_time_ratio": refresh.on_time_ratio,
            "refresh_delay": refresh.mean_delay,
        }


SCORE_FIELDS = (
    "freshness",
    "validity",
    "messages",
    "messages_per_update",
    "on_time_ratio",
    "refresh_delay",
)


def scores_match(service_score: dict, metrics) -> bool:
    """Whether a service score equals a batch :class:`RunMetrics`.

    Same semantics as ``RunMetrics.same_as`` on the shared fields:
    exact equality, with NaN == NaN counted as equal.
    """
    for name in SCORE_FIELDS:
        mine = service_score[name]
        theirs = getattr(metrics, name)
        if mine != theirs and not (
            isinstance(mine, float)
            and isinstance(theirs, float)
            and math.isnan(mine)
            and math.isnan(theirs)
        ):
            return False
    return True


def build_live_service(
    trace: ContactTrace,
    catalog: DataCatalog,
    scheme: "str | SchemeConfig" = "hdr",
    seed: int = 0,
    num_caching_nodes: int = 12,
    horizon: float = 3 * 86400.0,
    probe_interval: float = 1800.0,
    refresh_jitter: float = 0.0,
    warmup_fraction: float = 0.1,
    rates: Optional[RateTable] = None,
    **service_kwargs,
) -> LiveService:
    """Wire a :class:`LiveService` whose contact schedule starts empty.

    ``trace`` provides the node population and (by default) the MLE
    contact-rate estimate -- exactly the knowledge the batch path uses
    -- but none of its contacts are pre-scheduled; they arrive through
    the ingest pipeline.  Everything else (structure building, relay
    planning, RNG consumption, probe installation) mirrors the batch
    wiring step for step, which is what makes replay equivalence hold.
    """
    if rates is None:
        rates = mle_rates(trace)
    empty = ContactTrace([], node_ids=trace.node_ids, name=f"{trace.name}:live")
    runtime = build_simulation(
        empty,
        catalog,
        scheme=scheme,
        num_caching_nodes=num_caching_nodes,
        rates=rates,
        seed=seed,
        refresh_jitter=refresh_jitter,
    )
    # Installed before network.start() -- the same relative order as the
    # batch path (run_once installs the probe before runtime.run).
    runtime.install_freshness_probe(interval=probe_interval, until=horizon)
    return LiveService(
        runtime,
        horizon=horizon,
        warmup_fraction=warmup_fraction,
        **service_kwargs,
    )


def service_from_settings(
    settings: "Settings",
    seed: int,
    scheme: "str | SchemeConfig" = "hdr",
    **service_kwargs,
) -> tuple[LiveService, ContactTrace]:
    """Build a service with the experiment runner's exact wiring.

    Generates the settings' trace realisation for ``seed`` (via the
    per-seed artifact cache), derives sources/catalog the same way
    ``run_once`` does, and returns ``(service, trace)`` so the caller
    can replay the very trace the runtime was estimated from.
    """
    from repro.experiments.runner import choose_sources, make_catalog, make_trace

    trace = make_trace(settings, seed)
    catalog = make_catalog(settings, choose_sources(trace, settings))
    service = build_live_service(
        trace,
        catalog,
        scheme=scheme,
        seed=seed,
        num_caching_nodes=settings.num_caching_nodes,
        horizon=settings.duration,
        probe_interval=settings.probe_interval,
        refresh_jitter=settings.refresh_jitter,
        warmup_fraction=settings.warmup_fraction,
        **service_kwargs,
    )
    return service, trace


async def serve_and_score(service: LiveService, source) -> dict:
    """Serve ``source`` to exhaustion, finish, and score the run.

    The standard end-of-life sequence: closes the checkpointer (if any)
    after :meth:`~LiveService.finish`, so the final manifest -- written
    by the cache stage at end-of-stream -- stays ingest-consistent.
    """
    await service.serve(source)
    service.finish()
    await service.stop()
    if service.checkpointer is not None:
        service.checkpointer.close()
    return service.score()


async def replay(
    service: LiveService,
    contacts,
    dilation: float = math.inf,
    batch_size: int = 256,
) -> dict:
    """Serve ``contacts`` to exhaustion, finish, and score the run."""
    return await serve_and_score(
        service,
        ReplaySource(contacts, dilation=dilation, batch_size=batch_size),
    )


def replay_scores(
    settings: "Settings",
    seed: int,
    scheme: "str | SchemeConfig" = "hdr",
    dilation: float = math.inf,
    checkpoint=None,
    checkpoint_interval_s: Optional[float] = None,
    **service_kwargs,
) -> dict:
    """Build + replay + score in one blocking call (tests, bench).

    ``checkpoint`` (a directory) journals + manifests the run, so the
    durable-replay overhead can be measured against the plain replay
    with everything else identical.
    """
    service, trace = service_from_settings(
        settings, seed=seed, scheme=scheme, **service_kwargs
    )
    if checkpoint is not None:
        from repro.service.durability import BuildSpec

        spec = BuildSpec.from_settings(settings, seed=seed, scheme=scheme,
                                       **service_kwargs)
        service.enable_checkpointing(
            checkpoint, spec=spec, interval_s=checkpoint_interval_s
        )
    return asyncio.run(replay(service, trace, dilation=dilation))
