"""Crash-safe checkpoints for the live service.

The durability layer makes a running :class:`~repro.service.runtime.
LiveService` survive ``SIGKILL`` with a **replay-equivalence
guarantee**: a run that is killed and resumed from its latest
checkpoint finishes with metrics byte-identical to the same run left
uninterrupted (and therefore, transitively, to the batch
``run_once`` -- see ``docs/DURABILITY.md`` for the full argument).

Physically pickling the runtime is a dead end here: the engine heap
holds closures (refresh timers, the freshness probe), which cannot be
serialised.  Instead the checkpoint is *logical*, exploiting the fact
the whole stack is deterministic:

1. **Build spec** (``spec.json``) -- the exact inputs
   :func:`~repro.service.runtime.service_from_settings` needs to
   rebuild the runtime bit-identically (settings, seed, scheme, service
   knobs).  Written once at service start.
2. **Write-ahead journal** (``journal.jsonl``) -- every contact batch
   the pipeline will see is appended (each record CRC-tagged) followed
   by a *commit marker* carrying the source cursor, flushed **before**
   the batch is handed downstream.  Because the ingest path is a
   deterministic function of the event sequence, the journal is the
   runtime's most compact serialisation: caches, version history,
   relay-plan state, pending control events, the engine clock and the
   watermark are all reproduced by replaying it.
3. **Manifest** (``manifest.json``) -- written periodically via
   write-to-temp + atomic rename: the number of journal records the
   simulation has actually ingested (the *watermark-consistent* point;
   FIFO stages guarantee it is a journal prefix), the watermark and
   clock, and a :func:`runtime_digest` of the live state (store
   contents, version history, accountant counts, shed counters).  The
   digest is not needed to restore -- it *verifies* the restore:
   replaying the journal prefix must land on the exact digest, else
   :class:`CheckpointError`.

Recovery truncates any torn journal tail back to the last commit
marker (records past it were never handed downstream, so the upstream
cursor re-serves them), rebuilds the service from the spec, re-ingests
the journal, checks the manifest digest in passing, and resumes the
source at the journaled cursor.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.obs.records import CheckpointRestored, CheckpointWritten
from repro.service.events import ContactEvent, MalformedEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import Settings
    from repro.mobility.trace import ContactTrace
    from repro.service.runtime import LiveService

SPEC_FILE = "spec.json"
MANIFEST_FILE = "manifest.json"
JOURNAL_FILE = "journal.jsonl"
QUARANTINE_FILE = "quarantine.jsonl"

#: default seconds between manifests
DEFAULT_INTERVAL_S = 5.0

#: journal records re-ingested per chunk during a restore (between
#: chunks the async restore path yields so ``/healthz`` stays live)
RESTORE_CHUNK = 1024


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, inconsistent, or corrupt."""


def _canonical(payload: dict) -> bytes:
    """Stable byte encoding for CRCs and fingerprints."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _crc(payload: dict) -> int:
    return zlib.crc32(_canonical(payload))


class CommittedBatch(list):
    """A parsed, journaled contact batch flowing down the pipeline.

    ``commit`` is the journal's total record count once this batch was
    committed; the cache stage reports it to the checkpointer after
    ingesting, which is what makes manifests watermark-consistent.
    """

    __slots__ = ("commit",)


class Quarantine:
    """Sidecar file for stream lines that fail to parse.

    A malformed line must never stall or kill the ingest path, but
    silently dropping it hides feed corruption -- so rejected lines are
    counted (``service.events.rejected``) and appended, with the parse
    error, to ``quarantine.jsonl`` for post-mortems.
    """

    def __init__(self, path, registry=None) -> None:
        self.path = Path(path)
        self.count = 0
        self._handle = None
        self._counter = (
            registry.counter("service.events.rejected")
            if registry is not None else None
        )

    def reject(self, line, reason) -> None:
        self.count += 1
        if self._counter is not None:
            self._counter.add(1)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(
            {"line": str(line)[:500], "reason": str(reason)[:200]}
        ) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass(frozen=True)
class JournalScan:
    """Recovered content of a journal file (committed prefix only)."""

    events: tuple
    cursor: Optional[int]
    records: int
    commits: int
    valid_bytes: int


def scan_journal(path) -> JournalScan:
    """Read a journal back, stopping at the first torn/corrupt line.

    Only records covered by a valid commit marker count: a tail of
    record lines without their commit was never handed downstream
    (the writer flushes record+commit together, before yielding), so
    the resumed source re-serves those events.  Returns the committed
    events, the last committed cursor, and the byte length of the
    valid region (everything past it is truncated on re-open).
    """
    path = Path(path)
    if not path.exists():
        return JournalScan((), None, 0, 0, 0)
    data = path.read_bytes()
    events: list[ContactEvent] = []
    committed = 0
    commits = 0
    cursor: Optional[int] = None
    valid_bytes = 0
    offset = 0
    for segment in data.split(b"\n")[:-1]:
        offset += len(segment) + 1
        try:
            payload = json.loads(segment)
            if not isinstance(payload, dict):
                break
            crc = payload.pop("crc", None)
            if crc != _crc(payload):
                break
            if "commit" in payload:
                if payload["commit"] != len(events):
                    break
                committed = len(events)
                cursor = payload.get("cursor")
                commits += 1
                valid_bytes = offset
            else:
                events.append(ContactEvent(
                    a=int(payload["a"]), b=int(payload["b"]),
                    start=float(payload["start"]),
                    end=float(payload["end"]),
                ))
        except (ValueError, KeyError, TypeError, MalformedEvent):
            break
    return JournalScan(tuple(events[:committed]), cursor,
                       committed, commits, valid_bytes)


class Journal:
    """Append-only write-ahead log of the accepted contact stream."""

    def __init__(self, path, handle, records: int, commits: int,
                 bytes_written: int, cursor: Optional[int]) -> None:
        self.path = Path(path)
        self._handle = handle
        self.records = records
        self.commits = commits
        self.bytes_written = bytes_written
        self.cursor = cursor

    @classmethod
    def open(cls, path, scan: Optional[JournalScan] = None) -> "Journal":
        """Open (or create) a journal, recovering any torn tail.

        Truncating back to the last commit keeps the invariant that a
        journal always ends at a commit marker, so appends after a
        crash never interleave with garbage.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if scan is None:
            scan = scan_journal(path)
        if path.exists() and path.stat().st_size != scan.valid_bytes:
            with open(path, "rb+") as handle:
                handle.truncate(scan.valid_bytes)
        handle = open(path, "ab")
        return cls(path, handle, scan.records, scan.commits,
                   scan.valid_bytes, scan.cursor)

    def append_batch(self, events: Sequence[ContactEvent],
                     cursor: Optional[int]) -> int:
        """Append a batch plus its commit marker; flush; return the
        total committed record count.

        An empty ``events`` still writes the commit marker -- the
        cursor must advance past source batches that parsed to nothing
        (all-malformed input), or a resume would re-serve them forever.
        """
        lines = []
        for event in events:
            payload = {"a": event.a, "b": event.b,
                       "start": event.start, "end": event.end}
            payload["crc"] = _crc(payload)
            lines.append(json.dumps(payload, sort_keys=True,
                                    separators=(",", ":")))
        self.records += len(events)
        commit = {"commit": self.records, "cursor": cursor}
        commit["crc"] = _crc(commit)
        lines.append(json.dumps(commit, sort_keys=True,
                                separators=(",", ":")))
        blob = ("\n".join(lines) + "\n").encode()
        self._handle.write(blob)
        self._handle.flush()
        self.bytes_written += len(blob)
        self.commits += 1
        self.cursor = cursor
        return self.records

    def sync(self) -> None:
        """fsync -- called by the checkpointer before each manifest, so
        a manifest never references journal bytes the disk lacks."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class DurableSource:
    """Write-ahead wrapper: parse, quarantine, journal, then forward.

    Wraps any batch source.  Raw lines are parsed here (malformed ones
    quarantined) so the journal only ever holds valid events; each
    batch is committed to the journal -- with the inner source's cursor
    -- and flushed *before* it is yielded downstream.  Everything the
    simulation ever sees is therefore in the journal, which is the
    whole recovery argument.
    """

    def __init__(self, inner, journal: Journal,
                 quarantine: Optional[Quarantine] = None) -> None:
        self.inner = inner
        self.journal = journal
        self.quarantine = quarantine

    def cursor(self) -> Optional[int]:
        return self.journal.cursor

    async def __aiter__(self):
        cursor_of = getattr(self.inner, "cursor", None)
        async for batch in self.inner:
            events = []
            for item in batch:
                if isinstance(item, ContactEvent):
                    events.append(item)
                    continue
                try:
                    events.append(ContactEvent.from_line(item))
                except MalformedEvent as exc:
                    if self.quarantine is not None:
                        self.quarantine.reject(item, exc)
            cursor = cursor_of() if cursor_of is not None else None
            commit = self.journal.append_batch(events, cursor)
            if events:
                out = CommittedBatch(events)
                out.commit = commit
                yield out


@dataclass(frozen=True)
class BuildSpec:
    """Everything needed to rebuild a service bit-identically.

    Plain JSON-serialisable data (settings fields, seed, scheme *name*,
    service knobs) -- the deterministic half of the checkpoint.  A
    scheme passed as a custom :class:`SchemeConfig` object cannot be
    referenced from disk, so durability requires a named scheme.
    """

    settings: dict
    seed: int
    scheme: str
    service: dict = field(default_factory=dict)
    version: int = 1

    @classmethod
    def from_settings(cls, settings: "Settings", seed: int, scheme: str,
                      **service_kwargs) -> "BuildSpec":
        from dataclasses import asdict

        if not isinstance(scheme, str):
            raise CheckpointError(
                "checkpointing needs a named scheme (str), got "
                f"{type(scheme).__name__}; custom SchemeConfig objects "
                "cannot be rebuilt from a spec file"
            )
        fields_ = asdict(settings)
        fields_["seeds"] = list(fields_["seeds"])
        service = {}
        for key, value in service_kwargs.items():
            if value is None or key == "bus":
                continue  # a bus is rewired at restore, not serialised
            try:
                json.dumps(value)
            except TypeError:
                raise CheckpointError(
                    f"service option {key!r} is not JSON-serialisable; "
                    "it cannot go in a build spec"
                )
            service[key] = value
        return cls(settings=fields_, seed=int(seed), scheme=scheme,
                   service=service)

    def settings_obj(self) -> "Settings":
        from repro.experiments.config import Settings

        fields_ = dict(self.settings)
        fields_["seeds"] = tuple(fields_["seeds"])
        return Settings(**fields_)

    def as_dict(self) -> dict:
        return {"version": self.version, "settings": self.settings,
                "seed": self.seed, "scheme": self.scheme,
                "service": self.service}

    @classmethod
    def from_dict(cls, payload: dict) -> "BuildSpec":
        try:
            return cls(settings=dict(payload["settings"]),
                       seed=int(payload["seed"]),
                       scheme=str(payload["scheme"]),
                       service=dict(payload.get("service", {})),
                       version=int(payload.get("version", 1)))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"bad build spec: {exc}") from exc

    def fingerprint(self) -> str:
        return hashlib.sha256(_canonical(self.as_dict())).hexdigest()

    def save(self, directory) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / SPEC_FILE
        existing = None
        if path.exists():
            existing = BuildSpec.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
            if existing.fingerprint() != self.fingerprint():
                raise CheckpointError(
                    f"{path} already holds a different build spec; "
                    "refusing to mix checkpoints of two services "
                    "(use a fresh --checkpoint directory)"
                )
            return path
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.as_dict(), indent=2) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory) -> "BuildSpec":
        path = Path(directory) / SPEC_FILE
        if not path.exists():
            raise CheckpointError(f"no build spec at {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable build spec {path}: {exc}")
        return cls.from_dict(payload)

    def build(self, **service_overrides) -> "tuple[LiveService, ContactTrace]":
        from repro.service.runtime import service_from_settings

        kwargs = dict(self.service)
        kwargs.update(service_overrides)
        return service_from_settings(
            self.settings_obj(), seed=self.seed, scheme=self.scheme, **kwargs
        )


#: counters that are part of the consistent state (they are advanced
#: only by the deterministic ingest path, so a restore reproduces them)
_DIGEST_COUNTERS = (
    "service.contacts.ingested",
    "service.contacts.shed_late",
    "service.contacts.shed_unknown",
    "service.contacts.shed_past_horizon",
)


def runtime_digest(service: "LiveService") -> dict:
    """Summarise the ingest-consistent runtime state for verification.

    Everything here is a pure function of (build spec, journal prefix):
    the watermark and clock, executed-event count, ingest counters, the
    O(1) accountant snapshot, and SHA-256 digests over every cache
    entry and the ground-truth version history.  Query-plane counters
    and wall-clock histograms are deliberately excluded -- queries are
    passive and do not restore.
    """
    runtime = service.runtime
    stores = hashlib.sha256()
    for node_id in runtime.caching_nodes:
        store = runtime.stores[node_id]
        for item_id in store.item_ids():
            entry = store.peek(item_id)
            stores.update(_canonical({
                "node": node_id, "item": item_id,
                "version": entry.version,
                "version_time": entry.version_time,
                "cached_at": entry.cached_at,
            }))
    history = hashlib.sha256()
    times = runtime.history._times
    for item_id in sorted(times):
        history.update(_canonical({"item": item_id, "times": times[item_id]}))
    counters = runtime.stats.counters()
    fresh, valid, total = runtime.freshness_snapshot()
    return {
        "watermark": service.watermark,
        "sim_time": runtime.sim.now,
        "events_executed": runtime.sim.events_executed,
        "counters": {name: counters.get(name, 0)
                     for name in _DIGEST_COUNTERS},
        "accountant": [fresh, valid, total],
        "stores_sha256": stores.hexdigest(),
        "history_sha256": history.hexdigest(),
    }


class Checkpointer:
    """Periodic watermark-consistent manifests over a journal.

    The cache stage calls :meth:`note_commit` right after ingesting a
    committed batch; once ``interval_s`` wall seconds have passed, the
    next call fsyncs the journal and atomically replaces
    ``manifest.json``.  The manifest's ``records`` count and digest
    describe *exactly* the ingested journal prefix -- the stage calls
    synchronously between batches, so there is no in-flight state.
    """

    def __init__(self, directory, service: "LiveService", journal: Journal,
                 quarantine: Optional[Quarantine] = None,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 stale_after_s: Optional[float] = None,
                 spec_fingerprint: Optional[str] = None) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be >= 0")
        self.directory = Path(directory)
        self.service = service
        self.journal = journal
        self.quarantine = quarantine
        self.interval_s = interval_s
        self.stale_after_s = (
            stale_after_s if stale_after_s is not None
            else max(5.0 * interval_s, 10.0)
        )
        self.spec_fingerprint = spec_fingerprint
        self.manifest_path = self.directory / MANIFEST_FILE
        self._pending = journal.records
        self._written: Optional[int] = None
        self._last_write = perf_counter()
        stats = service.stats
        self._c_written = stats.counter("service.checkpoint.written")
        self._h_write_ms = stats.histogram("service.checkpoint.write_ms")

    def note_commit(self, commit: int) -> None:
        """Record that the simulation has ingested journal prefix
        ``commit``; write a manifest when the interval elapsed."""
        self._pending = commit
        if perf_counter() - self._last_write >= self.interval_s:
            self.write()

    def stale(self) -> bool:
        """Whether committed state has outrun the manifest for too long."""
        behind = self._written is None or self._pending > self._written
        return behind and (
            perf_counter() - self._last_write > self.stale_after_s
        )

    def write(self) -> Optional[Path]:
        """fsync the journal and atomically publish a manifest."""
        if self.service._finished:
            # past finish() the clock has run to the horizon, which is
            # not an ingest-consistent point -- never manifest it
            return None
        started = perf_counter()
        self.journal.sync()
        digest = runtime_digest(self.service)
        manifest = {
            "version": 1,
            "spec_sha256": self.spec_fingerprint,
            "records": self._pending,
            "watermark": self.service.watermark,
            "sim_time": self.service.runtime.sim.now,
            "digest": digest,
            "journal": {
                "records": self.journal.records,
                "commits": self.journal.commits,
                "bytes": self.journal.bytes_written,
                "cursor": self.journal.cursor,
            },
            "quarantined": (
                self.quarantine.count if self.quarantine is not None else 0
            ),
            "queue_peaks": {
                name: value
                for name, value in self.service.stats.gauges().items()
                if name.endswith(".peak")
            },
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n",
                       encoding="utf-8")
        os.replace(tmp, self.manifest_path)
        self._written = self._pending
        self._last_write = perf_counter()
        wall_ms = (self._last_write - started) * 1e3
        self._c_written.add(1)
        self._h_write_ms.observe(wall_ms)
        if self.service.bus is not None:
            self.service.bus.emit(CheckpointWritten(
                self.service.runtime.sim.now, self._pending,
                self.service.watermark, self.journal.bytes_written, wall_ms,
                self.quarantine.count if self.quarantine is not None else 0,
            ))
        return self.manifest_path

    def close(self) -> None:
        """Final manifest (if anything moved) and release file handles."""
        if not self.service._finished and self._written != self._pending:
            self.write()
        self.journal.close()
        if self.quarantine is not None:
            self.quarantine.close()


def load_manifest(directory) -> Optional[dict]:
    """Read ``manifest.json`` if present (atomic rename means it is
    either absent or complete -- a torn manifest cannot exist)."""
    path = Path(directory) / MANIFEST_FILE
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable manifest {path}: {exc}")


@dataclass
class RestoredService:
    """Everything :func:`restore_service` hands back."""

    service: "LiveService"
    trace: "ContactTrace"
    cursor: Optional[int]
    records: int
    verified: bool
    manifest: Optional[dict]


def _verify_digest(service: "LiveService", manifest: dict) -> None:
    actual = runtime_digest(service)
    expected = manifest.get("digest", {})
    mismatched = sorted(
        key for key in set(actual) | set(expected)
        if actual.get(key) != expected.get(key)
    )
    if mismatched:
        raise CheckpointError(
            "restored state diverged from the manifest digest at record "
            f"{manifest.get('records')}: mismatched {mismatched} "
            f"(expected {expected}, got "
            f"{ {k: actual.get(k) for k in mismatched} })"
        )


def _replay_chunks(service: "LiveService", events: Sequence[ContactEvent],
                   manifest: Optional[dict]):
    """Generator re-ingesting the journal chunk by chunk.

    Yields after every chunk (the async restore awaits there so probes
    stay answered); ``return``s whether the manifest digest verified.
    A chunk boundary is forced at the manifest's ``records`` count so
    the digest is checked at exactly the consistent point.
    """
    verify_at = manifest["records"] if manifest is not None else None
    if verify_at is not None and verify_at > len(events):
        raise CheckpointError(
            f"manifest covers {verify_at} journal records but only "
            f"{len(events)} were recovered -- journal truncated or "
            "manifest from a different run"
        )
    # serve() starts the sim before the first event arrives, so every
    # manifest reflects a started network; match that before verifying
    service.start_sim()
    verified = False
    if verify_at == 0:
        _verify_digest(service, manifest)
        verified = True
    done = 0
    while done < len(events):
        upto = min(done + RESTORE_CHUNK, len(events))
        if verify_at is not None and done < verify_at:
            upto = min(upto, verify_at)
        service.ingest_batch(events[done:upto])
        done = upto
        if verify_at is not None and done == verify_at and not verified:
            _verify_digest(service, manifest)
            verified = True
        yield done
    return verified


def _begin_restore(directory, service_overrides: dict):
    directory = Path(directory)
    spec = BuildSpec.load(directory)
    manifest = load_manifest(directory)
    if manifest is not None and manifest.get("spec_sha256") not in (
        None, spec.fingerprint()
    ):
        raise CheckpointError(
            f"manifest in {directory} was written by a different build "
            "spec; refusing to restore"
        )
    service, trace = spec.build(**service_overrides)
    scan = scan_journal(directory / JOURNAL_FILE)
    service.state = "resuming"
    return spec, manifest, service, trace, scan


def _finish_restore(directory, spec, manifest, service, trace, scan,
                    verified: bool, interval_s: float,
                    started: float) -> RestoredService:
    service.state = "ok"
    journal = Journal.open(Path(directory) / JOURNAL_FILE, scan=scan)
    service.enable_checkpointing(directory, journal=journal,
                                 interval_s=interval_s,
                                 spec_fingerprint=spec.fingerprint())
    wall_ms = (perf_counter() - started) * 1e3
    service.stats.counter("service.checkpoint.restored").add(1)
    if service.bus is not None:
        service.bus.emit(CheckpointRestored(
            service.runtime.sim.now, scan.records, service.watermark,
            scan.cursor, verified, wall_ms,
        ))
    return RestoredService(service=service, trace=trace, cursor=scan.cursor,
                           records=scan.records, verified=verified,
                           manifest=manifest)


def restore_service(directory, interval_s: float = DEFAULT_INTERVAL_S,
                    **service_overrides) -> RestoredService:
    """Rebuild a service from a checkpoint directory, verified.

    Rebuilds the runtime from ``spec.json``, truncates and replays the
    journal (verifying the manifest digest at its consistent point),
    re-attaches checkpointing to the recovered journal, and reports the
    cursor where the upstream source should resume.
    """
    started = perf_counter()
    spec, manifest, service, trace, scan = _begin_restore(
        directory, service_overrides
    )
    try:
        replay = _replay_chunks(service, scan.events, manifest)
        while True:
            try:
                next(replay)
            except StopIteration as done:
                verified = done.value
                break
    except Exception:
        service.state = "ok"
        raise
    return _finish_restore(directory, spec, manifest, service, trace, scan,
                           verified, interval_s, started)


async def restore_service_async(
    directory,
    interval_s: float = DEFAULT_INTERVAL_S,
    on_built: Optional[Callable[["LiveService"], object]] = None,
    **service_overrides,
) -> RestoredService:
    """:func:`restore_service` that yields to the event loop between
    replay chunks.

    ``on_built`` runs (and is awaited, if a coroutine) as soon as the
    service object exists but *before* the journal replays -- the CLI
    uses it to start the HTTP endpoint, so external probes see
    ``503 resuming`` for the whole replay instead of connection
    refused.
    """
    started = perf_counter()
    spec, manifest, service, trace, scan = _begin_restore(
        directory, service_overrides
    )
    try:
        if on_built is not None:
            maybe = on_built(service)
            if asyncio.iscoroutine(maybe):
                await maybe
        replay = _replay_chunks(service, scan.events, manifest)
        while True:
            try:
                next(replay)
            except StopIteration as done:
                verified = done.value
                break
            await asyncio.sleep(0)
    except Exception:
        service.state = "ok"
        raise
    return _finish_restore(directory, spec, manifest, service, trace, scan,
                           verified, interval_s, started)


def resume_replay_scores(directory, dilation: float = math.inf,
                         **service_overrides) -> dict:
    """Restore from ``directory`` and replay the *rest* of the recorded
    trace to completion, returning the final score (tests, bench).

    The resumed :class:`~repro.service.sources.ReplaySource` starts at
    the journaled cursor, so together with the journal replay the
    service sees every trace event exactly once.
    """
    from repro.service.runtime import serve_and_score
    from repro.service.sources import ReplaySource

    restored = restore_service(directory, **service_overrides)
    events = ContactEvent.from_contacts(restored.trace)
    start = restored.cursor or 0
    pace_from = events[start].start if start < len(events) else 0.0
    source = ReplaySource(events, dilation=dilation, start_at=start,
                          pace_from=pace_from)
    return asyncio.run(serve_and_score(restored.service, source))
