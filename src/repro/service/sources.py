"""Contact-event sources for the live-service pipeline.

Three ways contacts arrive:

- :class:`ReplaySource` -- replay a recorded
  :class:`~repro.mobility.trace.ContactTrace` at a configurable
  *time-dilation* factor (simulation seconds per wall second;
  ``float("inf")`` replays as fast as the pipeline can drain, which is
  the replay-equivalence configuration);
- :class:`FileTailSource` -- follow a JSONL file like ``tail -f``,
  parsing one :class:`~repro.service.events.ContactEvent` per line;
- :class:`SocketSource` -- accept TCP connections and read the same
  line format off every client.

All sources are async iterators yielding *batches* (lists) of events or
raw lines; batching amortises queue and scheduling overhead at high
event rates.  A shared :class:`asyncio.Event` (``stop``) makes every
source interruptible for graceful shutdown.
"""

from __future__ import annotations

import asyncio
import math
from typing import AsyncIterator, Optional, Sequence

from repro.service.events import ContactEvent

#: how long tail/socket sources wait for more input before flushing a
#: partial batch downstream
_FLUSH_INTERVAL = 0.05


class ReplaySource:
    """Replay an in-memory contact sequence at a time-dilation factor.

    ``dilation`` is simulation seconds per wall-clock second: ``60``
    replays an hour of trace per wall minute, ``math.inf`` (default)
    replays with no pacing at all.  Events are yielded in trace order,
    chunked into ``batch_size`` lists.
    """

    def __init__(
        self,
        contacts: Sequence,
        dilation: float = math.inf,
        batch_size: int = 256,
        stop: Optional[asyncio.Event] = None,
    ) -> None:
        if dilation <= 0:
            raise ValueError("dilation must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.events = (
            list(contacts)
            if contacts and isinstance(contacts[0], ContactEvent)
            else ContactEvent.from_contacts(contacts)
        )
        self.dilation = float(dilation)
        self.batch_size = batch_size
        self.stop = stop if stop is not None else asyncio.Event()

    async def __aiter__(self) -> AsyncIterator[list[ContactEvent]]:
        loop = asyncio.get_running_loop()
        wall_start = loop.time()
        paced = math.isfinite(self.dilation)
        batch: list[ContactEvent] = []
        for event in self.events:
            if self.stop.is_set():
                break
            if paced:
                due = wall_start + event.start / self.dilation
                delay = due - loop.time()
                if delay > 0:
                    if batch:
                        yield batch
                        batch = []
                    try:
                        await asyncio.wait_for(
                            self.stop.wait(), timeout=delay
                        )
                        break  # stop requested mid-sleep
                    except asyncio.TimeoutError:
                        pass  # slept until the event is due
            batch.append(event)
            if len(batch) >= self.batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


class FileTailSource:
    """Follow a JSONL contact file, yielding batches of raw lines.

    ``follow=True`` keeps polling for appended lines (like ``tail -f``)
    until ``stop`` is set; ``follow=False`` stops at end-of-file, which
    is the one-shot batch-ingest mode.
    """

    def __init__(
        self,
        path,
        follow: bool = True,
        poll_interval: float = 0.2,
        batch_size: int = 256,
        stop: Optional[asyncio.Event] = None,
    ) -> None:
        self.path = path
        self.follow = follow
        self.poll_interval = poll_interval
        self.batch_size = batch_size
        self.stop = stop if stop is not None else asyncio.Event()

    async def __aiter__(self) -> AsyncIterator[list[str]]:
        with open(self.path, "r", encoding="utf-8") as handle:
            batch: list[str] = []
            buffer = ""
            while not self.stop.is_set():
                chunk = handle.read(65536)
                if chunk:
                    buffer += chunk
                    lines = buffer.split("\n")
                    buffer = lines.pop()  # hold a trailing partial line
                    for line in lines:
                        if line.strip():
                            batch.append(line)
                        if len(batch) >= self.batch_size:
                            yield batch
                            batch = []
                    continue
                if batch:
                    yield batch
                    batch = []
                if not self.follow:
                    break
                try:
                    await asyncio.wait_for(
                        self.stop.wait(), timeout=self.poll_interval
                    )
                except asyncio.TimeoutError:
                    pass
            if buffer.strip():
                yield [buffer]
            elif batch:
                yield batch


class SocketSource:
    """Accept TCP clients streaming JSONL contact lines.

    Runs a stdlib asyncio server on ``host:port`` (``port=0`` picks a
    free port, exposed as :attr:`port` once started).  Lines from all
    clients are funnelled into one internal queue; the async iterator
    yields them in batches until ``stop`` is set.  The internal queue is
    bounded: when the pipeline falls behind, readers block on ``put``
    and TCP flow control pushes back on the senders.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_size: int = 256,
        queue_size: int = 4096,
        stop: Optional[asyncio.Event] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self.stop = stop if stop is not None else asyncio.Event()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _client(self, reader: asyncio.StreamReader, writer) -> None:
        try:
            while not self.stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if text:
                    await self._queue.put(text)
        finally:
            writer.close()

    async def __aiter__(self) -> AsyncIterator[list[str]]:
        if self._server is None:
            await self.start()
        try:
            while not self.stop.is_set():
                try:
                    first = await asyncio.wait_for(
                        self._queue.get(), timeout=_FLUSH_INTERVAL
                    )
                except asyncio.TimeoutError:
                    continue
                batch = [first]
                while len(batch) < self.batch_size:
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                yield batch
            # drain whatever arrived before the stop signal
            tail: list[str] = []
            while True:
                try:
                    tail.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if tail:
                yield tail
        finally:
            await self.close()
