"""Contact-event sources for the live-service pipeline.

Three ways contacts arrive:

- :class:`ReplaySource` -- replay a recorded
  :class:`~repro.mobility.trace.ContactTrace` at a configurable
  *time-dilation* factor (simulation seconds per wall second;
  ``float("inf")`` replays as fast as the pipeline can drain, which is
  the replay-equivalence configuration);
- :class:`FileTailSource` -- follow a JSONL file like ``tail -f``,
  parsing one :class:`~repro.service.events.ContactEvent` per line;
- :class:`SocketSource` -- accept TCP connections and read the same
  line format off every client.

All sources are async iterators yielding *batches* (lists) of events or
raw lines; batching amortises queue and scheduling overhead at high
event rates.  A shared :class:`asyncio.Event` (``stop``) makes every
source interruptible for graceful shutdown.

Sources that can be rewound expose a **cursor** (:meth:`cursor`): a
position token the durability layer journals alongside every committed
batch so a restored service knows exactly where to resume the feed.
``ReplaySource`` counts events consumed from the recorded sequence,
``FileTailSource`` counts consumed bytes (complete lines only -- a held
partial line is not consumed), and ``SocketSource`` has no cursor (a
TCP peer cannot be rewound; recovery beyond the journal relies on the
peer re-sending).
"""

from __future__ import annotations

import asyncio
import math
from time import perf_counter
from typing import AsyncIterator, Optional, Sequence

from repro.service.events import ContactEvent

#: how long tail/socket sources wait for more input before flushing a
#: partial batch downstream
_FLUSH_INTERVAL = 0.05


class ReplaySource:
    """Replay an in-memory contact sequence at a time-dilation factor.

    ``dilation`` is simulation seconds per wall-clock second: ``60``
    replays an hour of trace per wall minute, ``math.inf`` (default)
    replays with no pacing at all.  Events are yielded in trace order,
    chunked into ``batch_size`` lists.

    ``start_at`` skips the first ``start_at`` events (resume after a
    restore); :meth:`cursor` stays an *absolute* index into the full
    sequence so journal cursors remain comparable across resumes.
    ``pace_from`` anchors finite-dilation pacing: an event is due at
    ``(event.start - pace_from) / dilation`` wall seconds after the
    iterator starts, so a resumed replay does not sleep through the
    already-replayed prefix.
    """

    def __init__(
        self,
        contacts: Sequence,
        dilation: float = math.inf,
        batch_size: int = 256,
        stop: Optional[asyncio.Event] = None,
        start_at: int = 0,
        pace_from: float = 0.0,
    ) -> None:
        if dilation <= 0:
            raise ValueError("dilation must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.events = (
            list(contacts)
            if contacts and isinstance(contacts[0], ContactEvent)
            else ContactEvent.from_contacts(contacts)
        )
        if not 0 <= start_at <= len(self.events):
            raise ValueError(
                f"start_at must be in [0, {len(self.events)}], got {start_at}"
            )
        self.dilation = float(dilation)
        self.batch_size = batch_size
        self.stop = stop if stop is not None else asyncio.Event()
        self.start_at = start_at
        self.pace_from = float(pace_from)
        #: absolute index of the next event to yield
        self.position = start_at

    def cursor(self) -> int:
        """Events consumed from the full recorded sequence so far."""
        return self.position

    async def __aiter__(self) -> AsyncIterator[list[ContactEvent]]:
        loop = asyncio.get_running_loop()
        wall_start = loop.time()
        paced = math.isfinite(self.dilation)
        batch: list[ContactEvent] = []
        for index in range(self.start_at, len(self.events)):
            event = self.events[index]
            if self.stop.is_set():
                break
            if paced:
                due = wall_start + (event.start - self.pace_from) / self.dilation
                delay = due - loop.time()
                if delay > 0:
                    if batch:
                        yield batch
                        batch = []
                    try:
                        await asyncio.wait_for(
                            self.stop.wait(), timeout=delay
                        )
                        break  # stop requested mid-sleep
                    except asyncio.TimeoutError:
                        pass  # slept until the event is due
            batch.append(event)
            self.position = index + 1
            if len(batch) >= self.batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


class FileTailSource:
    """Follow a JSONL contact file, yielding batches of raw lines.

    ``follow=True`` keeps polling for appended lines (like ``tail -f``)
    until ``stop`` is set; ``follow=False`` stops at end-of-file, which
    is the one-shot batch-ingest mode.

    The file is read in binary so :meth:`cursor` is an exact byte
    offset: it advances only over *complete* lines that have been
    handed downstream (a trailing partial line stays in the buffer and
    is not counted until its newline arrives).  ``start_offset`` seeks
    there on open -- the resume path after a restore.
    """

    def __init__(
        self,
        path,
        follow: bool = True,
        poll_interval: float = 0.2,
        batch_size: int = 256,
        stop: Optional[asyncio.Event] = None,
        start_offset: int = 0,
    ) -> None:
        if start_offset < 0:
            raise ValueError(f"start_offset must be >= 0, got {start_offset}")
        self.path = path
        self.follow = follow
        self.poll_interval = poll_interval
        self.batch_size = batch_size
        self.stop = stop if stop is not None else asyncio.Event()
        #: byte offset of consumed (complete, yielded-or-batched) lines
        self.offset = start_offset

    def cursor(self) -> int:
        """Byte offset the feed has consumed up to (complete lines)."""
        return self.offset

    async def __aiter__(self) -> AsyncIterator[list[str]]:
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            batch: list[str] = []
            buffer = b""
            while not self.stop.is_set():
                chunk = handle.read(65536)
                if chunk:
                    buffer += chunk
                    lines = buffer.split(b"\n")
                    buffer = lines.pop()  # hold a trailing partial line
                    for raw in lines:
                        self.offset += len(raw) + 1
                        text = raw.decode("utf-8", errors="replace").strip()
                        if text:
                            batch.append(text)
                        if len(batch) >= self.batch_size:
                            yield batch
                            batch = []
                    continue
                if batch:
                    yield batch
                    batch = []
                if not self.follow:
                    break
                try:
                    await asyncio.wait_for(
                        self.stop.wait(), timeout=self.poll_interval
                    )
                except asyncio.TimeoutError:
                    pass
            text = buffer.decode("utf-8", errors="replace").strip()
            if text:
                self.offset += len(buffer)
                yield batch + [text]
            elif batch:
                yield batch


class SocketSource:
    """Accept TCP clients streaming JSONL contact lines.

    Runs a stdlib asyncio server on ``host:port`` (``port=0`` picks a
    free port, exposed as :attr:`port` once started).  Lines from all
    clients are funnelled into one internal queue; the async iterator
    yields them in batches until ``stop`` is set.  The internal queue is
    bounded: when the pipeline falls behind, readers block on ``put``
    and TCP flow control pushes back on the senders.

    Peer lifecycle is fully isolated from the feed: a reset, half-open,
    or garbage-spewing client is disconnected and counted
    (``service.source.disconnects``) without ever raising into the
    server or wedging the iterator, and a peer that comes back after a
    disconnect is counted as a reconnect (``service.source.reconnects``
    plus a ``source.reconnect`` trace record when a bus is wired).
    ``idle_timeout`` evicts peers that go silent, so a dead-but-open
    connection cannot hold resources forever.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_size: int = 256,
        queue_size: int = 4096,
        stop: Optional[asyncio.Event] = None,
        idle_timeout: Optional[float] = None,
        registry=None,
        bus=None,
    ) -> None:
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self.stop = stop if stop is not None else asyncio.Event()
        self.idle_timeout = idle_timeout
        self.bus = bus
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self._server: Optional[asyncio.AbstractServer] = None
        self._wall_start = perf_counter()
        self.peers = 0
        self.disconnects = 0
        if registry is not None:
            self._c_connect = registry.counter("service.source.connects")
            self._c_disconnect = registry.counter("service.source.disconnects")
            self._c_reconnect = registry.counter("service.source.reconnects")
            self._c_idle = registry.counter("service.source.idle_timeouts")
        else:
            self._c_connect = self._c_disconnect = None
            self._c_reconnect = self._c_idle = None

    def cursor(self) -> None:
        """TCP feeds cannot be rewound -- there is no resume cursor."""
        return None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _client(self, reader: asyncio.StreamReader, writer) -> None:
        peer = writer.get_extra_info("peername")
        label = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else str(peer)
        reconnect = self.disconnects > 0
        self.peers += 1
        if self._c_connect is not None:
            self._c_connect.add(1)
            if reconnect:
                self._c_reconnect.add(1)
        if reconnect and self.bus is not None:
            from repro.obs.records import SourceReconnect

            self.bus.emit(SourceReconnect(
                perf_counter() - self._wall_start, label,
                self.peers, self.disconnects,
            ))
        try:
            while not self.stop.is_set():
                try:
                    if self.idle_timeout is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=self.idle_timeout
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    if self._c_idle is not None:
                        self._c_idle.add(1)
                    break
                except (ConnectionResetError, OSError,
                        asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if text:
                    await self._queue.put(text)
        finally:
            self.peers -= 1
            self.disconnects += 1
            if self._c_disconnect is not None:
                self._c_disconnect.add(1)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aiter__(self) -> AsyncIterator[list[str]]:
        if self._server is None:
            await self.start()
        try:
            while not self.stop.is_set():
                try:
                    first = await asyncio.wait_for(
                        self._queue.get(), timeout=_FLUSH_INTERVAL
                    )
                except asyncio.TimeoutError:
                    continue
                batch = [first]
                while len(batch) < self.batch_size:
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                yield batch
            # drain whatever arrived before the stop signal
            tail: list[str] = []
            while True:
                try:
                    tail.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if tail:
                yield tail
        finally:
            await self.close()
