"""Asyncio handler pipeline for the live service.

The ingest path is a chain of single-responsibility handlers connected
by bounded :class:`asyncio.Queue` stages::

    source --> [planner] --> [cache] --> [results]

Each handler consumes items from its inbound queue, does one thing
(parse, schedule onto the simulator, aggregate), and forwards its
output downstream.  The queues are the backpressure mechanism: a slow
stage fills its inbound queue and the feeder's ``await put()`` blocks,
which propagates all the way back to the source (a TCP source simply
stops reading, letting the kernel push back on the sender).  Contact
events are therefore **never dropped** -- they are correctness-carrying
state -- while the query plane (see
:class:`~repro.service.runtime.LiveService`) sheds under overload
instead, because a stale answer stream is recoverable but a missed
contact never is.

Per-stage observability goes through the service's
:class:`~repro.obs.registry.MetricsRegistry`:

- ``service.stage.<name>_ms`` -- histogram of per-batch handling time;
- ``service.stage.<name>.in`` / ``.out`` -- items consumed/produced;
- ``service.queue.<name>`` -- gauge of the stage's inbound queue depth;
- ``service.queue.<name>.peak`` -- high-water mark of that depth.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import AsyncIterator, Optional

from repro.obs.registry import MetricsRegistry

#: End-of-stream sentinel forwarded through every queue so each stage
#: can flush and terminate in order.
EOS = object()


class Handler:
    """One pipeline stage.

    Subclasses implement :meth:`handle`, transforming one inbound item
    into one outbound item (or ``None`` to swallow it).  ``on_start`` /
    ``on_finish`` bracket the stream for setup and flushing.
    """

    name = "handler"

    async def on_start(self) -> None:  # pragma: no cover - default no-op
        return None

    async def handle(self, item):
        return item

    async def on_finish(self) -> None:  # pragma: no cover - default no-op
        return None


class Pipeline:
    """Run items from an async source through a chain of handlers.

    ``queue_size`` bounds every inter-stage queue; the source feeder
    blocks when the first queue is full (backpressure, not shedding).
    """

    def __init__(
        self,
        handlers: list[Handler],
        registry: Optional[MetricsRegistry] = None,
        queue_size: int = 256,
    ) -> None:
        if not handlers:
            raise ValueError("need at least one handler")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.handlers = handlers
        self.registry = registry if registry is not None else MetricsRegistry()
        self.queues: list[asyncio.Queue] = [
            asyncio.Queue(maxsize=queue_size) for _ in handlers
        ]

    def queue_depths(self) -> dict[str, int]:
        """Current inbound queue depth per stage (diagnostics)."""
        return {
            handler.name: queue.qsize()
            for handler, queue in zip(self.handlers, self.queues)
        }

    async def run(self, source: AsyncIterator) -> None:
        """Drive ``source`` through every stage until it is exhausted.

        Returns once the final stage has flushed.  Worker exceptions
        propagate (the remaining workers are cancelled first).
        """
        workers = [
            asyncio.ensure_future(self._stage(index))
            for index in range(len(self.handlers))
        ]
        feeder = asyncio.ensure_future(self._feed(source))
        try:
            await asyncio.gather(feeder, *workers)
        finally:
            for task in (feeder, *workers):
                if not task.done():
                    task.cancel()
            await asyncio.gather(feeder, *workers, return_exceptions=True)

    async def _feed(self, source: AsyncIterator) -> None:
        queue = self.queues[0]
        async for item in source:
            await queue.put(item)  # blocks when full: backpressure
        await queue.put(EOS)

    async def _stage(self, index: int) -> None:
        handler = self.handlers[index]
        inbound = self.queues[index]
        outbound = (
            self.queues[index + 1] if index + 1 < len(self.queues) else None
        )
        registry = self.registry
        latency = registry.histogram(f"service.stage.{handler.name}_ms")
        consumed = registry.counter(f"service.stage.{handler.name}.in")
        produced = registry.counter(f"service.stage.{handler.name}.out")
        depth = registry.gauge(f"service.queue.{handler.name}")
        peak = registry.gauge(f"service.queue.{handler.name}.peak")
        peak_seen = 0

        await handler.on_start()
        while True:
            size = inbound.qsize()
            depth.set(size)
            if size > peak_seen:
                peak_seen = size
                peak.set(size)
            item = await inbound.get()
            if item is EOS:
                break
            consumed.add(1)
            started = perf_counter()
            result = await handler.handle(item)
            latency.observe((perf_counter() - started) * 1e3)
            if result is not None and outbound is not None:
                produced.add(1)
                await outbound.put(result)
        await handler.on_finish()
        depth.set(inbound.qsize())
        if outbound is not None:
            await outbound.put(EOS)
