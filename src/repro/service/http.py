"""Minimal HTTP/1.1 endpoint over a :class:`LiveService`.

Stdlib-only (``asyncio.start_server`` + hand-rolled request parsing, no
new dependencies), serving JSON:

=====================  ====================================================
path                    response
=====================  ====================================================
``/healthz``            health state: ``200 ok`` / ``200
                        checkpoint_stale`` (degraded) / ``429
                        shedding`` / ``503 resuming``
``/status``             service progress summary (:meth:`LiveService.status`)
``/metrics``            full :class:`MetricsRegistry` snapshot
``/freshness``          the O(1) accountant snapshot alone
``/query?item=N``       answer for item ``N`` (``503`` when shed,
                        ``404`` for unknown items, ``400`` for bad input)
=====================  ====================================================

Connections are keep-alive (one parse loop per client) so a load
generator can reuse sockets; ``Connection: close`` is honoured.
Queries go through the service's bounded queue like every other query,
so the HTTP plane inherits the same backpressure/shed behaviour.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import TYPE_CHECKING, Optional
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.runtime import LiveService

#: how long one queued query may wait for the worker before the
#: connection gives up (overload guard; the query itself is not lost)
QUERY_TIMEOUT_S = 10.0

_MAX_REQUEST_LINE = 8192


def _scrub(value):
    """Replace NaN/inf so the payload is strict-JSON parseable."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return value


class HttpApi:
    """Serve a :class:`LiveService` over HTTP."""

    def __init__(
        self,
        service: "LiveService",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request loop ------------------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await reader.readline()
                if not request or len(request) > _MAX_REQUEST_LINE:
                    break
                try:
                    method, target, version = (
                        request.decode("ascii").strip().split(" ", 2)
                    )
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad request"})
                    break
                close = version.upper().endswith("1.0")
                # drain headers; we only care about Connection
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    if header.lower().startswith(b"connection:"):
                        if b"close" in header.lower():
                            close = True
                        elif b"keep-alive" in header.lower():
                            close = False
                if method.upper() != "GET":
                    await self._respond(
                        writer, 405, {"error": "only GET is supported"},
                        close=close,
                    )
                else:
                    status, payload = await self._route(target)
                    await self._respond(writer, status, payload, close=close)
                if close:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(self, target: str) -> tuple[int, dict]:
        parts = urlsplit(target)
        path = parts.path
        service = self.service
        if path == "/healthz":
            return service.health()
        if path == "/status":
            return 200, service.status()
        if path == "/metrics":
            return 200, service.stats.snapshot(service.runtime.sim.now)
        if path == "/freshness":
            fresh, valid, total = service.runtime.freshness_snapshot()
            return 200, {
                "sim_time": service.runtime.sim.now,
                "fresh": fresh,
                "valid": valid,
                "total": total,
                "freshness": fresh / total if total else math.nan,
                "validity": valid / total if total else math.nan,
            }
        if path == "/query":
            params = parse_qs(parts.query)
            raw = params.get("item", [None])[0]
            if raw is None:
                return 400, {"error": "missing ?item=<id>"}
            try:
                item_id = int(raw)
            except ValueError:
                return 400, {"error": f"item must be an integer, got {raw!r}"}
            if item_id not in service.runtime.catalog:
                return 404, {"error": f"unknown item {item_id}"}
            future = service.submit_query(item_id)
            if future is None:
                return 503, {"error": "overloaded: query shed"}
            try:
                result = await asyncio.wait_for(future, timeout=QUERY_TIMEOUT_S)
            except asyncio.TimeoutError:
                return 503, {"error": "overloaded: query timed out"}
            return 200, result.as_dict()
        return 404, {"error": f"no route {path!r}"}

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool = False,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 429: "Too Many Requests",
                   503: "Service Unavailable"}
        body = json.dumps(_scrub(payload)).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()
