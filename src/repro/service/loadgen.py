"""Load generator for the live service.

Open-loop arrivals: query times are drawn up front as a Poisson process
at the target rate, and each query fires at its scheduled wall-clock
instant whether or not earlier queries have completed -- the honest way
to measure an online system (closed loops self-throttle and hide
overload).  Items follow the same Zipf popularity the batch workloads
use, through the cached-normalisation
:class:`~repro.workloads.popularity.ZipfPopularity` hot path.

Two modes:

- **in-process** (:func:`generate_load`): submits straight into a
  :class:`~repro.service.runtime.LiveService` query queue; latency
  percentiles come from the service's own ``MetricsRegistry``
  histogram.
- **HTTP** (:func:`http_load`): persistent keep-alive connections
  against a running ``repro serve`` endpoint; latency is measured at
  the client, 503s count as sheds.

``python -m repro.service.loadgen`` (same engine as ``repro loadgen``)
runs a self-contained smoke: build a service, replay its trace, fire
queries, print a report -- the bench and CI overload checks run it as a
subprocess so peak RSS is attributable to the service alone.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import sys
from time import perf_counter
from typing import Optional

import numpy as np

from repro.workloads.popularity import ZipfPopularity

#: wall seconds granted for in-flight queries to finish after the last
#: arrival has fired
_DRAIN_GRACE_S = 10.0

#: pacing granularity: arrivals due within one tick fire together
_TICK_S = 0.005


def _arrival_offsets(rate: float, duration: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Poisson arrival offsets in ``[0, duration)`` at ``rate`` per second."""
    if rate <= 0 or duration <= 0:
        return np.empty(0)
    chunks = []
    total = 0.0
    expected = max(int(rate * duration * 1.2) + 16, 32)
    while total < duration:
        gaps = rng.exponential(1.0 / rate, size=expected)
        chunks.append(gaps)
        total += float(gaps.sum())
    offsets = np.concatenate(chunks).cumsum()
    return offsets[offsets < duration]


async def generate_load(
    service,
    rate: float,
    duration: float,
    seed: int = 0,
    zipf_s: float = 0.8,
) -> dict:
    """Fire open-loop queries at an in-process service; return a report."""
    rng = np.random.default_rng(seed)
    offsets = _arrival_offsets(rate, duration, rng)
    popularity = ZipfPopularity(service.runtime.catalog.item_ids, s=zipf_s)
    items = popularity.sample_array(len(offsets), rng)

    completed = 0
    errors = 0
    shed = 0
    pending: set = set()

    def _done(future) -> None:
        nonlocal completed, errors
        pending.discard(future)
        if future.cancelled() or future.exception() is not None:
            errors += 1
        else:
            completed += 1

    loop = asyncio.get_running_loop()
    start = loop.time()
    index = 0
    n = len(offsets)
    while index < n:
        now = loop.time() - start
        while index < n and offsets[index] <= now:
            future = service.submit_query(int(items[index]))
            if future is None:
                shed += 1
            else:
                pending.add(future)
                future.add_done_callback(_done)
            index += 1
        if index >= n:
            break
        await asyncio.sleep(min(_TICK_S, offsets[index] - (loop.time() - start)))
    if pending:
        await asyncio.wait(pending, timeout=_DRAIN_GRACE_S)
        for future in pending:
            future.cancel()
    elapsed = loop.time() - start
    tally = service.query_latency
    return {
        "mode": "in-process",
        "offered": n,
        "completed": completed,
        "shed": shed,
        "errors": errors,
        "duration_s": elapsed,
        "target_qps": rate,
        "achieved_qps": completed / elapsed if elapsed > 0 else math.nan,
        "p50_ms": tally.percentile(50.0),
        "p95_ms": tally.percentile(95.0),
        "p99_ms": tally.percentile(99.0),
    }


# -- HTTP client mode ------------------------------------------------------


async def _http_get(reader, writer, path: str) -> int:
    """One keep-alive GET; returns the status code."""
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n".encode("ascii")
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split(b" ", 2)[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        if header.lower().startswith(b"content-length:"):
            length = int(header.split(b":", 1)[1])
    if length:
        await reader.readexactly(length)
    return status


async def http_load(
    host: str,
    port: int,
    item_ids: list[int],
    rate: float,
    duration: float,
    seed: int = 0,
    zipf_s: float = 0.8,
    connections: int = 8,
) -> dict:
    """Open-loop Zipf queries over ``connections`` persistent sockets.

    The target rate is split evenly; each worker paces its own Poisson
    arrival schedule and issues GETs sequentially on its connection, so
    when the server falls behind the measured latency grows instead of
    the offered load shrinking.
    """
    from repro.sim.stats import Tally

    latency = Tally("loadgen.latency_ms")
    completed = 0
    shed = 0
    errors = 0
    offered = 0

    async def worker(worker_id: int) -> None:
        nonlocal completed, shed, errors, offered
        rng = np.random.default_rng([seed, worker_id])
        offsets = _arrival_offsets(rate / connections, duration, rng)
        popularity = ZipfPopularity(item_ids, s=zipf_s)
        items = popularity.sample_array(len(offsets), rng)
        offered += len(offsets)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            loop = asyncio.get_running_loop()
            start = loop.time()
            for offset, item_id in zip(offsets.tolist(), items.tolist()):
                delay = offset - (loop.time() - start)
                if delay > 0:
                    await asyncio.sleep(delay)
                issued = perf_counter()
                try:
                    status = await _http_get(reader, writer, f"/query?item={item_id}")
                except (ConnectionError, asyncio.IncompleteReadError, ValueError):
                    errors += 1
                    reader, writer = await asyncio.open_connection(host, port)
                    continue
                if status == 200:
                    completed += 1
                    latency.observe((perf_counter() - issued) * 1e3)
                elif status == 503:
                    shed += 1
                else:
                    errors += 1
        finally:
            writer.close()

    started = perf_counter()
    await asyncio.gather(*(worker(i) for i in range(connections)))
    elapsed = perf_counter() - started
    return {
        "mode": "http",
        "offered": offered,
        "completed": completed,
        "shed": shed,
        "errors": errors,
        "duration_s": elapsed,
        "target_qps": rate,
        "achieved_qps": completed / elapsed if elapsed > 0 else math.nan,
        "p50_ms": latency.percentile(50.0),
        "p95_ms": latency.percentile(95.0),
        "p99_ms": latency.percentile(99.0),
    }


# -- self-contained runner -------------------------------------------------


def peak_rss_mb() -> float:
    """This process's peak resident set size in MB (ru_maxrss)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def run_loadgen(
    profile: str = "small",
    days: float = 2.0,
    scheme: str = "hdr",
    seed: int = 1,
    rate: float = 2000.0,
    duration: float = 5.0,
    zipf_s: float = 0.8,
    query_queue: int = 1024,
    serve_rate: Optional[float] = None,
    dilation: float = math.inf,
) -> dict:
    """Build a service, replay its own trace, fire queries; one report.

    ``serve_rate`` throttles the query worker (a token bucket), which is
    how the overload checks saturate the bounded queue deterministically
    regardless of how fast the host machine is.
    """
    from repro.experiments.config import DAY, Settings
    from repro.service.runtime import service_from_settings
    from repro.service.sources import ReplaySource

    settings = Settings.fast().with_(
        profile=profile, duration=days * DAY, seeds=(seed,)
    )
    service, trace = service_from_settings(
        settings,
        seed=seed,
        scheme=scheme,
        query_queue=query_queue,
        serve_rate=serve_rate,
    )

    async def _run() -> dict:
        source = ReplaySource(trace, dilation=dilation)
        await service.start()
        ingest = asyncio.ensure_future(service.serve(source))
        try:
            report = await generate_load(
                service, rate=rate, duration=duration,
                seed=seed + 1000, zipf_s=zipf_s,
            )
        finally:
            source.stop.set()
            await ingest
            await service.stop()
        return report

    report = asyncio.run(_run())
    counters = service.stats.counters()
    report.update(
        scheme=scheme,
        seed=seed,
        profile=profile,
        contacts_ingested=counters.get("service.contacts.ingested", 0),
        service_served=counters.get("service.queries.served", 0),
        service_shed=counters.get("service.queries.shed", 0),
        sim_time=service.runtime.sim.now,
        peak_rss_mb=peak_rss_mb(),
    )
    return report


def format_report(report: dict) -> str:
    lines = [
        f"loadgen ({report['mode']}): "
        f"{report['achieved_qps']:,.0f} q/s achieved "
        f"(target {report['target_qps']:,.0f}) over {report['duration_s']:.2f}s",
        f"  offered {report['offered']}, completed {report['completed']}, "
        f"shed {report['shed']}, errors {report['errors']}",
        f"  latency ms: p50 {report['p50_ms']:.3f}  "
        f"p95 {report['p95_ms']:.3f}  p99 {report['p99_ms']:.3f}",
    ]
    if "contacts_ingested" in report:
        lines.append(
            f"  contacts ingested {report['contacts_ingested']:.0f}, "
            f"sim time {report['sim_time']:.0f}s, "
            f"peak RSS {report['peak_rss_mb']:.1f} MB"
        )
    return "\n".join(lines)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the loadgen flags (shared by ``repro loadgen`` and
    ``python -m repro.service.loadgen``)."""
    parser.add_argument("--url", help="target a running service instead of "
                        "building one (e.g. http://127.0.0.1:8642)")
    parser.add_argument("--items", type=int, default=4,
                        help="catalog size assumed in --url mode")
    parser.add_argument("--connections", type=int, default=8,
                        help="persistent connections in --url mode")
    parser.add_argument("--profile", default="small")
    parser.add_argument("--days", type=float, default=2.0)
    parser.add_argument("--scheme", default="hdr")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="target queries per second")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="wall seconds of load")
    parser.add_argument("--zipf", type=float, default=0.8)
    parser.add_argument("--query-queue", type=int, default=1024)
    parser.add_argument("--serve-rate", type=float, default=None,
                        help="throttle the query worker to N served/s "
                        "(overload testing)")
    parser.add_argument("--dilation", default="inf",
                        help="replay sim-seconds per wall second "
                        "(number or 'inf')")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")


def run_from_args(args: argparse.Namespace) -> int:
    if args.url:
        parts = args.url.split("//", 1)[-1].split(":")
        host = parts[0]
        port = int(parts[1]) if len(parts) > 1 else 80
        report = asyncio.run(
            http_load(
                host, port,
                item_ids=list(range(args.items)),
                rate=args.rate, duration=args.duration,
                seed=args.seed, zipf_s=args.zipf,
                connections=args.connections,
            )
        )
        report["peak_rss_mb"] = peak_rss_mb()
    else:
        report = run_loadgen(
            profile=args.profile,
            days=args.days,
            scheme=args.scheme,
            seed=args.seed,
            rate=args.rate,
            duration=args.duration,
            zipf_s=args.zipf,
            query_queue=args.query_queue,
            serve_rate=args.serve_rate,
            dilation=float(args.dilation),
        )
    if args.json:
        print(json.dumps(report))
    else:
        print(format_report(report))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Fire Zipf queries at a live service (self-contained "
        "replay by default, or --url against a running `repro serve`).",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
