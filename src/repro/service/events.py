"""Wire format of the live-service ingest and query planes.

Contact events travel as one JSON object per line (the same shape for
the file-tail and TCP sources)::

    {"a": 12, "b": 40, "start": 3600.0, "end": 3720.0}

Times are simulation seconds, exactly as in a
:class:`~repro.mobility.trace.Contact`.  Query answers are plain dicts
(:meth:`QueryResult.as_dict`) so the HTTP layer can serialise them
without knowing anything about stores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional


class MalformedEvent(ValueError):
    """A stream line that cannot be parsed into a :class:`ContactEvent`."""


@dataclass(frozen=True)
class ContactEvent:
    """One contact observation arriving from a stream."""

    a: int
    b: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise MalformedEvent(
                f"contact ends before it starts: [{self.start}, {self.end}]"
            )

    @classmethod
    def from_line(cls, line: str) -> "ContactEvent":
        """Parse one JSONL line; raises :class:`MalformedEvent`."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MalformedEvent(f"not JSON: {line[:80]!r}") from exc
        if not isinstance(payload, dict):
            raise MalformedEvent(f"expected an object, got {type(payload).__name__}")
        try:
            return cls(
                a=int(payload["a"]),
                b=int(payload["b"]),
                start=float(payload["start"]),
                end=float(payload["end"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, MalformedEvent):
                raise
            raise MalformedEvent(f"bad contact fields in {line[:80]!r}") from exc

    def to_line(self) -> str:
        return json.dumps(
            {"a": self.a, "b": self.b, "start": self.start, "end": self.end}
        )

    @classmethod
    def from_contacts(cls, contacts: Iterable) -> list["ContactEvent"]:
        """Convert :class:`~repro.mobility.trace.Contact` objects (or any
        objects with ``a/b/start/end``) into stream events."""
        return [
            cls(a=c.a, b=c.b, start=c.start, end=c.end) for c in contacts
        ]


@dataclass(frozen=True)
class QueryResult:
    """The service's answer to one item query.

    ``hit`` means some online caching node held an entry; ``fresh`` and
    ``valid`` judge the *best* such entry (highest version, then newest
    version time) against the ground-truth version history at the
    service's current simulation time.
    """

    item_id: int
    sim_time: float
    hit: bool
    fresh: bool = False
    valid: bool = False
    version: Optional[int] = None
    version_time: Optional[float] = None
    served_by: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "item_id": self.item_id,
            "sim_time": self.sim_time,
            "hit": self.hit,
            "fresh": self.fresh,
            "valid": self.valid,
            "version": self.version,
            "version_time": self.version_time,
            "served_by": self.served_by,
        }
