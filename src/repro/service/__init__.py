"""Live service mode: streaming ingestion + online queries.

The batch simulator answers "what freshness *did* a scheme achieve over
this trace"; :mod:`repro.service` answers it *while the trace is still
happening*.  A pipeline of asyncio handlers (contact source -> planner
-> cache stage -> result builder) ingests contact events from a replay,
a JSONL file tail, or a TCP stream, drives the exact scheme/refresh
machinery of :func:`~repro.core.scheme.build_simulation` incrementally,
and serves item queries plus freshness/metrics snapshots over HTTP.

Correctness anchor: replaying a recorded trace at infinite
time-dilation yields freshness/validity metrics identical to the batch
run on the same (trace, scheme, seed) -- see
:mod:`repro.service.runtime` and ``docs/SERVICE.md``.  The durability
layer (:mod:`repro.service.durability`, ``docs/DURABILITY.md``) extends
the same guarantee across a crash: journal + checkpoint + restore keeps
a killed-and-resumed run ``same_as``-identical to an uninterrupted one,
and :mod:`repro.service.supervisor` automates the restart.
"""

from repro.service.durability import (
    BuildSpec,
    CheckpointError,
    Checkpointer,
    DurableSource,
    Journal,
    RestoredService,
    restore_service,
    restore_service_async,
    resume_replay_scores,
    runtime_digest,
    scan_journal,
)
from repro.service.events import ContactEvent, MalformedEvent, QueryResult
from repro.service.http import HttpApi
from repro.service.pipeline import Handler, Pipeline
from repro.service.runtime import (
    LiveService,
    build_live_service,
    replay,
    replay_scores,
    scores_match,
    serve_and_score,
    service_from_settings,
)
from repro.service.sources import FileTailSource, ReplaySource, SocketSource
from repro.service.supervisor import CrashLoop, RestartPolicy, Supervisor


def __getattr__(name: str):
    # Lazy: ``python -m repro.service.loadgen`` imports this package
    # first; an eager loadgen import here would shadow runpy's module
    # execution (and numpy-heavy loadgen is not needed by the runtime).
    if name in ("generate_load", "http_load", "run_loadgen"):
        from repro.service import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BuildSpec",
    "CheckpointError",
    "Checkpointer",
    "ContactEvent",
    "CrashLoop",
    "DurableSource",
    "FileTailSource",
    "Handler",
    "HttpApi",
    "Journal",
    "LiveService",
    "MalformedEvent",
    "Pipeline",
    "QueryResult",
    "ReplaySource",
    "RestartPolicy",
    "RestoredService",
    "SocketSource",
    "Supervisor",
    "build_live_service",
    "generate_load",
    "http_load",
    "replay",
    "replay_scores",
    "restore_service",
    "restore_service_async",
    "resume_replay_scores",
    "run_loadgen",
    "runtime_digest",
    "scan_journal",
    "scores_match",
    "serve_and_score",
    "service_from_settings",
]
