"""Supervised restart of a crashing service child.

``repro serve --supervised`` does not run the service in-process:
it forks a *child* ``repro serve`` (same arguments, minus
``--supervised``) and watches it.  When the child dies with a non-zero
exit -- a crash, an OOM kill, a ``SIGKILL`` -- the supervisor waits out
a bounded exponential backoff and starts a fresh child, which resumes
from the latest checkpoint (``--resume``).  The durability layer's
replay-equivalence guarantee is what makes this safe: a restarted child
is state-identical to one that never crashed.

Two guard rails keep a broken deployment from flapping forever:

- **bounded backoff** -- restart ``n`` sleeps
  ``min(cap, base * factor**(n-1))`` seconds, so a struggling child
  backs off quickly but recovery latency stays bounded;
- **crash-loop circuit breaker** -- a child that lives at least
  ``min_healthy_s`` resets the consecutive-crash counter; one that
  keeps dying young trips the breaker after ``max_restarts``
  consecutive crashes and the supervisor gives up with an error.

Every restart appends a ``service.restart`` record to
``restarts.jsonl`` next to the checkpoint (or a chosen log path), so
``repro report`` can show crash history alongside checkpoint activity.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.obs.records import ServiceRestart

RESTART_LOG = "restarts.jsonl"


class CrashLoop(RuntimeError):
    """The child crashed ``max_restarts`` times in a row; giving up."""


@dataclass(frozen=True)
class RestartPolicy:
    """Backoff + circuit-breaker knobs for :class:`Supervisor`."""

    max_restarts: int = 5
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap_s: float = 30.0
    min_healthy_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.min_healthy_s < 0:
            raise ValueError("min_healthy_s must be >= 0")

    def backoff(self, consecutive: int) -> float:
        """Sleep before restart number ``consecutive`` (1-based)."""
        exponent = max(0, consecutive - 1)
        return min(self.backoff_cap_s,
                   self.backoff_base_s * self.backoff_factor ** exponent)


class Supervisor:
    """Run a child command, restarting it from checkpoints on crashes.

    ``spawn`` and ``sleep`` are injectable for tests (the default spawn
    is :class:`subprocess.Popen`).  :meth:`run` blocks until the child
    exits cleanly (returns its exit code, 0), the circuit breaker trips
    (:class:`CrashLoop`), or the supervisor itself is interrupted
    (SIGTERM/SIGINT are forwarded to the child, whose clean-shutdown
    path then writes a final checkpoint).
    """

    def __init__(
        self,
        command: Sequence[str],
        policy: RestartPolicy = RestartPolicy(),
        log_path: Optional[Path] = None,
        spawn: Optional[Callable[[Sequence[str]], subprocess.Popen]] = None,
        sleep: Callable[[float], None] = time.sleep,
        echo: Callable[[str], None] = lambda line: print(
            line, file=sys.stderr, flush=True
        ),
    ) -> None:
        self.command = list(command)
        self.policy = policy
        self.log_path = Path(log_path) if log_path is not None else None
        self._spawn = spawn if spawn is not None else subprocess.Popen
        self._sleep = sleep
        self._echo = echo
        self.restarts = 0
        self._started = time.monotonic()
        self._child: Optional[subprocess.Popen] = None
        self._interrupted = False

    def _log_restart(self, record: ServiceRestart) -> None:
        if self.log_path is None:
            return
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.log_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.as_dict()) + "\n")

    def _forward(self, signum, frame) -> None:
        self._interrupted = True
        if self._child is not None and self._child.poll() is None:
            self._child.send_signal(signum)

    def run(self, install_signals: bool = True) -> int:
        previous = {}
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(signum, self._forward)
        try:
            return self._run()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _run(self) -> int:
        consecutive = 0
        while True:
            started = time.monotonic()
            self._child = self._spawn(self.command)
            code = self._child.wait()
            uptime = time.monotonic() - started
            self._child = None
            if code == 0 or self._interrupted:
                return code
            if uptime >= self.policy.min_healthy_s:
                # it ran long enough to be considered healthy before
                # dying -- not a crash loop, reset the breaker
                consecutive = 0
            consecutive += 1
            if consecutive > self.policy.max_restarts:
                raise CrashLoop(
                    f"child crashed {consecutive} times in a row "
                    f"(exit {code}); circuit breaker open"
                )
            self.restarts += 1
            backoff = self.policy.backoff(consecutive)
            record = ServiceRestart(
                time.monotonic() - self._started,
                self.restarts, code, uptime, backoff,
            )
            self._log_restart(record)
            self._echo(
                f"supervisor: child exited {code} after {uptime:.1f}s; "
                f"restart {self.restarts} in {backoff:.1f}s"
            )
            if backoff > 0:
                self._sleep(backoff)


def supervise(command: Sequence[str], checkpoint_dir,
              policy: RestartPolicy = RestartPolicy()) -> int:
    """Convenience wrapper: supervise ``command`` with the restart log
    placed next to the checkpoint files."""
    return Supervisor(
        command, policy=policy,
        log_path=Path(checkpoint_dir) / RESTART_LOG,
    ).run()
