"""Epidemic routing: replicate every message to every new peer.

The flooding upper bound: minimum delivery delay, maximum transmission
overhead.  A summary-vector handshake (modelled by peeking at the peer's
``seen`` set) suppresses re-sending messages the peer already carries.
"""

from __future__ import annotations

from repro.routing.base import RoutingAgent
from repro.sim.messages import Message
from repro.sim.node import Node


class EpidemicRouting(RoutingAgent):
    """Replicate to any peer that has not seen the message yet."""

    def should_forward(self, message: Message, peer: Node) -> bool:
        if message.hops_left is not None and message.hops_left <= 0:
            return False
        peer_agent = self.peer_agent(peer)
        if peer_agent is None:
            return message.dst == peer.node_id
        return message.msg_id not in peer_agent.seen

    def split_for(self, message: Message, peer: Node) -> Message:
        outgoing = message.copy()
        if outgoing.hops_left is not None:
            outgoing.hops_left -= 1
        return outgoing
