"""Routing agent base: buffering, dedup, delivery, forwarding loop.

A :class:`RoutingAgent` is a :class:`~repro.sim.node.ProtocolHandler`
that owns a message buffer.  Subclasses implement only the forwarding
*policy* (:meth:`RoutingAgent.should_forward` and, for quota schemes,
:meth:`RoutingAgent.split_for`); the mechanics -- buffer limits, TTL
expiry, duplicate suppression, delivery callbacks, per-kind statistics
-- live here.

Upper layers (the caching protocol) inject messages with
:meth:`RoutingAgent.originate` and register per-kind delivery callbacks
with :meth:`RoutingAgent.on_delivery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.messages import Message
from repro.sim.node import Node, ProtocolHandler
from repro.sim.stats import StatsRegistry


@dataclass
class DeliveryRecord:
    """Bookkeeping for one end-to-end delivery."""

    msg_id: int
    kind: str
    src: int
    dst: int
    created_at: float
    delivered_at: float

    @property
    def delay(self) -> float:
        return self.delivered_at - self.created_at


class RoutingAgent(ProtocolHandler):
    """Store-carry-forward agent; subclasses define the policy."""

    #: message kinds this agent transports; ``None`` means every kind
    #: except those another handler claims explicitly.
    handled_kinds: Optional[frozenset[str]] = None

    def __init__(
        self,
        buffer_capacity: Optional[int] = None,
        stats: Optional[StatsRegistry] = None,
        kinds: Optional[frozenset[str]] = None,
    ) -> None:
        super().__init__()
        if kinds is not None:
            self.handled_kinds = frozenset(kinds)
        self.buffer: dict[int, Message] = {}
        self.buffer_capacity = buffer_capacity
        self.seen: set[int] = set()
        self.stats = stats or StatsRegistry()
        self.deliveries: list[DeliveryRecord] = []
        self._callbacks: dict[str, list[Callable[[Message], None]]] = {}
        self._custody_callbacks: dict[str, list[Callable[[Message, Node], None]]] = {}

    # -- public API for upper layers -------------------------------------

    def originate(self, message: Message) -> None:
        """Inject a locally created message into the network."""
        self.stats.counter(f"routing.originated.{message.kind}").add(1)
        if message.dst == self.node.node_id:
            self._deliver(message)
            return
        self.seen.add(message.msg_id)
        self._store(message)
        # A contact may already be open: try forwarding immediately.
        stored = self.buffer.get(message.msg_id)
        if stored is None:
            return
        for peer_id in list(self.node.neighbors):
            peer = self.node.network.nodes[peer_id]
            self._try_forward_one(stored, peer)

    def on_delivery(self, kind: str, callback: Callable[[Message], None]) -> None:
        """Register ``callback(message)`` for delivered messages of ``kind``."""
        self._callbacks.setdefault(kind, []).append(callback)

    def on_custody(self, kind: str, callback: Callable[[Message, Node], None]) -> None:
        """Register ``callback(message, sender)`` for each first receipt.

        Fires once per message this node receives of ``kind`` -- at
        intermediate custody *and* at the destination -- before any
        delivery callbacks.  On-path caching hangs off this hook; it
        costs nothing when no callback is registered.
        """
        self._custody_callbacks.setdefault(kind, []).append(callback)

    # -- policy hooks -------------------------------------------------------

    def should_forward(self, message: Message, peer: Node) -> bool:
        """Whether to hand ``message`` to ``peer`` on this contact."""
        raise NotImplementedError

    def split_for(self, message: Message, peer: Node) -> Message:
        """The copy actually sent (quota schemes adjust token counts)."""
        return message.copy()

    def after_forward(self, message: Message, peer: Node) -> None:
        """Hook after a successful transfer (e.g. drop the local copy)."""

    def peer_agent(self, peer: Node) -> Optional["RoutingAgent"]:
        """The peer's routing agent of the same class, if any.

        Direct object access stands in for the zero-payload metadata
        handshake (summary vectors, predictability exchange) that real
        implementations perform at contact start.
        """
        agent = peer.find_handler(type(self))
        return agent if isinstance(agent, RoutingAgent) else None

    # -- ProtocolHandler hooks -----------------------------------------------

    def on_contact_start(self, peer: Node) -> None:
        self._expire_buffer()
        self._try_forward_all(peer)

    def on_message(self, message: Message, sender: Node) -> None:
        if message.dst == self.node.node_id:
            if message.msg_id not in self.seen:
                self.seen.add(message.msg_id)
                self._notify_custody(message, sender)
                self._deliver(message)
            return
        if message.msg_id in self.seen and message.msg_id not in self.buffer:
            # Already relayed and dropped (or delivered): ignore the dup.
            self.stats.counter("routing.duplicates").add(1)
            return
        if message.msg_id not in self.seen:
            self._notify_custody(message, sender)
        self.seen.add(message.msg_id)
        self._store(message)
        # Opportunistically forward *this* message onward to other open
        # contacts.  (Only the new arrival: the rest of the buffer was
        # already offered to these peers when the contacts opened, and
        # re-scanning it per arrival is quadratic in buffered messages.)
        stored = self.buffer.get(message.msg_id)
        if stored is None:
            return
        for peer_id in list(self.node.neighbors):
            if peer_id != sender.node_id:
                self._try_forward_one(stored, self.node.network.nodes[peer_id])

    # -- internals ---------------------------------------------------------

    def _notify_custody(self, message: Message, sender: Node) -> None:
        if not self._custody_callbacks:
            return
        for callback in self._custody_callbacks.get(message.kind, []):
            callback(message, sender)

    def _try_forward_all(self, peer: Node) -> None:
        for message in list(self.buffer.values()):
            self._try_forward_one(message, peer)

    def _try_forward_one(self, message: Message, peer: Node) -> None:
        if message.expired(self.node.sim.now):
            return
        if not self.should_forward(message, peer):
            return
        outgoing = self.split_for(message, peer)
        if self.node.send(outgoing, peer):
            self.stats.counter(f"routing.forwarded.{message.kind}").add(1)
            self.after_forward(message, peer)

    def _store(self, message: Message) -> None:
        if message.expired(self.node.sim.now):
            self.stats.counter("routing.dropped_expired").add(1)
            return
        if message.msg_id in self.buffer:
            return
        if self.buffer_capacity is not None and len(self.buffer) >= self.buffer_capacity:
            self._evict_one()
        self.buffer[message.msg_id] = message

    def _evict_one(self) -> None:
        """Drop the oldest message (FIFO by creation time)."""
        if not self.buffer:
            return
        victim = min(self.buffer.values(), key=lambda m: (m.created_at, m.msg_id))
        del self.buffer[victim.msg_id]
        self.stats.counter("routing.evicted").add(1)

    def _expire_buffer(self) -> None:
        now = self.node.sim.now
        dead = [mid for mid, m in self.buffer.items() if m.expired(now)]
        for mid in dead:
            del self.buffer[mid]
        if dead:
            self.stats.counter("routing.dropped_expired").add(len(dead))

    def _deliver(self, message: Message) -> None:
        now = self.node.sim.now
        self.deliveries.append(
            DeliveryRecord(
                msg_id=message.msg_id,
                kind=message.kind,
                src=message.src,
                dst=self.node.node_id,
                created_at=message.created_at,
                delivered_at=now,
            )
        )
        self.stats.counter(f"routing.delivered.{message.kind}").add(1)
        self.stats.tally(f"routing.delay.{message.kind}").observe(now - message.created_at)
        for callback in self._callbacks.get(message.kind, []):
            callback(message)
