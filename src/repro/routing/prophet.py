"""PRoPHET routing (Lindgren et al., probabilistic routing protocol).

Each node maintains a delivery predictability ``P(self, x)`` for every
other node, updated three ways:

- **direct encounter**: ``P(a,b) += (1 - P(a,b)) * P_INIT`` when a meets b;
- **aging**: ``P *= GAMMA ** elapsed_units`` as time passes;
- **transitivity**: on meeting b, for every c known to b,
  ``P(a,c) = max(P(a,c), P(a,b) * P(b,c) * BETA)``.

A message is handed to a peer whose predictability to the destination
exceeds the carrier's.  The predictability-vector exchange at contact
start is modelled by reading the peer agent's table directly.
"""

from __future__ import annotations

from repro.routing.base import RoutingAgent
from repro.sim.messages import Message
from repro.sim.node import Node

P_INIT = 0.75
GAMMA = 0.98
BETA = 0.25
#: seconds per aging unit (PRoPHET ages in abstract "time units")
AGING_UNIT = 3600.0


class ProphetRouting(RoutingAgent):
    """PRoPHET delivery-predictability routing."""

    def __init__(
        self,
        p_init: float = P_INIT,
        gamma: float = GAMMA,
        beta: float = BETA,
        aging_unit: float = AGING_UNIT,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 < p_init <= 1:
            raise ValueError("p_init must be in (0, 1]")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        if not 0 <= beta <= 1:
            raise ValueError("beta must be in [0, 1]")
        self.p_init = p_init
        self.gamma = gamma
        self.beta = beta
        self.aging_unit = aging_unit
        self.predictability: dict[int, float] = {}
        self._last_aged = 0.0

    def on_start(self) -> None:
        self._last_aged = self.node.sim.now

    def predictability_to(self, node_id: int) -> float:
        return self.predictability.get(node_id, 0.0)

    def _age(self) -> None:
        now = self.node.sim.now
        units = (now - self._last_aged) / self.aging_unit
        if units <= 0:
            return
        factor = self.gamma**units
        for key in list(self.predictability):
            self.predictability[key] *= factor
            if self.predictability[key] < 1e-6:
                del self.predictability[key]
        self._last_aged = now

    def on_contact_start(self, peer: Node) -> None:
        self._age()
        pid = peer.node_id
        current = self.predictability.get(pid, 0.0)
        self.predictability[pid] = current + (1.0 - current) * self.p_init
        peer_agent = self.peer_agent(peer)
        if isinstance(peer_agent, ProphetRouting):
            p_ab = self.predictability[pid]
            for dest, p_bc in peer_agent.predictability.items():
                if dest == self.node.node_id:
                    continue
                transitive = p_ab * p_bc * self.beta
                if transitive > self.predictability.get(dest, 0.0):
                    self.predictability[dest] = transitive
        super().on_contact_start(peer)

    def should_forward(self, message: Message, peer: Node) -> bool:
        if message.dst == peer.node_id:
            return True
        peer_agent = self.peer_agent(peer)
        if not isinstance(peer_agent, ProphetRouting):
            return False
        if message.msg_id in peer_agent.seen:
            return False
        return peer_agent.predictability_to(message.dst) > self.predictability_to(message.dst)
