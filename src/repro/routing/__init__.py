"""DTN store-carry-forward routing substrate.

Queries, responses and refresh messages all travel over opportunistic
contacts, so every node runs a routing agent that buffers messages and
forwards them contact-by-contact.  Four classic policies are provided:

- :class:`~repro.routing.direct.DirectDelivery` -- hand the message only
  to its destination (minimum overhead, maximum delay);
- :class:`~repro.routing.epidemic.EpidemicRouting` -- replicate to every
  new peer (minimum delay, maximum overhead);
- :class:`~repro.routing.spraywait.SprayAndWait` -- binary spray of L
  copies, then direct delivery;
- :class:`~repro.routing.prophet.ProphetRouting` -- forward along rising
  delivery predictability;
- :class:`~repro.routing.delegation.DelegationForwarding` -- forward
  only to record-setting carriers (the rule HDR's relay recruitment
  uses), O(sqrt(n)) copies per message.
"""

from repro.routing.base import DeliveryRecord, RoutingAgent
from repro.routing.delegation import DelegationForwarding
from repro.routing.direct import DirectDelivery
from repro.routing.epidemic import EpidemicRouting
from repro.routing.spraywait import SprayAndWait
from repro.routing.prophet import ProphetRouting

__all__ = [
    "DelegationForwarding",
    "DeliveryRecord",
    "DirectDelivery",
    "EpidemicRouting",
    "ProphetRouting",
    "RoutingAgent",
    "SprayAndWait",
]
