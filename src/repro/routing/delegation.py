"""Delegation forwarding (Erramilli et al., MobiHoc 2008).

Each message copy remembers the highest *quality* (here: estimated
contact rate to the destination) of any node that has ever held it.  A
carrier hands a copy to an encountered peer only if the peer's quality
beats that running maximum -- so copies climb the quality gradient and
the expected number of copies per message is O(sqrt(n)) instead of
epidemic's O(n).

This is the same rule HDR's runtime relay recruitment uses
(:mod:`repro.core.refresh`); having it as a standalone routing agent
lets the query/response plane use gradient forwarding too, and gives the
routing suite a quota-free middle ground between direct delivery and
epidemic.

Quality comes from each node's :class:`~repro.contacts.rates
.ContactRateEstimator` when one is installed, falling back to a shared
:class:`~repro.contacts.rates.RateTable`.
"""

from __future__ import annotations

from typing import Optional

from repro.contacts.rates import ContactRateEstimator, RateTable
from repro.routing.base import RoutingAgent
from repro.sim.messages import Message
from repro.sim.node import Node

_THRESHOLD = "dg_threshold"


class DelegationForwarding(RoutingAgent):
    """Forward only to peers whose rate to the destination sets a record."""

    def __init__(self, rates: Optional[RateTable] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.rates = rates

    def quality_of(self, node: Node, destination: int) -> float:
        """A node's estimated contact rate to ``destination``."""
        estimator = node.find_handler(ContactRateEstimator)
        if isinstance(estimator, ContactRateEstimator):
            return estimator.rate_to(destination)
        if self.rates is not None:
            return self.rates.rate(node.node_id, destination)
        return 0.0

    def originate(self, message: Message) -> None:
        message.payload.setdefault(
            _THRESHOLD, self.quality_of(self.node, message.dst)
        )
        super().originate(message)

    def should_forward(self, message: Message, peer: Node) -> bool:
        if message.dst == peer.node_id:
            return True
        peer_agent = self.peer_agent(peer)
        if peer_agent is not None and message.msg_id in peer_agent.seen:
            return False
        threshold = message.payload.get(_THRESHOLD, 0.0)
        return self.quality_of(peer, message.dst) > threshold

    def split_for(self, message: Message, peer: Node) -> Message:
        outgoing = message.copy()
        if peer.node_id != message.dst:
            # Both the kept and the delegated copy raise their threshold
            # to the new record holder's quality.
            record = self.quality_of(peer, message.dst)
            outgoing.payload[_THRESHOLD] = record
            message.payload[_THRESHOLD] = record
        return outgoing
