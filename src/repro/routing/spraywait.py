"""Binary spray-and-wait routing (Spyropoulos et al.).

Each message starts with ``initial_copies`` logical tokens.  While a
carrier holds more than one token it gives half to any new peer
(binary spray); with a single token it waits for the destination
(direct delivery).  Bounded overhead with near-epidemic delay when the
copy budget is generous.

Token counts ride in ``message.payload['sw_tokens']``.
"""

from __future__ import annotations

from repro.routing.base import RoutingAgent
from repro.sim.messages import Message
from repro.sim.node import Node

_TOKENS = "sw_tokens"


class SprayAndWait(RoutingAgent):
    """Binary spray-and-wait with a configurable copy budget."""

    def __init__(self, initial_copies: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        if initial_copies < 1:
            raise ValueError("initial_copies must be >= 1")
        self.initial_copies = initial_copies

    def originate(self, message: Message) -> None:
        message.payload.setdefault(_TOKENS, self.initial_copies)
        super().originate(message)

    def _tokens(self, message: Message) -> int:
        return int(message.payload.get(_TOKENS, 1))

    def should_forward(self, message: Message, peer: Node) -> bool:
        if message.dst == peer.node_id:
            return True
        if self._tokens(message) <= 1:
            return False
        peer_agent = self.peer_agent(peer)
        return peer_agent is None or message.msg_id not in peer_agent.seen

    def split_for(self, message: Message, peer: Node) -> Message:
        outgoing = message.copy()
        if peer.node_id != message.dst:
            tokens = self._tokens(message)
            give = tokens // 2
            outgoing.payload[_TOKENS] = give
            message.payload[_TOKENS] = tokens - give
        return outgoing

    def after_forward(self, message: Message, peer: Node) -> None:
        if peer.node_id == message.dst:
            self.buffer.pop(message.msg_id, None)
