"""Direct delivery: hand a message only to its destination.

One transmission per delivered message -- the overhead floor and the
delay ceiling among single-copy policies.  Used by experiments as the
conservative transport and by spray-and-wait in its wait phase.
"""

from __future__ import annotations

from repro.routing.base import RoutingAgent
from repro.sim.messages import Message
from repro.sim.node import Node


class DirectDelivery(RoutingAgent):
    """Forward only when the peer is the destination."""

    def should_forward(self, message: Message, peer: Node) -> bool:
        return message.dst == peer.node_id

    def after_forward(self, message: Message, peer: Node) -> None:
        # The destination has it; the local copy is no longer useful.
        self.buffer.pop(message.msg_id, None)
