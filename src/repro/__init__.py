"""repro: distributed maintenance of cache freshness in opportunistic
mobile networks.

A faithful, from-scratch reproduction of Gao, Cao, Srivatsa & Iyengar,
*Distributed Maintenance of Cache Freshness in Opportunistic Mobile
Networks* (IEEE ICDCS 2012): the hierarchical distributed refreshment
scheme, its probabilistic replication analysis, the cooperative-caching
and DTN substrates it runs on, the comparison baselines, and a
trace-driven evaluation harness.

Quickstart::

    import numpy as np
    from repro import build_simulation, get_profile, DataCatalog

    rng = np.random.default_rng(7)
    trace = get_profile("small").generate(rng)
    sources = [trace.node_ids[0]]
    catalog = DataCatalog.uniform(
        num_items=4, sources=sources, refresh_interval=4 * 3600.0
    )
    runtime = build_simulation(trace, catalog, scheme="hdr",
                               num_caching_nodes=5)
    runtime.install_freshness_probe(interval=600.0, until=trace.duration)
    runtime.run(until=trace.duration)
    print(runtime.stats.series("probe.freshness").mean())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.caching import (
    CacheEntry,
    CacheStore,
    DataCatalog,
    DataItem,
    QueryManager,
    QueryRecord,
    VersionHistory,
    select_caching_nodes,
)
from repro.contacts import ContactRateEstimator, RateTable, mle_rates
from repro.core import (
    SCHEMES,
    RefreshTree,
    SchemeConfig,
    SchemeRuntime,
    build_simulation,
    build_tree,
    contact_probability,
    plan_edge,
    scheme_variant,
    two_hop_probability,
)
from repro.mobility import (
    Contact,
    ContactTrace,
    PoissonContactModel,
    get_profile,
    list_profiles,
    load_one_report,
    load_pairwise,
    write_pairwise,
)
from repro.sim import Simulator
from repro.workloads import ZipfPopularity, schedule_queries

__version__ = "1.0.0"

__all__ = [
    "CacheEntry",
    "CacheStore",
    "Contact",
    "ContactRateEstimator",
    "ContactTrace",
    "DataCatalog",
    "DataItem",
    "PoissonContactModel",
    "QueryManager",
    "QueryRecord",
    "RateTable",
    "RefreshTree",
    "SCHEMES",
    "SchemeConfig",
    "SchemeRuntime",
    "Simulator",
    "VersionHistory",
    "ZipfPopularity",
    "build_simulation",
    "build_tree",
    "contact_probability",
    "get_profile",
    "list_profiles",
    "load_one_report",
    "load_pairwise",
    "mle_rates",
    "plan_edge",
    "scheme_variant",
    "schedule_queries",
    "select_caching_nodes",
    "two_hop_probability",
    "write_pairwise",
    "__version__",
]
