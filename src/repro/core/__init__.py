"""The paper's contribution: hierarchical distributed cache refreshment.

Cached data in an opportunistic network is refreshed periodically at its
source and goes stale (and eventually expires) at the caching nodes.
The scheme reproduced here -- *HDR*, hierarchical distributed
refreshment -- keeps cached copies fresh with two ideas:

1. **Refresh hierarchy** (:mod:`repro.core.hierarchy`): the caching
   nodes of each item form a tree rooted at the item's source, and each
   node is responsible for refreshing only its own children.  Children
   are assigned to the reachable parent with the highest contact rate,
   under fanout and depth budgets.
2. **Probabilistic replication** (:mod:`repro.core.replication`): a
   refresh message relayed over random contacts may miss its window, so
   each tree edge is provisioned with enough two-hop relays that the
   probability of on-time delivery meets the item's freshness
   requirement, computed in closed form from pairwise contact rates.

:mod:`repro.core.refresh` implements the runtime protocol handlers and
:mod:`repro.core.scheme` wires a full simulation (sources, caching
nodes, trees, relay plans, metrics probes) for HDR and every baseline.
"""

from repro.core.replication import (
    RelayPlan,
    contact_probability,
    decompose_requirement,
    expected_fresh_fraction,
    plan_edge,
    required_direct_rate,
    two_hop_probability,
)
from repro.core.hierarchy import RefreshTree, build_tree, random_tree, star_tree
from repro.core.maintenance import (
    ChurnProcess,
    HierarchyManager,
    managers_for_runtime,
)
from repro.core.refresh import (
    FloodingRefreshHandler,
    HdrRefreshHandler,
    InvalidationRefreshHandler,
    RefreshUpdate,
    SourceHandler,
)
from repro.core.scheme import (
    SCHEMES,
    SchemeConfig,
    SchemeRuntime,
    build_simulation,
    scheme_variant,
)

__all__ = [
    "ChurnProcess",
    "FloodingRefreshHandler",
    "HierarchyManager",
    "InvalidationRefreshHandler",
    "managers_for_runtime",
    "HdrRefreshHandler",
    "RefreshTree",
    "RefreshUpdate",
    "RelayPlan",
    "SCHEMES",
    "SchemeConfig",
    "SchemeRuntime",
    "SourceHandler",
    "build_simulation",
    "build_tree",
    "contact_probability",
    "decompose_requirement",
    "expected_fresh_fraction",
    "plan_edge",
    "random_tree",
    "required_direct_rate",
    "scheme_variant",
    "star_tree",
    "two_hop_probability",
]
