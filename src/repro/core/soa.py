"""Vectorised struct-of-arrays backend for the refresh simulation.

The object backend (:mod:`repro.core.scheme`) dispatches every contact
through per-node :class:`~repro.sim.node.Node` objects and the event
heap -- two Python callbacks and a handler walk per contact, even when
neither endpoint carries any protocol state.  At city scale (10k-100k
nodes) almost every contact is such a no-op: only the sources, the
caching nodes and the currently recruited relays can move data.

:class:`SoaRuntime` replays the *same* simulation from a
:class:`~repro.sim.soa.ContactEventStream`: the contact schedule lives
in sorted NumPy arrays, each slab of events is masked down to the
contacts with at least one protocol-active endpoint in one vector
operation, and only the survivors run protocol logic.  Control events
(freshness probes, source version bumps) live in a tiny heap and
deliveries in a FIFO, replicating the heap's ``(time, priority, seq)``
order exactly:

1. contact starts at time T, in trace sequence order (priority 0,
   static sequence numbers precede all dynamic ones);
2. controls at T (priority 0, dynamic) in scheduling order;
3. deliveries at T (priority 5) in scheduling order -- a FIFO, because
   deliveries are always scheduled at the current time and cascades
   append behind earlier sends;
4. contact ends at T (priority 10).

The per-node protocol state (task tables, neighbour sets, carried
version maps) mirrors :mod:`repro.core.refresh` operation-for-operation
-- including dict-slot and set-iteration order -- so a SoA run is
``RunMetrics.same_as``-identical to the object backend on every
supported scheme.  The cross-check lives in the scheme benchmark's
``soa`` section and the property tests; the pattern follows the
``INCREMENTAL_BOOKKEEPING`` equivalence gate from PR 2.

Unsupported in this backend (build raises ``ValueError``): the
``invalidate`` scheme, the query plane, fault injection, event tracing,
custom link models and churn.  The object backend stays the default and
fully featured path.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Optional

import numpy as np

from repro.caching.items import CacheEntry, DataCatalog, VersionHistory
from repro.caching.ncl import select_caching_nodes
from repro.caching.store import CacheStore, EvictionPolicy
from repro.contacts.rates import RateTable, mle_rates
from repro.core.accounting import FreshnessAccountant
from repro.core.refresh import REFRESH_OVERHEAD, RefreshUpdate, _PendingRefresh
from repro.mobility.arrays import ContactArrays
from repro.mobility.trace import ContactTrace
from repro.obs.registry import MetricsRegistry
from repro.sim.soa import KIND_START, ContactEventStream

#: Events per slab before timestamp alignment.  Big enough that the
#: per-slab numpy overhead amortises; small enough that the slab's
#: Python-side relevant-event lists stay cache friendly.  The equivalence
#: tests shrink it to force many slab boundaries.
SLAB_EVENTS = 65536

_PROBE = 0
_BUMP = 1

#: delivery kinds in the FIFO
_D_REFRESH = 0
_D_RELAY = 1


class _Clock:
    """Duck-typed ``sim`` for the metrics layer: just a settable clock."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = now


class _TaskState:
    """Per-node HDR task machinery, mirroring ``HdrRefreshHandler``.

    Field-for-field the same bookkeeping: the task dict (whose slot
    order the processing order depends on), the per-target index, the
    recruit-capable subset, the expiry heap and the per-version recruit
    budget usage.
    """

    __slots__ = ("tasks", "by_target", "recruitable", "task_seq",
                 "expiry", "recruits_used")

    def __init__(self) -> None:
        self.tasks: dict[tuple[int, int], _PendingRefresh] = {}
        self.by_target: dict[int, set[tuple[int, int]]] = {}
        self.recruitable: set[tuple[int, int]] = set()
        self.task_seq = 0
        self.expiry: list[tuple[float, tuple[int, int], int]] = []
        self.recruits_used: dict[tuple[int, int], int] = {}


class SoaRuntime:
    """A wired SoA simulation: same measurement surface as
    :class:`~repro.core.scheme.SchemeRuntime`, vectorised execution.

    Construct via :func:`build_soa_simulation` (or
    ``build_simulation(..., backend="soa")``).
    """

    def __init__(
        self,
        config,
        stream: ContactEventStream,
        catalog: DataCatalog,
        history: VersionHistory,
        rates: RateTable,
        caching_nodes: list[int],
        sources: list[int],
        stores: dict[int, CacheStore],
        trees: dict,
        plans: dict,
        update_log: list[RefreshUpdate],
        stats: MetricsRegistry,
        accountant: FreshnessAccountant,
        rng: np.random.Generator,
        refresh_mode: str,
        refresh_jitter: float,
    ) -> None:
        self.config = config
        self.stream = stream
        self.catalog = catalog
        self.history = history
        self.rates = rates
        self.caching_nodes = caching_nodes
        self.sources = sources
        self.stores = stores
        self.trees = trees
        self.plans = plans
        self.update_log = update_log
        self.stats = stats
        self.accountant = accountant
        self.rng = rng
        self.refresh_mode = refresh_mode
        self.refresh_jitter = refresh_jitter
        self.relay_budget = config.effective_relay_budget
        self.trace = None  # tracing is unsupported; kept for duck typing

        self.sim = _Clock()
        self._family = {"tree": "tree", "star": "tree",
                        "flood": "flood", "none": "none"}[config.structure]
        self._started = False

        # -- item lookup tables (hot path avoids catalog.get) -----------
        self._items = {item.item_id: item for item in catalog}
        self._item_source = {i.item_id: i.source for i in catalog}
        self._item_lifetime = {i.item_id: i.lifetime for i in catalog}
        self._item_interval = {i.item_id: i.refresh_interval for i in catalog}
        self._item_size = {i.item_id: i.size + REFRESH_OVERHEAD for i in catalog}
        self._item_pos = {item_id: pos
                          for pos, item_id in enumerate(sorted(self._items))}
        self._num_items = len(self._items)
        #: authoritative (version, version_time) per item (each item has
        #: exactly one source, so one flat dict replaces the per-source
        #: ``SourceHandler.current`` dicts)
        self._current: dict[int, tuple[int, float]] = {}

        # -- control heap / delivery FIFO -------------------------------
        self._ctrl: list[tuple[float, int, int, int, int]] = []
        self._ctrl_ctr = itertools.count()
        self._fifo: deque = deque()
        self._probe_interval: Optional[float] = None
        self._probe_until = 0.0

        # -- scheme state ------------------------------------------------
        #: HDR family: per-node task state, created lazily
        self._tstate: dict[int, _TaskState] = {}
        #: HDR family: neighbour sets for cascading nodes only (sources
        #: and caching nodes -- the only nodes that ever walk their open
        #: contacts).  Maintained with the exact add/discard sequence of
        #: ``Node._neighbors`` so ``frozenset`` iteration order matches.
        self._nbr: dict[int, set[int]] = {}
        #: flooding: carried versions + neighbour sets for every node
        self._carried: dict[int, dict[int, tuple[int, float]]] = {}
        self._nbrf: dict[int, set[int]] = {}
        #: flooding: per-node version vector (position-indexed by item);
        #: equal vectors on both endpoints => the push scans would send
        #: nothing in either direction, so the contact is skipped
        self._vsig: dict[int, list[int]] = {}
        #: cached frozenset views of relay plans for recruit checks
        self._relay_sets: dict[tuple[int, int, int], frozenset[int]] = {}

        #: protocol-active mask over node indices (tree family): sources,
        #: caching nodes, and nodes holding a relayed task.  Contacts
        #: with both endpoints inactive are provably no-ops.
        self._active = np.zeros(stream.num_nodes, dtype=bool)
        if self._family == "tree":
            for nid in self.sources:
                self._active[stream.index_of[nid]] = True
                self._nbr[nid] = set()
            for nid in self.caching_nodes:
                self._active[stream.index_of[nid]] = True
                self._nbr[nid] = set()
        self._recompute = False

        # -- slab cursor -------------------------------------------------
        self._pos = 0
        self._rel_time: list[float] = []
        self._rel_kind: list[int] = []
        self._rel_a: list[int] = []
        self._rel_b: list[int] = []
        self._ri = 0
        self._slab_time = stream.time[:0]
        self._slab_aidx = stream.a_idx[:0]
        self._slab_bidx = stream.b_idx[:0]
        self._slab_kind = stream.kind[:0]

        # -- event accounting (comparable to sim.events_executed) --------
        self._static_counted = 0
        self._contacts_counted = 0
        self._ctrl_fired = 0
        self._deliveries = 0

        # -- cached stat handles -----------------------------------------
        stats.counter("net.contacts_scheduled").add(stream.num_contacts)
        self._c_contacts = stats.counter("net.contacts")
        self._c_transfers = stats.counter("net.transfers")
        self._c_bytes = stats.counter("net.bytes")
        self._c_kind_refresh = stats.counter("net.transfers.refresh")
        self._c_kind_relay = stats.counter("net.transfers.refresh_relay")
        self._c_kind_flood = stats.counter("net.transfers.refresh_flood")
        self._c_published = stats.counter("refresh.versions_published")
        self._c_updates = stats.counter("refresh.updates")
        self._c_suppressed = stats.counter("refresh.suppressed")
        self._c_expired = stats.counter("refresh.tasks_expired")
        self._c_recruited = stats.counter("refresh.relays_recruited")
        self._c_budget = stats.counter("refresh.budget_exhausted")
        self._c_stale = stats.counter("refresh.stale_delivery")
        self._c_non_cache = stats.counter("refresh.delivered_to_non_cache")
        self._t_delay = stats.tally("refresh.delay")

    # ------------------------------------------------------------------
    # public surface (duck-typed against SchemeRuntime)
    # ------------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Simulation events handled so far, counted like the object
        backend's ``sim.events_executed``: every static contact event up
        to the horizon (processed or vector-skipped), every control
        firing, and every message delivery."""
        return self._static_counted + self._ctrl_fired + self._deliveries

    def install_freshness_probe(self, interval: float, until: float) -> None:
        """Record freshness/validity ratios every ``interval`` seconds.

        Must be installed before :meth:`run` (the object backend's probe
        is scheduled before the network starts; installing later would
        change control ordering)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if self._started:
            raise RuntimeError("install the probe before run()")
        self._probe_interval = float(interval)
        self._probe_until = float(until)
        self._g_fresh = self.stats.gauge("probe.fresh_slots")
        self._g_valid = self.stats.gauge("probe.valid_slots")
        self._g_total = self.stats.gauge("probe.total_slots")
        self._s_fresh = self.stats.series("probe.freshness")
        self._s_valid = self.stats.series("probe.validity")
        heapq.heappush(
            self._ctrl,
            (self.sim.now + self._probe_interval, next(self._ctrl_ctr),
             _PROBE, 0, 0),
        )

    def freshness_snapshot(self) -> tuple[int, int, int]:
        """``(fresh, valid, total)`` from the incremental accountant."""
        return self.accountant.snapshot(self.sim.now)

    def refresh_overhead(self) -> float:
        """Total refresh-plane transmissions (messages)."""
        return (
            self.stats.counter_value("net.transfers.refresh")
            + self.stats.counter_value("net.transfers.refresh_relay")
            + self.stats.counter_value("net.transfers.refresh_flood")
            + self.stats.counter_value("net.transfers.invalidate")
        )

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation to ``until`` (required: the vectorised
        schedule has no notion of 'run until the heap drains')."""
        if until is None:
            raise ValueError("the soa backend needs an explicit horizon")
        until = float(until)
        if until < self.sim.now:
            raise ValueError(
                f"cannot run to t={until}, now is t={self.sim.now}"
            )
        if not self._started:
            self._started = True
            self._start()
        self._execute(until)
        # Static events up to the horizon count as handled whether they
        # ran protocol logic or were skipped by the relevance mask -- the
        # object backend pops a callback for every one of them.
        executed = self.stream.events_until(until)
        if executed > self._static_counted:
            self._static_counted = executed
        opened = self.stream.contacts_opened_until(until)
        if opened > self._contacts_counted:
            self._c_contacts.add(opened - self._contacts_counted)
            self._contacts_counted = opened
        if self.sim.now < until:
            self.sim.now = until
        return self.sim.now

    def describe(self) -> str:
        """Human-readable wiring summary (mirrors SchemeRuntime)."""
        return (
            f"scheme {self.config.name!r} ({self.config.structure}, "
            f"backend=soa)\n"
            f"  nodes: {self.stream.num_nodes}, sources: {self.sources}, "
            f"caching: {self.caching_nodes}\n"
            f"  items: {len(self.catalog)}, contacts: "
            f"{self.stream.num_contacts}"
        )

    # ------------------------------------------------------------------
    # warm start + t=0 source kick
    # ------------------------------------------------------------------

    def _seed_entry(self, item, nid: int) -> None:
        """Warm-start seeding for one (item, caching node), replicating
        the per-scheme handler's ``seed_entry`` (the 'none' scheme seeds
        the bare store with no update-log entry)."""
        entry = CacheEntry(item_id=item.item_id, version=1,
                           version_time=0.0, cached_at=0.0)
        if self._family == "flood":
            self._flood_carry(nid, item.item_id, 1, 0.0)
        self.stores[nid].put(entry, 0.0)
        if self._family != "none":
            self.update_log.append(
                RefreshUpdate(item_id=item.item_id, node=nid, version=1,
                              version_time=0.0, updated_at=0.0, via="seed")
            )

    def _start(self) -> None:
        """t=0 kick: each source (in sorted id order, like
        ``ContactNetwork.start``) publishes v1 of each of its items and
        schedules the first jittered bump -- publish-then-draw per item,
        preserving the RNG draw order."""
        for source in sorted(self.sources):
            for item in self.catalog.items_of_source(source):
                self._publish(source, item, 0.0)
                gap = self._gap(item)
                heapq.heappush(
                    self._ctrl,
                    (0.0 + gap, next(self._ctrl_ctr), _BUMP,
                     source, item.item_id),
                )

    def _gap(self, item) -> float:
        if self.refresh_mode == "poisson":
            return float(self.rng.exponential(item.refresh_interval))
        if self.refresh_jitter > 0:
            span = self.refresh_jitter * item.refresh_interval
            return item.refresh_interval + float(self.rng.uniform(-span, span))
        return item.refresh_interval

    def _publish(self, source: int, item, now: float) -> None:
        item_id = item.item_id
        version = self._current.get(item_id, (0, 0.0))[0] + 1
        self._current[item_id] = (version, now)
        self.history.record(item_id, version, now)
        self._c_published.add(1)
        # Listener order from build_simulation: accountant first, then
        # the distribution handler.
        self.accountant.version_published(item, version, now)
        if self._family == "tree":
            self._assume_responsibility(source, item_id, version, now, now)
        elif self._family == "flood":
            self._flood_carry(source, item_id, version, now)
            self._flood_push_open(source, now)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _execute(self, until: float) -> None:
        ctrl = self._ctrl
        inf = math.inf
        while True:
            t_static = self._peek_static()
            t_ctrl = ctrl[0][0] if ctrl else inf
            T = t_static if t_static <= t_ctrl else t_ctrl
            if T > until:
                break
            self.sim.now = T
            self._run_timestamp(T)

    def _peek_static(self) -> float:
        """Time of the next relevant static event, loading slabs as
        needed; +inf when the schedule is exhausted."""
        while True:
            rt = self._rel_time
            if self._ri < len(rt):
                return rt[self._ri]
            if not self._load_next_slab():
                return math.inf

    def _load_next_slab(self) -> bool:
        stream = self.stream
        pos = self._pos
        if pos >= stream.num_events:
            return False
        hi = stream.slab_end(pos, SLAB_EVENTS)
        self._pos = hi
        self._slab_time = stream.time[pos:hi]
        self._slab_kind = stream.kind[pos:hi]
        self._slab_aidx = stream.a_idx[pos:hi]
        self._slab_bidx = stream.b_idx[pos:hi]
        self._fill_rel(0)
        return True

    def _fill_rel(self, lo: int) -> None:
        """Build the slab's relevant-event lists from offset ``lo`` on,
        under the current active mask."""
        ids = self.stream._id_arr
        if self._family == "flood":
            # Every contact maintains neighbour sets; the cheap skip
            # happens per-push via the version vectors.
            rel = slice(lo, len(self._slab_time))
            self._rel_time = self._slab_time[rel].tolist()
            self._rel_kind = self._slab_kind[rel].tolist()
            self._rel_a = ids[self._slab_aidx[rel]].tolist()
            self._rel_b = ids[self._slab_bidx[rel]].tolist()
        elif self._family == "tree":
            act = self._active
            mask = act[self._slab_aidx[lo:]] | act[self._slab_bidx[lo:]]
            rel = np.nonzero(mask)[0] + lo
            self._rel_time = self._slab_time[rel].tolist()
            self._rel_kind = self._slab_kind[rel].tolist()
            self._rel_a = ids[self._slab_aidx[rel]].tolist()
            self._rel_b = ids[self._slab_bidx[rel]].tolist()
        else:  # "none": no handlers anywhere; skip the entire schedule
            self._rel_time = []
            self._rel_kind = []
            self._rel_a = []
            self._rel_b = []
        self._ri = 0

    def _run_timestamp(self, T: float) -> None:
        rt = self._rel_time
        rk = self._rel_kind
        ra = self._rel_a
        rb = self._rel_b
        n = len(rt)
        ri = self._ri
        flood = self._family == "flood"
        # phase 1: contact starts at T (priority 0, static seqs first)
        if flood:
            while ri < n and rt[ri] == T and rk[ri] == KIND_START:
                self._flood_contact_start(ra[ri], rb[ri], T)
                ri += 1
        else:
            while ri < n and rt[ri] == T and rk[ri] == KIND_START:
                self._tree_contact_start(ra[ri], rb[ri], T)
                ri += 1
        # phase 2: controls at T (priority 0, dynamic seqs)
        ctrl = self._ctrl
        while ctrl and ctrl[0][0] == T:
            _, _, ckind, carg1, carg2 = heapq.heappop(ctrl)
            self._ctrl_fired += 1
            if ckind == _PROBE:
                self._fire_probe(T)
            else:
                self._fire_bump(T, carg1, carg2)
        # phase 3: deliveries at T (priority 5); cascades append in FIFO
        # order, exactly like same-time heap entries with growing seqs
        if self._fifo:
            self._drain_deliveries(T)
        # phase 4: contact ends at T (priority 10)
        nbr = self._nbrf if flood else self._nbr
        while ri < n and rt[ri] == T:
            a, b = ra[ri], rb[ri]
            sa = nbr.get(a)
            if sa is not None:
                sa.discard(b)
            sb = nbr.get(b)
            if sb is not None:
                sb.discard(a)
            ri += 1
        self._ri = ri
        if self._recompute:
            # A plain node was recruited mid-slab; re-filter the rest of
            # the slab (strictly after T) under the grown active mask.
            self._recompute = False
            lo = int(np.searchsorted(self._slab_time, T, side="right"))
            self._fill_rel(lo)

    # ------------------------------------------------------------------
    # controls
    # ------------------------------------------------------------------

    def _fire_probe(self, now: float) -> None:
        fresh, valid, total = self.accountant.snapshot(now)
        self._g_fresh.set(fresh)
        self._g_valid.set(valid)
        self._g_total.set(total)
        if total:
            self._s_fresh.record(now, fresh / total)
            self._s_valid.record(now, valid / total)
        if now + self._probe_interval <= self._probe_until:
            heapq.heappush(
                self._ctrl,
                (now + self._probe_interval, next(self._ctrl_ctr),
                 _PROBE, 0, 0),
            )

    def _fire_bump(self, now: float, source: int, item_id: int) -> None:
        item = self._items[item_id]
        self._publish(source, item, now)
        heapq.heappush(
            self._ctrl,
            (now + self._gap(item), next(self._ctrl_ctr), _BUMP,
             source, item_id),
        )

    # ------------------------------------------------------------------
    # deliveries
    # ------------------------------------------------------------------

    def _drain_deliveries(self, now: float) -> None:
        fifo = self._fifo
        flood = self._family == "flood"
        while fifo:
            kind, sender, receiver, item_id, version, vtime, target = (
                fifo.popleft()
            )
            self._deliveries += 1
            if flood:
                self._flood_receive(receiver, item_id, version, vtime, now)
            elif kind == _D_RELAY:
                st = self._tstate.get(receiver)
                if st is None:
                    st = self._tstate[receiver] = _TaskState()
                self._set_task(st, item_id, target, version, vtime, False)
                idx = self.stream.index_of[receiver]
                if not self._active[idx]:
                    self._active[idx] = True
                    self._recompute = True
            else:
                self._apply_update(receiver, sender, item_id, version,
                                   vtime, now)

    def _count_send(self, kind_counter, item_id: int) -> None:
        self._c_transfers.add(1)
        kind_counter.add(1)
        self._c_bytes.add(self._item_size[item_id])

    # ------------------------------------------------------------------
    # tree family (hdr / flat / random / source)
    # ------------------------------------------------------------------

    def _tree_contact_start(self, a: int, b: int, now: float) -> None:
        # Exact object order: a adds b and runs its handler, then b.
        nbr = self._nbr
        sa = nbr.get(a)
        if sa is not None:
            sa.add(b)
        self._process_tasks(a, b, now)
        sb = nbr.get(b)
        if sb is not None:
            sb.add(a)
        self._process_tasks(b, a, now)

    def _known_version(self, nid: int, item_id: int) -> int:
        """``HdrRefreshHandler.known_version`` for any node: a source is
        authoritative for its own items, a caching node serves its
        store, everyone else knows nothing."""
        if self._item_source[item_id] == nid:
            version = self._current.get(item_id, (0, 0.0))[0]
            if version > 0:
                return version
        store = self.stores.get(nid)
        if store is not None:
            entry = store.peek(item_id)
            if entry is not None:
                return entry.version
        return 0

    def _assume_responsibility(self, nid: int, item_id: int, version: int,
                               version_time: float, now: float) -> None:
        tree = self.trees.get(item_id)
        if tree is None:
            return
        children = tree.children_of(nid)
        if children:
            st = self._tstate.get(nid)
            if st is None:
                st = self._tstate[nid] = _TaskState()
            for child in children:
                self._set_task(st, item_id, child, version, version_time, True)
        neighbors = self._nbr.get(nid)
        if neighbors:
            for pid in frozenset(neighbors):
                self._process_tasks(nid, pid, now)

    def _set_task(self, st: _TaskState, item_id: int, target: int,
                  version: int, version_time: float,
                  may_recruit: bool) -> None:
        key = (item_id, target)
        existing = st.tasks.get(key)
        if existing is not None and existing.version >= version:
            return
        if existing is not None:
            seq = existing.seq  # value replacement keeps the dict position
        else:
            st.task_seq += 1
            seq = st.task_seq
            st.by_target.setdefault(target, set()).add(key)
        st.tasks[key] = _PendingRefresh(
            version=version, version_time=version_time,
            may_recruit=may_recruit, seq=seq,
        )
        heapq.heappush(
            st.expiry,
            (version_time + self._item_lifetime[item_id], key, version),
        )
        if may_recruit:
            st.recruitable.add(key)
        else:
            st.recruitable.discard(key)

    @staticmethod
    def _drop_task(st: _TaskState, key: tuple[int, int]) -> None:
        del st.tasks[key]
        bucket = st.by_target.get(key[1])
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del st.by_target[key[1]]
        st.recruitable.discard(key)

    def _process_tasks(self, me: int, pid: int, now: float) -> None:
        """``HdrRefreshHandler._process_tasks`` (the indexed path),
        against executor state."""
        st = self._tstate.get(me)
        if st is None:
            return
        tasks = st.tasks
        expiry_heap = st.expiry
        while expiry_heap and expiry_heap[0][0] <= now:
            _, key, version = heapq.heappop(expiry_heap)
            stale = tasks.get(key)
            if stale is not None and stale.version == version:
                self._drop_task(st, key)
                self._c_expired.add(1)
        if not tasks:
            return
        targeted = st.by_target.get(pid)
        if targeted:
            keys = st.recruitable | targeted
        elif st.recruitable:
            keys = set(st.recruitable)
        else:
            return
        candidates = sorted((tasks[key].seq, key) for key in keys)
        lifetimes = self._item_lifetime
        for _, key in candidates:
            task = tasks.get(key)
            if task is None:
                continue
            if now >= task.version_time + lifetimes[key[0]]:
                self._drop_task(st, key)
                self._c_expired.add(1)
                continue
            if pid == key[1]:
                self._deliver_to_target(st, me, pid, key, task)
            elif task.may_recruit:
                self._maybe_recruit(st, me, pid, key, task)

    def _deliver_to_target(self, st: _TaskState, me: int, pid: int,
                           key: tuple[int, int],
                           task: _PendingRefresh) -> None:
        item_id = key[0]
        if self._known_version(pid, item_id) >= task.version:
            # Another copy beat us to it: the handshake suppresses the send.
            self._drop_task(st, key)
            self._c_suppressed.add(1)
            return
        self._count_send(self._c_kind_refresh, item_id)
        self._fifo.append((_D_REFRESH, me, pid, item_id, task.version,
                           task.version_time, 0))
        self._drop_task(st, key)

    def _relay_set(self, plan_key: tuple[int, int, int]) -> frozenset[int]:
        cached = self._relay_sets.get(plan_key)
        if cached is None:
            cached = self._relay_sets[plan_key] = frozenset(
                self.plans[plan_key].relays
            )
        return cached

    def _maybe_recruit(self, st: _TaskState, me: int, pid: int,
                       key: tuple[int, int],
                       task: _PendingRefresh) -> None:
        item_id, target = key
        plan_key = (item_id, me, target)
        plan = self.plans.get(plan_key)
        if plan is None or plan.num_relays == 0:
            return
        handed = task.handed_to
        if pid in handed or len(handed) >= plan.num_relays:
            return
        budget_key = (item_id, task.version)
        if st.recruits_used.get(budget_key, 0) >= self.relay_budget:
            self._c_budget.add(1)
            return
        if pid not in self._relay_set(plan_key):
            rates = self.rates
            if rates.rate(pid, target) <= rates.rate(me, target):
                return
        if self._known_version(pid, item_id) >= task.version:
            return
        pst = self._tstate.get(pid)
        if pst is not None:
            pending = pst.tasks.get(key)
            if pending is not None and pending.version >= task.version:
                handed.add(pid)
                return
        self._count_send(self._c_kind_relay, item_id)
        self._fifo.append((_D_RELAY, me, pid, item_id, task.version,
                           task.version_time, target))
        handed.add(pid)
        st.recruits_used[budget_key] = st.recruits_used.get(budget_key, 0) + 1
        self._c_recruited.add(1)

    def _apply_update(self, receiver: int, sender: int, item_id: int,
                      version: int, version_time: float, now: float) -> None:
        store = self.stores.get(receiver)
        if store is None:
            self._c_non_cache.add(1)
            return
        changed = store.put(
            CacheEntry(item_id=item_id, version=version,
                       version_time=version_time, cached_at=now),
            now,
        )
        if not changed:
            self._c_stale.add(1)
            return
        tree = self.trees.get(item_id)
        parent = tree.parent_of(receiver) if tree else None
        via = "direct" if parent == sender else "relay"
        self.update_log.append(
            RefreshUpdate(item_id=item_id, node=receiver, version=version,
                          version_time=version_time, updated_at=now, via=via)
        )
        self._c_updates.add(1)
        self._t_delay.observe(now - version_time)
        # Hierarchical cascade: now refresh my own children.
        self._assume_responsibility(receiver, item_id, version,
                                    version_time, now)

    # ------------------------------------------------------------------
    # flooding
    # ------------------------------------------------------------------

    def _flood_contact_start(self, a: int, b: int, now: float) -> None:
        nbrf = self._nbrf
        sa = nbrf.get(a)
        if sa is None:
            sa = nbrf[a] = set()
        sa.add(b)
        self._flood_push_to(a, b, now)
        sb = nbrf.get(b)
        if sb is None:
            sb = nbrf[b] = set()
        sb.add(a)
        self._flood_push_to(b, a, now)

    def _flood_carry(self, nid: int, item_id: int, version: int,
                     version_time: float) -> None:
        carried = self._carried.get(nid)
        if carried is None:
            carried = self._carried[nid] = {}
            self._vsig[nid] = [0] * self._num_items
        carried[item_id] = (version, version_time)
        self._vsig[nid][self._item_pos[item_id]] = version

    def _flood_push_open(self, nid: int, now: float) -> None:
        neighbors = self._nbrf.get(nid)
        if neighbors:
            for pid in frozenset(neighbors):
                self._flood_push_to(nid, pid, now)

    def _flood_push_to(self, me: int, pid: int, now: float) -> None:
        carried = self._carried.get(me)
        if not carried:
            return
        vsig = self._vsig
        if vsig.get(pid) == vsig[me]:
            # Identical version vectors: the peek scan would suppress
            # every item in both directions.  O(items) list compare
            # instead of the full handler walk.
            return
        carried_p = self._carried.get(pid)
        lifetimes = self._item_lifetime
        fifo = self._fifo
        for item_id, (version, version_time) in carried.items():
            if now >= version_time + lifetimes[item_id]:
                continue
            if carried_p is not None:
                peer_version = carried_p.get(item_id, (0, 0.0))[0]
                if peer_version >= version:
                    continue
            self._count_send(self._c_kind_flood, item_id)
            fifo.append((_D_REFRESH, me, pid, item_id, version,
                         version_time, 0))

    def _flood_receive(self, receiver: int, item_id: int, version: int,
                       version_time: float, now: float) -> None:
        carried = self._carried.get(receiver)
        if carried is not None:
            if carried.get(item_id, (0, 0.0))[0] >= version:
                return
        self._flood_carry(receiver, item_id, version, version_time)
        store = self.stores.get(receiver)
        if store is not None:
            if store.put(
                CacheEntry(item_id=item_id, version=version,
                           version_time=version_time, cached_at=now),
                now,
            ):
                self.update_log.append(
                    RefreshUpdate(item_id=item_id, node=receiver,
                                  version=version,
                                  version_time=version_time,
                                  updated_at=now, via="flood")
                )
                self._c_updates.add(1)
                self._t_delay.observe(now - version_time)
        # Gossip onward over currently open contacts.
        self._flood_push_open(receiver, now)


def build_soa_simulation(
    trace: "ContactTrace | ContactArrays",
    catalog: DataCatalog,
    scheme="hdr",
    num_caching_nodes: int = 12,
    caching_nodes: Optional[list[int]] = None,
    rates: Optional[RateTable] = None,
    seed: int = 0,
    centrality_window: float = 6 * 3600.0,
    refresh_mode: str = "periodic",
    refresh_jitter: float = 0.0,
    store_capacity: Optional[int] = None,
    eviction_policy: EvictionPolicy = EvictionPolicy.LRU,
    ncl_metric: str = "contact",
) -> SoaRuntime:
    """Wire a :class:`SoaRuntime` over ``trace``.

    Mirrors :func:`repro.core.scheme.build_simulation` step-for-step --
    same RNG consumption order (NCL selection, tree assignment), same
    structures, same warm seeding -- so a SoA run and an object run from
    the same ``(trace, catalog, scheme, seed)`` are metric-identical.

    ``trace`` may be a :class:`~repro.mobility.arrays.ContactArrays`,
    in which case the event stream (and, when ``rates`` is not given,
    the rate estimation) is built array-natively without ever
    materialising ``Contact`` objects.
    """
    from repro.core.scheme import SCHEMES, _build_structure, _plan_tree

    config = SCHEMES[scheme] if isinstance(scheme, str) else scheme
    if config.structure == "invalidate":
        raise ValueError(
            "the soa backend does not support the invalidate scheme; "
            "use backend='object'"
        )
    if refresh_mode not in ("periodic", "poisson"):
        raise ValueError(f"unknown refresh mode {refresh_mode!r}")
    if not 0.0 <= refresh_jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")

    rng = np.random.default_rng(seed)
    stats = MetricsRegistry()
    history = VersionHistory()
    update_log: list[RefreshUpdate] = []

    if rates is None:
        rates = mle_rates(trace)
    sources = sorted({item.source for item in catalog})
    unknown_sources = [s for s in sources if s not in trace.node_ids]
    if unknown_sources:
        raise ValueError(
            f"catalog sources {unknown_sources} are not in the trace"
        )

    if caching_nodes is None:
        caching_nodes = select_caching_nodes(
            rates,
            num_caching_nodes,
            metric=ncl_metric,
            window=centrality_window,
            exclude=set(sources),
            rng=rng if ncl_metric == "random" else None,
        )
    caching_nodes = sorted(int(n) for n in caching_nodes)
    overlap = set(caching_nodes) & set(sources)
    if overlap:
        raise ValueError(
            f"nodes {sorted(overlap)} are both sources and caching nodes"
        )

    trees: dict = {}
    plans: dict = {}
    if config.structure in ("tree", "star"):
        for item in catalog:
            tree = _build_structure(config, item.source, caching_nodes,
                                    rates, rng)
            trees[item.item_id] = tree
            if config.max_relays >= 0:
                _plan_tree(
                    item.item_id,
                    tree,
                    rates,
                    window=item.refresh_interval,
                    p_req=item.freshness_requirement,
                    max_relays=config.max_relays,
                    all_nodes=trace.node_ids,
                    plans=plans,
                )

    if isinstance(trace, ContactArrays):
        stream = ContactEventStream.from_arrays(trace)
    else:
        stream = ContactEventStream(trace, trace.node_ids)

    stores: dict[int, CacheStore] = {
        nid: CacheStore(capacity=store_capacity, policy=eviction_policy)
        for nid in caching_nodes
    }
    accountant = FreshnessAccountant(catalog, caching_nodes)
    for nid in caching_nodes:
        stores[nid].change_listener = accountant.store_listener(nid)

    runtime = SoaRuntime(
        config=config,
        stream=stream,
        catalog=catalog,
        history=history,
        rates=rates,
        caching_nodes=caching_nodes,
        sources=sources,
        stores=stores,
        trees=trees,
        plans=plans,
        update_log=update_log,
        stats=stats,
        accountant=accountant,
        rng=rng,
        refresh_mode=refresh_mode,
        refresh_jitter=refresh_jitter,
    )

    # -- warm start: version 1 everywhere at t=0 -------------------------
    for item in catalog:
        for nid in caching_nodes:
            runtime._seed_entry(item, nid)

    return runtime
