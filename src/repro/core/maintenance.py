"""Dynamic maintenance of the refresh hierarchy under churn.

Mobile devices leave (power off, move away) and return.  The hierarchy
must be *maintained*, not rebuilt: when a caching node departs, its
orphaned subtree is re-attached to the surviving structure; when a node
(re)joins, it is attached to the best reachable parent -- both using the
same rate-aware rule the builder uses, and both recomputing the relay
plans of exactly the edges that changed.

:class:`HierarchyManager` performs those structural repairs for one
item's tree.  :class:`ChurnProcess` drives a simulation with a
memoryless leave/return process over the caching nodes, repairing every
item's hierarchy on each event -- the runtime counterpart of the paper's
"distributed maintenance".

In deployment the repair decisions are taken by the departing node's
parent and the orphans themselves from their local rate estimates; this
module computes the same result centrally for the simulation, exactly
like the builder in :mod:`repro.core.hierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.contacts.rates import RateTable
from repro.core.hierarchy import RefreshTree
from repro.core.replication import RelayPlan, decompose_requirement, plan_edge

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheme import SchemeRuntime


@dataclass
class RepairStats:
    """Counters of structural operations performed by a manager."""

    joins: int = 0
    leaves: int = 0
    reattachments: int = 0
    replanned_edges: int = 0


class HierarchyManager:
    """Repairs one item's refresh tree as members come and go."""

    def __init__(
        self,
        item_id: int,
        tree: RefreshTree,
        rates: RateTable,
        plans: dict[tuple[int, int, int], RelayPlan],
        window: float,
        p_req: float,
        fanout: int = 3,
        max_depth: int = 3,
        max_relays: int = 5,
        all_nodes: tuple[int, ...] = (),
    ) -> None:
        self.item_id = item_id
        self.tree = tree
        self.rates = rates
        self.plans = plans
        self.window = window
        self.p_req = p_req
        self.fanout = fanout
        self.max_depth = max_depth
        self.max_relays = max_relays
        self.all_nodes = tuple(all_nodes)
        self.stats = RepairStats()

    # -- structural operations ------------------------------------------

    def add_member(self, node: int) -> int:
        """Attach ``node`` to the best reachable parent; returns the parent."""
        if node in self.tree.nodes:
            raise ValueError(f"node {node} is already in the tree")
        parent = self._best_parent(node)
        self.tree.attach(node, parent)
        self._replan_edge(parent, node)
        self.stats.joins += 1
        return parent

    def remove_member(self, node: int) -> list[int]:
        """Detach ``node`` and re-attach its orphaned descendants.

        Returns the re-attached nodes.  The departed node's plans (as
        parent and as child) are dropped.
        """
        if node not in self.tree.nodes or node == self.tree.root:
            raise ValueError(f"node {node} is not a removable member")
        parent = self.tree.parent_of(node)
        orphans = self.tree.detach(node)
        self._drop_plans_touching(node)
        # Strongest-rate orphans re-attach first, so they become anchor
        # points for the rest (mirrors the builder's greedy order).
        orphans.sort(key=lambda n: -self._best_rate_to_tree(n))
        for orphan in orphans:
            self._drop_plans_touching(orphan)
            new_parent = self._best_parent(orphan)
            self.tree.attach(orphan, new_parent)
            self._replan_edge(new_parent, orphan)
            self.stats.reattachments += 1
        self.stats.leaves += 1
        del parent  # the departure point is not otherwise special
        return orphans

    # -- internals -----------------------------------------------------------

    def _capacity_of(self, node: int) -> int:
        return self.fanout - len(self.tree.children_of(node))

    def _open_parents(self) -> list[int]:
        return [
            node
            for node in self.tree.nodes
            if self.tree.depth_of(node) < self.max_depth and self._capacity_of(node) > 0
        ]

    def _best_parent(self, node: int) -> int:
        candidates = self._open_parents()
        if not candidates:
            raise ValueError("no parent with spare capacity (budget exhausted)")
        best = max(
            candidates,
            key=lambda p: (self.rates.rate(p, node), -self.tree.depth_of(p), -p),
        )
        if self.rates.rate(best, node) > 0:
            return best
        # no reachable parent: fall back to the shallowest open slot
        return min(candidates, key=lambda p: (self.tree.depth_of(p), p))

    def _best_rate_to_tree(self, node: int) -> float:
        return max(
            (self.rates.rate(node, member) for member in self.tree.nodes),
            default=0.0,
        )

    def _replan_edge(self, parent: int, child: int) -> None:
        depth = max(1, self.tree.max_depth)
        hop_window = self.window / depth
        hop_target = decompose_requirement(self.p_req, depth)
        candidates = [
            (relay, self.rates.rate(parent, relay), self.rates.rate(relay, child))
            for relay in self.all_nodes
            if relay not in (parent, child)
        ]
        self.plans[(self.item_id, parent, child)] = plan_edge(
            parent,
            child,
            direct_rate=self.rates.rate(parent, child),
            relay_candidates=candidates,
            window=hop_window,
            target=hop_target,
            max_relays=self.max_relays,
        )
        self.stats.replanned_edges += 1

    def _drop_plans_touching(self, node: int) -> None:
        dead = [
            key
            for key in self.plans
            if key[0] == self.item_id and (key[1] == node or key[2] == node)
        ]
        for key in dead:
            del self.plans[key]


def managers_for_runtime(runtime: "SchemeRuntime") -> dict[int, HierarchyManager]:
    """One :class:`HierarchyManager` per item of a tree-structured runtime."""
    if runtime.config.structure not in ("tree", "star"):
        raise ValueError(
            f"scheme {runtime.config.name!r} has no hierarchy to maintain"
        )
    managers = {}
    if runtime.config.structure == "star":
        # A star must stay a star: the root holds every member directly.
        fanout = max(runtime.config.fanout, len(runtime.caching_nodes) + 8)
        max_depth = 1
    else:
        fanout = runtime.config.fanout
        max_depth = runtime.config.max_depth
    for item in runtime.catalog:
        managers[item.item_id] = HierarchyManager(
            item_id=item.item_id,
            tree=runtime.trees[item.item_id],
            rates=runtime.rates,
            plans=runtime.plans,
            window=item.refresh_interval,
            p_req=item.freshness_requirement,
            fanout=fanout,
            max_depth=max_depth,
            max_relays=runtime.config.max_relays,
            all_nodes=tuple(sorted(runtime.nodes)),
        )
    return managers


@dataclass
class ChurnEvent:
    """One departure/return of a caching node."""

    time: float
    node: int
    online: bool


class ChurnProcess:
    """Memoryless churn over a runtime's caching nodes.

    Each online caching node departs at rate ``leave_rate`` (per second)
    and returns after an Exp(``mean_downtime``) absence.  On departure
    the node's device goes offline (network-level) and every item's
    hierarchy is repaired around it; on return the node re-joins each
    tree as a leaf (its cache may hold stale entries until the next
    refresh reaches it, exactly as a real returning device would).

    Call :meth:`install` once before ``runtime.run``.
    """

    def __init__(
        self,
        runtime: "SchemeRuntime",
        leave_rate: float,
        mean_downtime: float,
        rng: np.random.Generator,
        until: float,
        managers: Optional[dict[int, HierarchyManager]] = None,
    ) -> None:
        if leave_rate < 0:
            raise ValueError("leave_rate must be non-negative")
        if mean_downtime <= 0:
            raise ValueError("mean_downtime must be positive")
        self.runtime = runtime
        self.leave_rate = leave_rate
        self.mean_downtime = mean_downtime
        self.rng = rng
        self.until = until
        self.managers = managers if managers is not None else managers_for_runtime(runtime)
        self.events: list[ChurnEvent] = []
        self.offline: set[int] = set()

    def install(self) -> None:
        """Schedule the first departure for every caching node."""
        if self.leave_rate == 0:
            return
        for node in self.runtime.caching_nodes:
            self._schedule_departure(node)

    def _schedule_departure(self, node: int) -> None:
        delay = float(self.rng.exponential(1.0 / self.leave_rate))
        when = self.runtime.sim.now + delay
        if when <= self.until:
            self.runtime.sim.schedule_at(when, self._depart, node)

    def _depart(self, node: int) -> None:
        if node in self.offline:
            return
        self.offline.add(node)
        self.runtime.network.set_online(node, False)
        for manager in self.managers.values():
            if node in manager.tree.nodes:
                manager.remove_member(node)
        self.events.append(ChurnEvent(self.runtime.sim.now, node, online=False))
        downtime = float(self.rng.exponential(self.mean_downtime))
        when = self.runtime.sim.now + downtime
        if when <= self.until:
            self.runtime.sim.schedule_at(when, self._return, node)

    def _return(self, node: int) -> None:
        if node not in self.offline:
            return
        self.offline.discard(node)
        self.runtime.network.set_online(node, True)
        for manager in self.managers.values():
            if node not in manager.tree.nodes:
                manager.add_member(node)
        self.events.append(ChurnEvent(self.runtime.sim.now, node, online=True))
        self._schedule_departure(node)

    @property
    def num_departures(self) -> int:
        return sum(1 for event in self.events if not event.online)
