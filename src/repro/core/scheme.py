"""Scheme wiring: assemble a full refresh simulation from a trace.

:func:`build_simulation` is the main entry point of the library.  Given
a contact trace, a data catalog, and a scheme name, it:

1. estimates pairwise contact rates from the trace (the knowledge the
   distributed estimators converge to);
2. selects the caching nodes by contact centrality (NCL selection);
3. builds the per-item refresh structure required by the scheme -- the
   rate-aware tree for HDR, a star for the flat baselines, random trees
   for the assignment ablation;
4. provisions every tree edge with relays via the probabilistic
   replication analysis, honouring each item's freshness requirement;
5. installs the protocol handlers (sources, refresh distributors, and
   optionally the query plane) and seeds version 1 everywhere so every
   scheme starts from the same warm state.

The returned :class:`SchemeRuntime` exposes the simulator, the ground
truth, the update log, and snapshot/probe helpers the metrics layer
consumes.

Schemes (:data:`SCHEMES`):

========== =========== ============ ====== ======================================
name        structure   assignment  relays  role
========== =========== ============ ====== ======================================
hdr         tree        rate-aware  yes    the paper's scheme
flat        star        --          yes    replication without hierarchy
random      tree        random      yes    hierarchy without rate-awareness
source      star        --          no     refresh only on direct source contact
flooding    epidemic    --          --     freshness upper bound / overhead worst
none        --          --          --     expiration-only floor
========== =========== ============ ====== ======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.caching.items import CacheEntry, DataCatalog, VersionHistory
from repro.caching.ncl import select_caching_nodes
from repro.caching.onpath import OnPathConfig, attach_onpath
from repro.caching.placement import PlacementPolicy
from repro.caching.query import QueryManager
from repro.caching.store import CacheStore, EvictionPolicy
from repro.contacts import rates as rates_module
from repro.contacts.rates import RateTable, mle_rates
from repro.core import accounting
from repro.core.accounting import FreshnessAccountant
from repro.core.hierarchy import RefreshTree, build_tree, random_tree, star_tree
from repro.core.refresh import (
    FloodingRefreshHandler,
    HdrRefreshHandler,
    InvalidationRefreshHandler,
    RefreshUpdate,
    SourceHandler,
)
from repro.core.replication import RelayPlan, decompose_requirement, plan_edge
from repro.mobility.arrays import ContactArrays
from repro.mobility.trace import ContactTrace
from repro.obs.bus import EventBus, tee_online_listener
from repro.obs.registry import MetricsRegistry
from repro.routing.epidemic import EpidemicRouting
from repro.sim.engine import Simulator
from repro.sim.network import ContactNetwork, LinkModel
from repro.sim.node import Node
from repro.sim.stats import StatsRegistry


@dataclass(frozen=True)
class SchemeConfig:
    """Everything that defines a refresh scheme variant."""

    name: str
    structure: str  # "tree" | "star" | "flood" | "none"
    assignment: str = "rate"  # "rate" | "random"
    fanout: int = 3
    max_depth: int = 3
    max_relays: int = 5
    #: Per-node cap on relay handoffs per (item, version) -- the bounded
    #: energy/bandwidth a device devotes to one refresh round.  ``None``
    #: defaults to ``fanout * max_relays``: exactly enough for a node to
    #: fully provision the children a tree assigns it, which is the
    #: budget argument for the hierarchy (a flat star concentrates all
    #: children on the source and blows through the same cap).
    relay_budget: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.structure not in ("tree", "star", "flood", "invalidate", "none"):
            raise ValueError(f"unknown structure {self.structure!r}")
        if self.assignment not in ("rate", "random"):
            raise ValueError(f"unknown assignment {self.assignment!r}")
        if self.max_relays < 0:
            raise ValueError("max_relays must be >= 0")
        if self.relay_budget is not None and self.relay_budget < 0:
            raise ValueError("relay_budget must be >= 0")

    @property
    def effective_relay_budget(self) -> int:
        if self.relay_budget is not None:
            return self.relay_budget
        return self.fanout * self.max_relays


SCHEMES: dict[str, SchemeConfig] = {
    "hdr": SchemeConfig(
        name="hdr",
        structure="tree",
        assignment="rate",
        description="Hierarchical distributed refreshment (the paper's scheme).",
    ),
    "flat": SchemeConfig(
        name="flat",
        structure="star",
        max_depth=1,
        description="Probabilistic replication from the source, no hierarchy.",
    ),
    "random": SchemeConfig(
        name="random",
        structure="tree",
        assignment="random",
        description="HDR structure with random responsibility assignment.",
    ),
    "source": SchemeConfig(
        name="source",
        structure="star",
        max_depth=1,
        max_relays=0,
        description="Refresh only on direct contact with the source.",
    ),
    "flooding": SchemeConfig(
        name="flooding",
        structure="flood",
        description="Epidemic version gossip (upper bound).",
    ),
    "invalidate": SchemeConfig(
        name="invalidate",
        structure="invalidate",
        max_relays=0,
        description="Epidemic invalidation notices + direct source re-fetch "
        "(the classic cache-consistency alternative).",
    ),
    "none": SchemeConfig(
        name="none",
        structure="none",
        description="No refreshment; entries only expire.",
    ),
}


@dataclass
class SchemeRuntime:
    """A fully wired simulation plus everything needed to measure it."""

    config: SchemeConfig
    sim: Simulator
    network: ContactNetwork
    nodes: dict[int, Node]
    catalog: DataCatalog
    history: VersionHistory
    rates: RateTable
    caching_nodes: list[int]
    sources: list[int]
    stores: dict[int, CacheStore]
    trees: dict[int, RefreshTree]
    plans: dict[tuple[int, int, int], RelayPlan]
    update_log: list[RefreshUpdate]
    stats: StatsRegistry
    query_managers: dict[int, QueryManager] = field(default_factory=dict)
    #: extra bounded stores installed on ordinary nodes by on-path caching
    onpath_stores: dict[int, CacheStore] = field(default_factory=dict)
    #: per-item caching-node subsets when a placement policy restricted
    #: replication (``None`` = full replication on every caching node)
    assignment: Optional[dict[int, tuple[int, ...]]] = None
    accountant: Optional[FreshnessAccountant] = None
    #: the :class:`~repro.obs.bus.EventBus` every instrumentation point
    #: was wired to, or ``None`` for an untraced (zero-overhead) run
    trace: Optional[EventBus] = None

    def run(self, until: Optional[float] = None) -> float:
        """Start the network and advance the simulation to ``until``."""
        return self.network.run(until=until)

    def freshness_snapshot(
        self, recompute: Optional[bool] = None
    ) -> tuple[int, int, int]:
        """``(fresh, valid, total)`` over all (caching node, item) slots.

        *Fresh* means the cached version is the source's current version
        right now; *valid* means it has not expired.  Slots with no
        entry count as neither.

        Served from the incremental :class:`FreshnessAccountant` in O(1)
        per call.  ``recompute=True`` forces the original brute-force
        O(caching_nodes x catalog) scan -- the debug path equivalence
        tests compare against; ``recompute=None`` follows the global
        :data:`repro.core.accounting.INCREMENTAL_BOOKKEEPING` switch.
        """
        if recompute is None:
            recompute = not accounting.INCREMENTAL_BOOKKEEPING
        if not recompute and self.accountant is not None:
            return self.accountant.snapshot(self.sim.now)
        now = self.sim.now
        fresh = 0
        valid = 0
        total = 0
        for node_id in self.caching_nodes:
            if not self.nodes[node_id].online:
                continue  # an offline device serves nobody
            store = self.stores[node_id]
            for item in self.catalog:
                total += 1
                entry = store.peek(item.item_id)
                if entry is None:
                    continue
                if not entry.expired(now, item):
                    valid += 1
                if self.history.is_fresh(item.item_id, entry.version, now):
                    fresh += 1
        return fresh, valid, total

    def verify_freshness_accounting(self) -> tuple[int, int, int]:
        """Assert the incremental counters match the brute-force scan.

        Returns the snapshot on success; raises ``AssertionError`` with
        both readings otherwise.  Test/debug helper.
        """
        incremental = self.freshness_snapshot(recompute=False)
        brute = self.freshness_snapshot(recompute=True)
        if incremental != brute:
            raise AssertionError(
                f"freshness accounting diverged at t={self.sim.now}: "
                f"incremental={incremental}, brute-force={brute}"
            )
        return incremental

    def install_freshness_probe(self, interval: float, until: float) -> None:
        """Record freshness/validity ratios every ``interval`` seconds.

        With the incremental accountant each probe is O(1) (plus lazily
        draining whatever expired since the previous probe) instead of a
        full store scan.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        gauge_fresh = self.stats.gauge("probe.fresh_slots")
        gauge_valid = self.stats.gauge("probe.valid_slots")
        gauge_total = self.stats.gauge("probe.total_slots")

        def probe() -> None:
            fresh, valid, total = self.freshness_snapshot()
            now = self.sim.now
            gauge_fresh.set(fresh)
            gauge_valid.set(valid)
            gauge_total.set(total)
            if total:
                self.stats.series("probe.freshness").record(now, fresh / total)
                self.stats.series("probe.validity").record(now, valid / total)
            if now + interval <= until:
                self.sim.schedule_after(interval, probe)

        self.sim.schedule_at(self.sim.now + interval, probe)

    def describe(self) -> str:
        """Human-readable summary of the wiring, for logs and debugging."""
        lines = [
            f"scheme {self.config.name!r} ({self.config.structure}, "
            f"assignment={self.config.assignment})",
            f"  nodes: {len(self.nodes)}, sources: {self.sources}, "
            f"caching: {self.caching_nodes}",
            f"  items: {len(self.catalog)}, relay budget/version: "
            f"{self.config.effective_relay_budget}",
        ]
        for item_id in sorted(self.trees):
            tree = self.trees[item_id]
            planned = [
                plan for key, plan in self.plans.items() if key[0] == item_id
            ]
            met = sum(1 for plan in planned if plan.meets_target)
            lines.append(
                f"  item {item_id}: tree depth {tree.max_depth}, "
                f"{len(planned)} edges, {met} meet the hop target"
            )
            lines.append(
                "    " + tree.render().replace("\n", "\n    ")
            )
        return "\n".join(lines)

    def query_records(self):
        """All query records across nodes, ordered by issue time."""
        records = [
            record
            for manager in self.query_managers.values()
            for record in manager.records
        ]
        records.sort(key=lambda r: (r.issued_at, r.query_id))
        return records

    def refresh_overhead(self) -> float:
        """Total refresh-plane transmissions (messages)."""
        return (
            self.stats.counter_value("net.transfers.refresh")
            + self.stats.counter_value("net.transfers.refresh_relay")
            + self.stats.counter_value("net.transfers.refresh_flood")
            + self.stats.counter_value("net.transfers.invalidate")
        )

    def refresh_bytes(self) -> float:
        """Approximate refresh-plane bytes (message size x count is exact
        here because all refresh messages of an item share one size)."""
        return sum(
            t.size
            for t in self.network.transfers
            if t.kind.startswith("refresh") or t.kind == "invalidate"
        ) if self.network.record_transfers else float("nan")


def build_simulation(
    trace: "ContactTrace | ContactArrays",
    catalog: DataCatalog,
    scheme: str | SchemeConfig = "hdr",
    num_caching_nodes: int = 12,
    caching_nodes: Optional[list[int]] = None,
    rates: Optional[RateTable] = None,
    seed: int = 0,
    with_queries: bool = False,
    query_hop_limit: int = 4,
    query_ttl: float = 6 * 3600.0,
    link_model: Optional[LinkModel] = None,
    centrality_window: float = 6 * 3600.0,
    record_transfers: bool = False,
    refresh_mode: str = "periodic",
    refresh_jitter: float = 0.0,
    store_capacity: Optional[int] = None,
    eviction_policy: EvictionPolicy = EvictionPolicy.LRU,
    ncl_metric: str = "contact",
    bus: Optional[EventBus] = None,
    backend: str = "object",
    placement: Optional[PlacementPolicy] = None,
    onpath: Optional[OnPathConfig] = None,
) -> "SchemeRuntime":
    """Wire a complete refresh simulation over ``trace``.

    ``scheme`` is a name from :data:`SCHEMES` or an explicit
    :class:`SchemeConfig`.  ``caching_nodes`` overrides NCL selection
    (otherwise the top ``num_caching_nodes`` by contact centrality,
    excluding sources, are used).  ``rates`` defaults to the whole-trace
    MLE estimate.

    ``bus`` wires every instrumentation point (engine, network, stores,
    refresh handlers, query managers, churn) to an
    :class:`~repro.obs.bus.EventBus`.  Tracing is passive: it consumes
    no randomness and changes no event ordering, so a traced run
    produces metrics identical to an untraced one.  (``msg.create``
    records are scoped per run by the caller via
    :func:`repro.sim.messages.set_message_trace`, because the hook is
    process-global.)

    ``placement`` is an optional
    :class:`~repro.caching.placement.PlacementPolicy`: its
    ``select_nodes`` hook may replace NCL caching-node selection
    (geographic spread), and its ``assign`` hook may restrict which
    caching nodes replicate which item (popularity-budgeted
    cooperative caching); unassigned slots stay empty and count
    against freshness.  ``onpath`` enables LCE/LCD on-path caching of
    responses (requires ``with_queries=True``); see
    :mod:`repro.caching.onpath`.

    ``backend`` selects the execution engine: ``"object"`` (default) is
    this per-node object graph; ``"soa"`` returns a
    :class:`~repro.core.soa.SoaRuntime` driving the same protocols over
    a vectorised struct-of-arrays contact schedule (metric-identical,
    ~order-of-magnitude faster at scale, but without the query plane,
    link models, tracing or the invalidate scheme).  The soa backend
    also accepts a :class:`~repro.mobility.arrays.ContactArrays` trace
    and then builds everything array-natively.
    """
    if backend == "soa":
        from repro.core.soa import build_soa_simulation

        unsupported = []
        if with_queries:
            unsupported.append("with_queries")
        if link_model is not None:
            unsupported.append("link_model")
        if record_transfers:
            unsupported.append("record_transfers")
        if bus is not None:
            unsupported.append("bus")
        if placement is not None:
            unsupported.append("placement")
        if onpath is not None:
            unsupported.append("onpath")
        if unsupported:
            raise ValueError(
                f"the soa backend does not support {unsupported}; "
                "use backend='object'"
            )
        return build_soa_simulation(
            trace,
            catalog,
            scheme=scheme,
            num_caching_nodes=num_caching_nodes,
            caching_nodes=caching_nodes,
            rates=rates,
            seed=seed,
            centrality_window=centrality_window,
            refresh_mode=refresh_mode,
            refresh_jitter=refresh_jitter,
            store_capacity=store_capacity,
            eviction_policy=eviction_policy,
            ncl_metric=ncl_metric,
        )
    if backend != "object":
        raise ValueError(f"unknown backend {backend!r} (object|soa)")
    if not isinstance(trace, ContactTrace):
        raise ValueError(
            "the object backend needs a ContactTrace; pass "
            "trace.to_trace() or use backend='soa' for ContactArrays"
        )
    if onpath is not None and not with_queries:
        raise ValueError("onpath caching requires with_queries=True")
    config = SCHEMES[scheme] if isinstance(scheme, str) else scheme
    rng = np.random.default_rng(seed)
    stats = MetricsRegistry()
    history = VersionHistory()
    update_log: list[RefreshUpdate] = []

    if rates is None:
        rates = mle_rates(trace)
    sources = sorted({item.source for item in catalog})
    unknown_sources = [s for s in sources if s not in trace.node_ids]
    if unknown_sources:
        raise ValueError(f"catalog sources {unknown_sources} are not in the trace")

    if caching_nodes is None and placement is not None:
        caching_nodes = placement.select_nodes(
            rates, num_caching_nodes, exclude=set(sources), window=centrality_window
        )
    if caching_nodes is None:
        caching_nodes = select_caching_nodes(
            rates,
            num_caching_nodes,
            metric=ncl_metric,
            window=centrality_window,
            exclude=set(sources),
            rng=rng if ncl_metric == "random" else None,
        )
    caching_nodes = sorted(int(n) for n in caching_nodes)
    overlap = set(caching_nodes) & set(sources)
    if overlap:
        raise ValueError(f"nodes {sorted(overlap)} are both sources and caching nodes")

    assignment: Optional[dict[int, tuple[int, ...]]] = None
    if placement is not None:
        assignment = placement.assign(
            catalog, caching_nodes, rates, window=centrality_window
        )
    if assignment is not None:
        stray = {
            nid for members in assignment.values() for nid in members
        } - set(caching_nodes)
        if stray:
            raise ValueError(
                f"placement assigned non-caching nodes {sorted(stray)}"
            )

    # -- structures -------------------------------------------------------
    trees: dict[int, RefreshTree] = {}
    plans: dict[tuple[int, int, int], RelayPlan] = {}
    if config.structure in ("tree", "star"):
        for item in catalog:
            members = (
                list(assignment[item.item_id])
                if assignment is not None and item.item_id in assignment
                else caching_nodes
            )
            tree = _build_structure(config, item.source, members, rates, rng)
            trees[item.item_id] = tree
            if config.max_relays >= 0:
                _plan_tree(
                    item.item_id,
                    tree,
                    rates,
                    window=item.refresh_interval,
                    p_req=item.freshness_requirement,
                    max_relays=config.max_relays,
                    all_nodes=trace.node_ids,
                    plans=plans,
                )

    # -- nodes, network, handlers -------------------------------------------
    sim = Simulator()
    nodes = {nid: Node(nid) for nid in trace.node_ids}
    network = ContactNetwork(
        sim, nodes, trace, link_model=link_model, stats=stats,
        record_transfers=record_transfers,
    )

    stores: dict[int, CacheStore] = {
        nid: CacheStore(capacity=store_capacity, policy=eviction_policy)
        for nid in caching_nodes
    }
    # Incremental freshness accounting: mirror every store mutation,
    # publish and churn event into running fresh/valid counters.  Wired
    # before any seeding/handlers so no mutation escapes it.
    accountant = FreshnessAccountant(catalog, caching_nodes)
    for nid in caching_nodes:
        stores[nid].change_listener = accountant.store_listener(nid)
    network.add_online_listener(accountant.online_changed)
    if bus is not None:
        # Wired before seeding/handlers so the warm-start puts are traced.
        sim.trace = bus
        network.trace = bus
        network.add_online_listener(tee_online_listener(bus))
        for nid in caching_nodes:
            stores[nid].trace = bus
            stores[nid].trace_node = nid
    refresh_handlers: dict[int, HdrRefreshHandler | FloodingRefreshHandler] = {}
    if config.structure in ("tree", "star"):
        for nid, node in nodes.items():
            handler = HdrRefreshHandler(
                catalog=catalog,
                trees=trees,
                plans=plans,
                update_log=update_log,
                stats=stats,
                store=stores.get(nid),
                rates=rates,
                relay_budget=config.effective_relay_budget,
            )
            handler.trace = bus
            node.add_handler(handler)
            refresh_handlers[nid] = handler
    elif config.structure == "flood":
        for nid, node in nodes.items():
            handler = FloodingRefreshHandler(
                catalog=catalog,
                update_log=update_log,
                stats=stats,
                store=stores.get(nid),
            )
            node.add_handler(handler)
            refresh_handlers[nid] = handler
    elif config.structure == "invalidate":
        caching_set = frozenset(caching_nodes)
        for nid, node in nodes.items():
            handler = InvalidationRefreshHandler(
                catalog=catalog,
                caching_nodes=caching_set,
                update_log=update_log,
                stats=stats,
                store=stores.get(nid),
            )
            node.add_handler(handler)
            refresh_handlers[nid] = handler

    source_handlers: dict[int, SourceHandler] = {}
    for source in sources:
        handler = SourceHandler(
            items=catalog.items_of_source(source),
            history=history,
            stats=stats,
            mode=refresh_mode,
            jitter=refresh_jitter,
            rng=rng if (refresh_mode == "poisson" or refresh_jitter > 0) else None,
        )
        nodes[source].add_handler(handler)
        source_handlers[source] = handler
        # The accountant must observe the publish before the distributor
        # reacts to it (the distributor's sends mutate stores, and those
        # mutations must be judged against the new current version).
        handler.on_new_version(accountant.version_published)
        distributor = refresh_handlers.get(source)
        if distributor is not None:
            handler.on_new_version(distributor.source_published)

    # -- query plane ------------------------------------------------------------
    query_managers: dict[int, QueryManager] = {}
    onpath_stores: dict[int, CacheStore] = {}
    if with_queries:
        for nid, node in nodes.items():
            response_agent = EpidemicRouting(
                stats=stats, kinds=frozenset({"response"})
            )
            node.add_handler(response_agent)
            store = stores.get(nid)
            if onpath is not None and store is None and nid not in source_handlers:
                # Ordinary node: give it a bounded on-path store that
                # doubles as its query manager's local cache.
                store = onpath.make_store()
                onpath_stores[nid] = store
            if onpath is not None and store is not None:
                attach_onpath(response_agent, store, onpath)
            manager = QueryManager(
                catalog=catalog,
                store=store,
                hop_limit=query_hop_limit,
                query_ttl=query_ttl,
                stats=stats,
            )
            manager.trace = bus
            node.add_handler(manager)
            query_managers[nid] = manager
            source_handler = source_handlers.get(nid)
            if source_handler is not None:
                manager.add_provider(source_handler.answer_provider)

    # -- warm start: version 1 everywhere at t=0 ---------------------------------
    # (under a placement assignment, only the assigned replicas)
    for item in catalog:
        members = (
            assignment[item.item_id]
            if assignment is not None and item.item_id in assignment
            else caching_nodes
        )
        for nid in members:
            handler = refresh_handlers.get(nid)
            if handler is not None:
                handler.seed_entry(item, version=1, version_time=0.0)
            else:  # "none" scheme: seed the bare store
                stores[nid].put(
                    CacheEntry(
                        item_id=item.item_id,
                        version=1,
                        version_time=0.0,
                        cached_at=0.0,
                    ),
                    0.0,
                )

    return SchemeRuntime(
        config=config,
        sim=sim,
        network=network,
        nodes=nodes,
        catalog=catalog,
        history=history,
        rates=rates,
        caching_nodes=caching_nodes,
        sources=sources,
        stores=stores,
        trees=trees,
        plans=plans,
        update_log=update_log,
        stats=stats,
        query_managers=query_managers,
        onpath_stores=onpath_stores,
        assignment=assignment,
        accountant=accountant,
        trace=bus,
    )


def _build_structure(
    config: SchemeConfig,
    source: int,
    caching_nodes: list[int],
    rates: RateTable,
    rng: np.random.Generator,
) -> RefreshTree:
    if config.structure == "star":
        return star_tree(source, caching_nodes)
    if config.assignment == "random":
        return random_tree(
            source,
            caching_nodes,
            rng,
            fanout=config.fanout,
            max_depth=config.max_depth,
            root_fanout=config.fanout,
        )
    return build_tree(
        source,
        caching_nodes,
        rates,
        fanout=config.fanout,
        max_depth=config.max_depth,
        root_fanout=config.fanout,
    )


def _plan_tree(
    item_id: int,
    tree: RefreshTree,
    rates: RateTable,
    window: float,
    p_req: float,
    max_relays: int,
    all_nodes: tuple[int, ...],
    plans: dict[tuple[int, int, int], RelayPlan],
) -> None:
    """Provision every edge of ``tree`` with relays.

    The end-to-end freshness window (one refresh interval) and the
    freshness requirement are split evenly across the tree's depth.
    """
    depth = max(1, tree.max_depth)
    hop_window = window / depth
    hop_target = decompose_requirement(p_req, depth)
    vectorised = rates_module.VECTORISED_RATES
    if vectorised:
        all_nodes_arr = np.asarray(all_nodes, dtype=np.int64)
    for parent, child in tree.edges():
        if vectorised:
            candidates = _relay_candidates(rates, parent, child, all_nodes_arr)
        else:
            candidates = [
                (relay, rates.rate(parent, relay), rates.rate(relay, child))
                for relay in all_nodes
                if relay not in (parent, child)
            ]
        plans[(item_id, parent, child)] = plan_edge(
            parent,
            child,
            direct_rate=rates.rate(parent, child),
            relay_candidates=candidates,
            window=hop_window,
            target=hop_target,
            max_relays=max_relays,
        )


def _relay_candidates(
    rates: RateTable,
    parent: int,
    child: int,
    all_nodes_arr: np.ndarray,
) -> list[tuple[int, float, float]]:
    """Relay triples for one edge via neighbor-set intersection.

    :func:`plan_edge` keeps only relays whose two-hop probability is
    positive, which requires a positive rate on *both* legs -- so
    intersecting the two endpoints' positive-rate neighbor lists (and
    restricting to ``all_nodes``) yields the identical plan as
    enumerating every node, in O(deg) instead of O(N) per edge.
    """
    if not len(all_nodes_arr):
        return []
    up_ids, up_rates = rates.neighbor_view(parent)
    down_ids, down_rates = rates.neighbor_view(child)
    common, iu, idn = np.intersect1d(
        up_ids, down_ids, assume_unique=True, return_indices=True
    )
    keep = (common != parent) & (common != child)
    # Restrict to the node population the scalar enumeration walks (a
    # rate table may cover nodes outside the trace).
    pos = np.searchsorted(all_nodes_arr, common).clip(0, len(all_nodes_arr) - 1)
    keep &= all_nodes_arr[pos] == common
    return list(
        zip(
            common[keep].tolist(),
            up_rates[iu[keep]].tolist(),
            down_rates[idn[keep]].tolist(),
        )
    )


def scheme_variant(base: str, **overrides) -> SchemeConfig:
    """A copy of a named scheme with some fields overridden.

    Convenience for ablations, e.g.
    ``scheme_variant("hdr", max_relays=0)`` or
    ``scheme_variant("hdr", max_depth=2, name="hdr-d2")``.
    """
    config = SCHEMES[base]
    if "name" not in overrides:
        suffix = ",".join(f"{k}={v}" for k, v in sorted(overrides.items()))
        overrides["name"] = f"{base}[{suffix}]"
    return replace(config, **overrides)
