"""Incremental freshness/validity accounting.

The freshness probe used to recompute an O(caching_nodes x catalog)
snapshot at every probe interval.  :class:`FreshnessAccountant` keeps
the same three numbers -- fresh slots, valid slots, total online slots
-- as running counters updated from three event streams:

* **store changes** (insert/upgrade/evict/remove) via
  :attr:`repro.caching.store.CacheStore.change_listener`;
* **version publishes** via a :meth:`SourceHandler.on_new_version
  <repro.core.refresh.SourceHandler.on_new_version>` listener;
* **churn** via :meth:`ContactNetwork.add_online_listener
  <repro.sim.network.ContactNetwork.add_online_listener>`.

Expiry is time-driven rather than event-driven, so validity is handled
lazily: every cached version pushes its expiry time onto a min-heap and
:meth:`FreshnessAccountant.snapshot` drains the entries that are due
before reading the counters.  A drained entry whose slot has since been
replaced by a newer version is ignored (the version stamp on the heap
entry acts as a tombstone check).

The brute-force recompute in
:meth:`SchemeRuntime.freshness_snapshot
<repro.core.scheme.SchemeRuntime.freshness_snapshot>` is kept behind a
debug flag for equivalence testing; the module-level
:data:`INCREMENTAL_BOOKKEEPING` switch restores the pre-optimisation
behaviour globally (the benchmark harness flips it to measure the win).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, Optional

from repro.caching.items import CacheEntry, DataCatalog

#: Master switch for the incremental bookkeeping introduced in this
#: layer: the O(1) freshness probe, the per-contact task index and the
#: gossip watermarks (see :mod:`repro.core.refresh`).  ``False`` restores
#: the recompute-everything code paths -- kept for equivalence tests and
#: the ``repro bench`` before/after comparison.
INCREMENTAL_BOOKKEEPING = True


class _Slot:
    """Mirror of one (caching node, item) cache slot."""

    __slots__ = ("version", "expiry", "valid")

    def __init__(self, version: int, expiry: float, valid: bool) -> None:
        self.version = version
        self.expiry = expiry
        self.valid = valid


class FreshnessAccountant:
    """Running fresh/valid/total counters over all caching slots.

    Counter semantics match the brute-force snapshot exactly:

    * ``total`` counts every (online caching node, item) pair; offline
      nodes contribute nothing.
    * ``valid`` counts online slots holding an unexpired entry
      (``now < version_time + lifetime``).
    * ``fresh`` counts online slots holding the source's current version.

    Freshness membership is tracked independently of online state (an
    offline node keeps its store), so churn only shifts the node's
    contribution in and out of the online counters.
    """

    def __init__(self, catalog: DataCatalog, caching_nodes: Iterable[int]) -> None:
        self._lifetimes = {item.item_id: item.lifetime for item in catalog}
        self._num_items = len(self._lifetimes)
        self._nodes = sorted(int(n) for n in caching_nodes)
        self._online = {n: True for n in self._nodes}
        self._online_count = len(self._nodes)
        #: source's current version per item (0 = nothing published yet)
        self._current = {item_id: 0 for item_id in self._lifetimes}
        self._slots: dict[tuple[int, int], _Slot] = {}
        #: per item, the caching nodes holding the current version
        self._fresh: dict[int, set[int]] = {i: set() for i in self._lifetimes}
        self._fresh_online = 0
        self._valid_online = 0
        #: lazy expiry queue of (expiry, node, item, version)
        self._expiries: list[tuple[float, int, int, int]] = []

    # -- event streams -----------------------------------------------------

    def store_listener(self, node_id: int):
        """A :data:`~repro.caching.store.ChangeListener` bound to one node."""

        def on_change(
            item_id: int,
            old: Optional[CacheEntry],
            new: Optional[CacheEntry],
            now: float,
        ) -> None:
            self.entry_changed(node_id, item_id, new, now)

        return on_change

    def entry_changed(
        self,
        node_id: int,
        item_id: int,
        new: Optional[CacheEntry],
        now: float,
    ) -> None:
        """The slot ``(node_id, item_id)`` now holds ``new`` (or nothing)."""
        online = self._online[node_id]
        key = (node_id, item_id)
        slot = self._slots.get(key)
        if slot is not None:
            fresh_set = self._fresh[item_id]
            if node_id in fresh_set:
                fresh_set.discard(node_id)
                if online:
                    self._fresh_online -= 1
            if slot.valid and online:
                self._valid_online -= 1
        if new is None:
            if slot is not None:
                del self._slots[key]
            return
        expiry = new.version_time + self._lifetimes[item_id]
        valid = now < expiry
        self._slots[key] = _Slot(new.version, expiry, valid)
        if valid:
            # A superseded heap entry for the old version is left behind;
            # the version stamp makes the drain skip it.
            heappush(self._expiries, (expiry, node_id, item_id, new.version))
            if online:
                self._valid_online += 1
        if new.version == self._current[item_id]:
            self._fresh[item_id].add(node_id)
            if online:
                self._fresh_online += 1

    def version_published(self, item, version: int, time: float) -> None:
        """`SourceHandler.on_new_version` listener: a new version exists.

        Warm starts seed version 1 into stores *before* the source
        publishes it at t=0, so holders of the just-published version can
        already exist -- the fresh set is rebuilt by scanning the item's
        slots (O(caching_nodes), and publishes are rare next to probes).
        """
        item_id = item.item_id
        self._current[item_id] = version
        old_set = self._fresh[item_id]
        if old_set:
            online = self._online
            self._fresh_online -= sum(1 for n in old_set if online[n])
        new_set = set()
        for node_id in self._nodes:
            slot = self._slots.get((node_id, item_id))
            if slot is not None and slot.version == version:
                new_set.add(node_id)
                if self._online[node_id]:
                    self._fresh_online += 1
        self._fresh[item_id] = new_set

    def online_changed(self, node_id: int, online: bool, now: float) -> None:
        """`ContactNetwork` online listener: churn moved a node."""
        state = self._online.get(node_id)
        if state is None or state == online:
            return  # not a caching node, or no transition
        # Drain first so the valid flags reflect `now` before they are
        # added to / removed from the online totals.
        self._drain(now)
        self._online[node_id] = online
        sign = 1 if online else -1
        self._online_count += sign
        for item_id in self._lifetimes:
            slot = self._slots.get((node_id, item_id))
            if slot is None:
                continue
            if node_id in self._fresh[item_id]:
                self._fresh_online += sign
            if slot.valid:
                self._valid_online += sign

    # -- reads -------------------------------------------------------------

    def _drain(self, now: float) -> None:
        heap = self._expiries
        while heap and heap[0][0] <= now:
            _, node_id, item_id, version = heappop(heap)
            slot = self._slots.get((node_id, item_id))
            if slot is not None and slot.valid and slot.version == version:
                slot.valid = False
                if self._online[node_id]:
                    self._valid_online -= 1

    def snapshot(self, now: float) -> tuple[int, int, int]:
        """``(fresh, valid, total)`` -- O(expired entries since last read)."""
        self._drain(now)
        return (
            self._fresh_online,
            self._valid_online,
            self._online_count * self._num_items,
        )
