"""Probabilistic replication analysis (closed forms).

Under the pairwise-Poisson contact model, the time until nodes *i* and
*j* next meet is Exp(lambda_ij).  The scheme uses three consequences:

- **direct delivery**: P(i hands a message to j within T) is
  ``1 - exp(-lambda_ij T)``;
- **two-hop relay**: if i hands a copy to relay r which then carries it
  to j, the delivery time is the sum of two independent exponentials --
  a hypoexponential with closed-form CDF;
- **independent replication**: copies travelling disjoint relay paths
  fail independently, so the miss probability of a set of paths is the
  product of the per-path miss probabilities.

:func:`plan_edge` turns these into the scheme's provisioning rule: given
a tree edge (parent, child), the per-hop window and the per-hop success
target, greedily add the best relays until the target is met.
:func:`decompose_requirement` splits an end-to-end freshness requirement
across the levels of a depth-``d`` tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


def contact_probability(rate: float, window: float) -> float:
    """P(next contact within ``window``) for exponential inter-contacts.

    >>> round(contact_probability(0.5, 2.0), 6)   # 1 - e^{-1}
    0.632121
    >>> contact_probability(0.0, 10.0)
    0.0
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if window < 0:
        raise ValueError("window must be non-negative")
    return 1.0 - math.exp(-rate * window)


def two_hop_probability(rate1: float, rate2: float, window: float) -> float:
    """P(Exp(rate1) + Exp(rate2) <= window): relay handoff then delivery.

    Closed form of the hypoexponential CDF::

        1 - (l2 e^{-l1 T} - l1 e^{-l2 T}) / (l2 - l1)     (l1 != l2)
        1 - e^{-l T} (1 + l T)                            (l1 == l2)

    Zero if either leg has rate 0 (that leg never completes).

    >>> round(two_hop_probability(1.0, 2.0, 1.0), 6)
    0.399576
    >>> two_hop_probability(1.0, 0.0, 1.0)
    0.0

    A relay path is always slower than its slowest leg alone:

    >>> two_hop_probability(1.0, 2.0, 1.0) < contact_probability(1.0, 1.0)
    True
    """
    if rate1 < 0 or rate2 < 0:
        raise ValueError("rates must be non-negative")
    if window < 0:
        raise ValueError("window must be non-negative")
    if rate1 == 0.0 or rate2 == 0.0 or window == 0.0:
        return 0.0
    if math.isclose(rate1, rate2, rel_tol=1e-9):
        lam = 0.5 * (rate1 + rate2)
        return 1.0 - math.exp(-lam * window) * (1.0 + lam * window)
    p = 1.0 - (
        rate2 * math.exp(-rate1 * window) - rate1 * math.exp(-rate2 * window)
    ) / (rate2 - rate1)
    # The subtraction cancels catastrophically for tiny rate*window
    # products and can land a hair outside [0, 1]; clamp it back.
    return min(1.0, max(0.0, p))


def decompose_requirement(p_req: float, depth: int) -> float:
    """Per-hop success target so a depth-``depth`` path meets ``p_req``.

    Hops succeed independently, so requiring ``p_req ** (1/depth)`` per
    hop gives ``p_req`` end to end (each hop also gets an equal share of
    the freshness window; see :class:`~repro.core.hierarchy.RefreshTree`).

    >>> p_hop = decompose_requirement(0.9, 3)
    >>> round(p_hop ** 3, 10)
    0.9
    >>> decompose_requirement(0.9, 1)
    0.9
    """
    if not 0 < p_req < 1:
        raise ValueError("p_req must be in (0, 1)")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    return p_req ** (1.0 / depth)


def required_direct_rate(p_req: float, window: float) -> float:
    """Minimum contact rate for direct delivery to meet ``p_req`` in ``window``.

    Inverse of :func:`contact_probability` in the rate argument:

    >>> rate = required_direct_rate(0.95, 3600.0)
    >>> round(contact_probability(rate, 3600.0), 10)
    0.95
    """
    if not 0 < p_req < 1:
        raise ValueError("p_req must be in (0, 1)")
    if window <= 0:
        raise ValueError("window must be positive")
    return -math.log(1.0 - p_req) / window


def expected_fresh_fraction(rate: float, refresh_interval: float) -> float:
    """Long-run fraction of time a copy is fresh under direct refreshing.

    A new version appears every ``refresh_interval`` R; the copy becomes
    fresh again when the holder next meets its refresher, after
    Exp(rate) delay capped at R.  The fresh fraction of each cycle is
    ``(R - min(D, R)) / R`` in expectation::

        1 - (1 - exp(-rate R)) / (rate R)

    Used by the validity analysis and as an oracle in tests.

    >>> round(expected_fresh_fraction(1.0, 2.0), 6)
    0.567668
    >>> expected_fresh_fraction(0.0, 2.0)   # never refreshed
    0.0

    Faster refreshers keep the copy fresh for more of each cycle:

    >>> expected_fresh_fraction(2.0, 2.0) > expected_fresh_fraction(1.0, 2.0)
    True
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if refresh_interval <= 0:
        raise ValueError("refresh_interval must be positive")
    if rate == 0.0:
        return 0.0
    x = rate * refresh_interval
    return 1.0 - (1.0 - math.exp(-x)) / x


@dataclass
class RelayPlan:
    """Provisioning for one tree edge (parent -> child).

    ``relays`` are the node ids the parent hands extra copies to, best
    first.  ``achieved`` is the analytical probability that the child is
    refreshed within the hop window given the direct path plus all
    relays; ``meets_target`` records whether the hop target was
    reachable with the allowed relay budget.
    """

    parent: int
    child: int
    window: float
    target: float
    direct_probability: float
    relays: list[int] = field(default_factory=list)
    relay_probabilities: list[float] = field(default_factory=list)
    achieved: float = 0.0
    meets_target: bool = False

    @property
    def num_relays(self) -> int:
        return len(self.relays)


def plan_edge(
    parent: int,
    child: int,
    direct_rate: float,
    relay_candidates: Sequence[tuple[int, float, float]],
    window: float,
    target: float,
    max_relays: int = 8,
) -> RelayPlan:
    """Provision the (parent -> child) edge to meet ``target`` in ``window``.

    ``relay_candidates`` are ``(relay_id, rate_parent_relay,
    rate_relay_child)`` triples.  Relays are added greedily by two-hop
    delivery probability until the combined success probability reaches
    ``target`` or ``max_relays`` is hit.  With ``max_relays=0`` the plan
    is direct-only (the SourceOnly baseline's provisioning).

    A weak direct edge (rate 0.1/window) provisioned with two strong
    relay candidates:

    >>> plan = plan_edge(0, 9, direct_rate=0.1,
    ...                  relay_candidates=[(1, 2.0, 2.0), (2, 0.5, 0.5)],
    ...                  window=1.0, target=0.9, max_relays=8)
    >>> plan.relays          # best candidate first
    [1, 2]
    >>> plan.meets_target, round(plan.achieved, 3)   # 0.9 is out of reach
    (False, 0.666)
    >>> plan_edge(0, 9, 0.1, [(1, 2.0, 2.0)], 1.0, 0.9, max_relays=0).relays
    []
    """
    if max_relays < 0:
        raise ValueError("max_relays must be >= 0")
    if not 0 < target < 1:
        raise ValueError("target must be in (0, 1)")
    p_direct = contact_probability(direct_rate, window)
    plan = RelayPlan(
        parent=parent,
        child=child,
        window=window,
        target=target,
        direct_probability=p_direct,
    )
    miss = 1.0 - p_direct
    scored: list[tuple[float, int]] = []
    for relay_id, rate_up, rate_down in relay_candidates:
        if relay_id == parent or relay_id == child:
            continue
        p = two_hop_probability(rate_up, rate_down, window)
        if p > 0.0:
            scored.append((p, relay_id))
    scored.sort(key=lambda item: (-item[0], item[1]))
    for p, relay_id in scored:
        if 1.0 - miss >= target or len(plan.relays) >= max_relays:
            break
        plan.relays.append(relay_id)
        plan.relay_probabilities.append(p)
        miss *= 1.0 - p
    plan.achieved = 1.0 - miss
    plan.meets_target = plan.achieved >= target
    return plan
