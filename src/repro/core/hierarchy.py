"""Refresh hierarchy construction.

Each data item's caching nodes are organised into a tree rooted at the
item's source; a node refreshes exactly its children.  The builder is
greedy and rate-aware:

1. the root (source) is placed at depth 0;
2. repeatedly, among all (unplaced caching node, placed node with spare
   fanout below the depth budget) pairs, the pair with the highest
   contact rate is linked -- so the strongest opportunistic edges carry
   refresh responsibility;
3. caching nodes with no positive rate to any placed node are attached
   to the shallowest parent with spare fanout (their edges will rely
   entirely on relays).

The alternative builders implement baselines: :func:`star_tree` (depth
1 -- the flat/SourceOnly structures) and :func:`random_tree` (random
parents under the same budgets -- the assignment ablation).

In deployment, the source gathers the pairwise rates among the caching
nodes when the caching set is established (the same exchange that NCL
selection performs) and disseminates the computed assignment; this
module is that computation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.contacts import rates as rates_module
from repro.contacts.rates import RateTable


@dataclass
class RefreshTree:
    """Responsibility tree for one item: who refreshes whom."""

    root: int
    parent: dict[int, int] = field(default_factory=dict)
    children: dict[int, list[int]] = field(default_factory=dict)
    depth: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.depth.setdefault(self.root, 0)
        self.children.setdefault(self.root, [])

    @property
    def nodes(self) -> set[int]:
        """All nodes in the tree, including the root."""
        return set(self.depth)

    @property
    def members(self) -> set[int]:
        """The caching nodes (everything but the root)."""
        return set(self.depth) - {self.root}

    @property
    def max_depth(self) -> int:
        return max(self.depth.values(), default=0)

    def children_of(self, node: int) -> list[int]:
        return self.children.get(node, [])

    def parent_of(self, node: int) -> Optional[int]:
        return self.parent.get(node)

    def depth_of(self, node: int) -> int:
        return self.depth[node]

    def path_to_root(self, node: int) -> list[int]:
        """Nodes from ``node`` up to (and including) the root."""
        path = [node]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    def edges(self) -> list[tuple[int, int]]:
        """All (parent, child) pairs, children in assignment order."""
        out = []
        for parent, kids in self.children.items():
            out.extend((parent, child) for child in kids)
        return out

    def attach(self, child: int, parent: int) -> None:
        """Attach ``child`` under ``parent`` (parent must be placed)."""
        if parent not in self.depth:
            raise ValueError(f"parent {parent} is not in the tree")
        if child in self.depth:
            raise ValueError(f"node {child} is already in the tree")
        self.parent[child] = parent
        self.children.setdefault(parent, []).append(child)
        self.children.setdefault(child, [])
        self.depth[child] = self.depth[parent] + 1

    def detach(self, node: int) -> list[int]:
        """Remove ``node`` and its whole subtree.

        Returns every detached descendant (the nodes the caller must
        re-attach when maintaining the hierarchy incrementally).
        """
        if node == self.root:
            raise ValueError("cannot detach the root")
        if node not in self.depth:
            raise ValueError(f"node {node} is not in the tree")
        orphans = list(self.children.get(node, []))
        for orphan in orphans:
            del self.parent[orphan]
        parent = self.parent.pop(node)
        self.children[parent].remove(node)
        self.children.pop(node, None)
        del self.depth[node]
        # Orphans (and their subtrees) leave the tree entirely.
        detached = []
        stack = list(orphans)
        while stack:
            current = stack.pop()
            detached.append(current)
            stack.extend(self.children.get(current, []))
            self.children.pop(current, None)
            self.parent.pop(current, None)
            self.depth.pop(current, None)
        return detached

    def render(self, label: Optional[dict[int, str]] = None) -> str:
        """ASCII rendering of the tree (root first, children indented).

        ``label`` optionally maps node ids to display strings.
        """
        names = label or {}

        def line(node: int, prefix: str, is_last: bool) -> list[str]:
            text = names.get(node, str(node))
            connector = "`- " if is_last else "|- "
            out = [f"{prefix}{connector}{text}" if prefix or connector else text]
            kids = self.children_of(node)
            child_prefix = prefix + ("   " if is_last else "|  ")
            for k, child in enumerate(kids):
                out.extend(line(child, child_prefix, k == len(kids) - 1))
            return out

        lines = [names.get(self.root, str(self.root))]
        kids = self.children_of(self.root)
        for k, child in enumerate(kids):
            lines.extend(line(child, "", k == len(kids) - 1))
        return "\n".join(lines)

    def validate(self, fanout: Optional[int] = None, max_depth: Optional[int] = None) -> None:
        """Raise ``ValueError`` on any violated tree invariant."""
        for node, parent in self.parent.items():
            if parent not in self.depth:
                raise ValueError(f"parent {parent} of {node} is not placed")
            if self.depth[node] != self.depth[parent] + 1:
                raise ValueError(f"depth of {node} inconsistent with parent {parent}")
            if node not in self.children.get(parent, []):
                raise ValueError(f"{node} missing from children of {parent}")
        for parent, kids in self.children.items():
            for child in kids:
                if self.parent.get(child) != parent:
                    raise ValueError(f"child {child} does not point back to {parent}")
            if fanout is not None and parent != self.root and len(kids) > fanout:
                raise ValueError(f"node {parent} exceeds fanout {fanout}")
        if max_depth is not None and self.max_depth > max_depth:
            raise ValueError(f"tree depth {self.max_depth} exceeds budget {max_depth}")
        # Reachability: every placed node must reach the root.
        for node in self.depth:
            seen = set()
            current = node
            while current != self.root:
                if current in seen:
                    raise ValueError(f"cycle through {current}")
                seen.add(current)
                current = self.parent.get(current)
                if current is None:
                    raise ValueError(f"node {node} is disconnected from the root")


def build_tree(
    root: int,
    caching_nodes: Iterable[int],
    rates: RateTable,
    fanout: int = 3,
    max_depth: int = 3,
    root_fanout: Optional[int] = None,
) -> RefreshTree:
    """Rate-aware greedy tree over ``caching_nodes`` rooted at ``root``.

    ``fanout`` bounds every caching node's children; ``root_fanout``
    (default: same as ``fanout``) bounds the source separately.  Every
    caching node is placed exactly once; an over-constrained budget
    (fanout too small to hold everyone within ``max_depth``) raises.
    """
    members = _clean_members(root, caching_nodes)
    _check_capacity(len(members), fanout, max_depth, root_fanout or fanout)
    tree = RefreshTree(root=root)
    unplaced = set(members)
    root_cap = root_fanout or fanout

    def capacity_of(node: int) -> int:
        cap = root_cap if node == root else fanout
        return cap - len(tree.children_of(node))

    # Priority queue of candidate links (-rate, parent_depth, parent, child):
    # strongest edges claim responsibility first.
    heap: list[tuple[float, int, int, int]] = []

    if rates_module.VECTORISED_RATES:
        # Bulk candidate construction: one vectorised submatrix lookup up
        # front, then each placement pushes its whole positive-rate row
        # against the unplaced mask.  Entry values (and therefore heap pop
        # order, a total order over unique tuples) match the per-child
        # lookup path exactly.
        ids = [root] + members
        idx = {nid: i for i, nid in enumerate(ids)}
        sub = rates.matrix(ids)
        placed = np.zeros(len(ids), dtype=bool)
        placed[0] = True
        ids_arr = np.asarray(ids, dtype=np.int64)

        def push_candidates(parent: int) -> None:
            depth = tree.depth[parent]
            if depth >= max_depth:
                return
            row = sub[idx[parent]]
            cand = ~placed & (row > 0)
            for rate, child in zip(row[cand].tolist(), ids_arr[cand].tolist()):
                heapq.heappush(heap, (-rate, depth, parent, child))

        def mark_placed(child: int) -> None:
            placed[idx[child]] = True

    else:

        def push_candidates(parent: int) -> None:
            if tree.depth[parent] >= max_depth:
                return
            for child in unplaced:
                rate = rates.rate(parent, child)
                if rate > 0:
                    heapq.heappush(heap, (-rate, tree.depth[parent], parent, child))

        def mark_placed(child: int) -> None:
            pass

    push_candidates(root)
    while unplaced and heap:
        neg_rate, parent_depth, parent, child = heapq.heappop(heap)
        if child not in unplaced:
            continue
        if tree.depth.get(parent) != parent_depth or capacity_of(parent) <= 0:
            continue
        tree.attach(child, parent)
        unplaced.discard(child)
        mark_placed(child)
        push_candidates(child)
    # Fallback for nodes with no positive rate to anyone placed: attach
    # to the shallowest parent with capacity.
    for child in sorted(unplaced):
        parent = _shallowest_open(tree, capacity_of, max_depth)
        tree.attach(child, parent)
    return tree


def star_tree(root: int, caching_nodes: Iterable[int]) -> RefreshTree:
    """Depth-1 tree: the source is directly responsible for everyone.

    The structure used by the flat-replication and SourceOnly baselines.
    """
    members = _clean_members(root, caching_nodes)
    tree = RefreshTree(root=root)
    for child in members:
        tree.attach(child, root)
    return tree


def random_tree(
    root: int,
    caching_nodes: Iterable[int],
    rng: np.random.Generator,
    fanout: int = 3,
    max_depth: int = 3,
    root_fanout: Optional[int] = None,
) -> RefreshTree:
    """Random-parent tree under the same budgets (assignment ablation)."""
    members = _clean_members(root, caching_nodes)
    root_cap = root_fanout or fanout
    _check_capacity(len(members), fanout, max_depth, root_cap)
    tree = RefreshTree(root=root)
    order = list(members)
    rng.shuffle(order)
    for child in order:
        candidates = [
            node
            for node in sorted(tree.depth)
            if tree.depth[node] < max_depth
            and len(tree.children_of(node)) < (root_cap if node == root else fanout)
        ]
        parent = candidates[int(rng.integers(0, len(candidates)))]
        tree.attach(child, parent)
    return tree


def _clean_members(root: int, caching_nodes: Iterable[int]) -> list[int]:
    members = sorted({int(n) for n in caching_nodes} - {root})
    return members


def _check_capacity(n: int, fanout: int, max_depth: int, root_fanout: int) -> None:
    if fanout < 1 or root_fanout < 1:
        raise ValueError("fanout must be >= 1")
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    # Capacity of a root_fanout-ary level over fanout-ary subtrees.
    capacity = root_fanout
    level = root_fanout
    for _ in range(max_depth - 1):
        level *= fanout
        capacity += level
    if n > capacity:
        raise ValueError(
            f"{n} caching nodes exceed tree capacity {capacity} "
            f"(fanout={fanout}, max_depth={max_depth})"
        )


def _shallowest_open(tree: RefreshTree, capacity_of, max_depth: int) -> int:
    candidates = [
        node
        for node in tree.depth
        if tree.depth[node] < max_depth and capacity_of(node) > 0
    ]
    if not candidates:
        raise ValueError("no parent with spare capacity (budget exhausted)")
    return min(candidates, key=lambda n: (tree.depth[n], n))
