"""Runtime refresh protocol handlers.

Three handlers implement the data plane of cache refreshment:

- :class:`SourceHandler` -- runs on each source node: generates new
  versions of its items on a periodic (optionally jittered or Poisson)
  schedule, records ground truth into the shared
  :class:`~repro.caching.items.VersionHistory`, and kicks the
  distribution handler on the same node.
- :class:`HdrRefreshHandler` -- the scheme (and the tree-structured
  baselines): each node tracks *pending refresh tasks* -- (item, target)
  pairs it is responsible for delivering a version to, either as the
  target's tree parent or as a recruited relay.  On every contact it
  (a) delivers tasks whose target is the peer, (b) hands copies to the
  peer when the peer is a planned relay for one of its tasks, and
  (c) suppresses tasks the peer has already satisfied (the version
  handshake, modelled by peeking at the peer handler).  A caching node
  that learns a new version immediately becomes responsible for its own
  children -- this cascade is the "distributed and hierarchical"
  maintenance of the paper.
- :class:`FloodingRefreshHandler` -- the epidemic upper bound: every
  node gossips the newest version it carries to every peer.

Delivered updates are appended to a shared update log
(:class:`RefreshUpdate` records) from which the metrics layer computes
refresh delays and on-time ratios.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.caching.items import CacheEntry, DataCatalog, DataItem, VersionHistory
from repro.caching.store import CacheStore
from repro.core import accounting
from repro.obs.records import TaskCreate, TaskDrop

from repro.sim.messages import Message
from repro.sim.node import Node, ProtocolHandler
from repro.sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.contacts.rates import RateTable
    from repro.core.hierarchy import RefreshTree
    from repro.core.replication import RelayPlan

REFRESH_OVERHEAD = 64


@dataclass
class RefreshUpdate:
    """One successful version update at one caching node."""

    item_id: int
    node: int
    version: int
    version_time: float
    updated_at: float
    via: str  # "seed", "direct", "relay", "flood"

    @property
    def delay(self) -> float:
        return self.updated_at - self.version_time


@dataclass
class _PendingRefresh:
    """A version this node must still deliver to one target.

    ``seq`` replicates dict insertion order so the indexed contact path
    can process tasks in exactly the order the full-scan path would
    (replacing a live task keeps its position, like a dict value
    assignment; re-creating a dropped key moves it to the end).
    """

    version: int
    version_time: float
    may_recruit: bool
    seq: int = 0
    handed_to: set[int] = field(default_factory=set)


class SourceHandler(ProtocolHandler):
    """Version generation at a source node."""

    handled_kinds = frozenset()

    def __init__(
        self,
        items: list[DataItem],
        history: VersionHistory,
        stats: Optional[StatsRegistry] = None,
        mode: str = "periodic",
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if mode not in ("periodic", "poisson"):
            raise ValueError(f"unknown refresh mode {mode!r}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if (mode == "poisson" or jitter > 0) and rng is None:
            raise ValueError("stochastic refresh schedules need an rng")
        self.items = list(items)
        self.history = history
        self.stats = stats or StatsRegistry()
        self.mode = mode
        self.jitter = jitter
        self.rng = rng
        self.current: dict[int, tuple[int, float]] = {}
        self._listeners: list[Callable[[DataItem, int, float], None]] = []
        #: while True, scheduled bumps keep firing but publish nothing --
        #: a data-source outage window (see repro.faults); the schedule
        #: itself stays alive so resuming needs no re-wiring
        self.suspended = False

    def on_new_version(self, listener: Callable[[DataItem, int, float], None]) -> None:
        """Register a distribution handler to kick after each bump."""
        self._listeners.append(listener)

    def current_version(self, item_id: int) -> tuple[int, float]:
        """Authoritative ``(version, version_time)``; (0, 0.0) before v1."""
        return self.current.get(item_id, (0, 0.0))

    def answer_provider(self, item_id: int) -> Optional[tuple[int, float]]:
        """Query-answer provider exposing the authoritative version."""
        version, vtime = self.current_version(item_id)
        return (version, vtime) if version > 0 else None

    def on_start(self) -> None:
        now = self.node.sim.now
        for item in self.items:
            self._publish(item)
            self.node.sim.schedule_at(now + self._gap(item), self._bump, item)

    def _gap(self, item: DataItem) -> float:
        if self.mode == "poisson":
            return float(self.rng.exponential(item.refresh_interval))
        if self.jitter > 0:
            span = self.jitter * item.refresh_interval
            return item.refresh_interval + float(self.rng.uniform(-span, span))
        return item.refresh_interval

    def suspend(self) -> None:
        """Stall version generation (data-source outage)."""
        self.suspended = True

    def resume(self) -> None:
        """End an outage; the next scheduled bump publishes again."""
        self.suspended = False

    def _bump(self, item: DataItem) -> None:
        if self.suspended:
            self.stats.counter("refresh.publishes_stalled").add(1)
        else:
            self._publish(item)
        self.node.sim.schedule_after(self._gap(item), self._bump, item)

    def _publish(self, item: DataItem) -> None:
        now = self.node.sim.now
        version = self.current.get(item.item_id, (0, 0.0))[0] + 1
        self.current[item.item_id] = (version, now)
        self.history.record(item.item_id, version, now)
        self.stats.counter("refresh.versions_published").add(1)
        for listener in self._listeners:
            listener(item, version, now)


class HdrRefreshHandler(ProtocolHandler):
    """Hierarchical distributed refreshment (and its tree baselines).

    One instance runs on every node.  Caching nodes own a
    :class:`CacheStore`; pure relays only carry pending tasks.  The
    handler needs the item trees and per-edge relay plans, which the
    scheme builder computes (see :mod:`repro.core.scheme`).
    """

    handled_kinds = frozenset({"refresh", "refresh_relay"})

    def __init__(
        self,
        catalog: DataCatalog,
        trees: dict[int, "RefreshTree"],
        plans: dict[tuple[int, int, int], "RelayPlan"],
        update_log: list[RefreshUpdate],
        stats: StatsRegistry,
        store: Optional[CacheStore] = None,
        rates: Optional["RateTable"] = None,
        relay_budget: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.catalog = catalog
        self.trees = trees
        self.plans = plans
        self.update_log = update_log
        self.stats = stats
        self.store = store
        self.rates = rates
        #: per-version cap on relay handoffs (None = unbounded); models
        #: the bounded energy a device spends on one refresh round
        self.relay_budget = relay_budget
        self.tasks: dict[tuple[int, int], _PendingRefresh] = {}
        self._recruits_used: dict[tuple[int, int], int] = {}
        # Per-contact index over `tasks`: keys grouped by delivery target,
        # plus the recruit-capable subset.  A contact with peer P only
        # touches tasks targeting P and tasks P could relay, instead of
        # scanning everything this node carries.
        self._by_target: dict[int, set[tuple[int, int]]] = {}
        self._recruitable: set[tuple[int, int]] = set()
        self._task_seq = 0
        #: min-heap of (expiry, key, version) -- lets the indexed path
        #: garbage-collect expired tasks at exactly the contacts the
        #: full scan would, which matters because a drop frees the
        #: task's dict slot (a later re-add appends instead of
        #: replacing in place, changing processing order).  Entries go
        #: stale when a task is dropped or replaced; the version check
        #: at drain time skips them (a version uniquely determines its
        #: version_time, hence its expiry).
        self._task_expiry: list[tuple[float, tuple[int, int], int]] = []
        #: optional :class:`repro.obs.bus.EventBus` for task records
        self.trace = None

    # -- versions this node knows ------------------------------------------

    def known_version(self, item_id: int) -> int:
        """Newest version of ``item_id`` this node holds (0 = none).

        For the item's source this is the authoritative version.
        """
        source_handler = self.node.find_handler(SourceHandler)
        if isinstance(source_handler, SourceHandler):
            version, _ = source_handler.current_version(item_id)
            if version > 0:
                return version
        if self.store is not None:
            entry = self.store.peek(item_id)
            if entry is not None:
                return entry.version
        return 0

    def pending_version_for(self, item_id: int, target: int) -> int:
        """Version of the pending task for (item, target), 0 if none."""
        task = self.tasks.get((item_id, target))
        return task.version if task else 0

    # -- seeding and source kick ---------------------------------------------

    def seed_entry(self, item: DataItem, version: int, version_time: float) -> None:
        """Pre-place a version in this caching node's store (warm start)."""
        if self.store is None:
            raise RuntimeError(f"node {self.node.node_id} has no cache store")
        now = self.node.sim.now if self.node.network else version_time
        self.store.put(
            CacheEntry(
                item_id=item.item_id,
                version=version,
                version_time=version_time,
                cached_at=now,
            ),
            now,
        )
        self.update_log.append(
            RefreshUpdate(
                item_id=item.item_id,
                node=self.node.node_id,
                version=version,
                version_time=version_time,
                updated_at=now,
                via="seed",
            )
        )

    def source_published(self, item: DataItem, version: int, version_time: float) -> None:
        """SourceHandler listener: become responsible for the root's children."""
        self._assume_responsibility(item, version, version_time)

    def _assume_responsibility(self, item: DataItem, version: int, version_time: float) -> None:
        tree = self.trees.get(item.item_id)
        if tree is None:
            return
        me = self.node.node_id
        for child in tree.children_of(me):
            self._set_task(item.item_id, child, version, version_time, may_recruit=True)
        # Children may be reachable right now.
        self._work_open_contacts()

    def _set_task(
        self, item_id: int, target: int, version: int, version_time: float, may_recruit: bool
    ) -> None:
        key = (item_id, target)
        existing = self.tasks.get(key)
        if existing is not None and existing.version >= version:
            return
        if existing is not None:
            seq = existing.seq  # value replacement keeps the dict position
        else:
            self._task_seq += 1
            seq = self._task_seq
            self._by_target.setdefault(target, set()).add(key)
        self.tasks[key] = _PendingRefresh(
            version=version, version_time=version_time,
            may_recruit=may_recruit, seq=seq,
        )
        heapq.heappush(
            self._task_expiry,
            (version_time + self.catalog.get(item_id).lifetime, key, version),
        )
        if may_recruit:
            self._recruitable.add(key)
        else:
            self._recruitable.discard(key)
        if self.trace is not None:
            self.trace.emit(
                TaskCreate(self.node.sim.now, self.node.node_id, item_id,
                           target, version, may_recruit)
            )

    def _drop_task(self, key: tuple[int, int], reason: str = "delivered") -> None:
        task = self.tasks[key]
        del self.tasks[key]
        bucket = self._by_target.get(key[1])
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._by_target[key[1]]
        self._recruitable.discard(key)
        if self.trace is not None:
            self.trace.emit(
                TaskDrop(self.node.sim.now, self.node.node_id, key[0],
                         key[1], task.version, reason)
            )

    # -- contact machinery ----------------------------------------------------

    def on_contact_start(self, peer: Node) -> None:
        self._process_tasks(peer)

    def _work_open_contacts(self) -> None:
        if self.node.network is None:
            return
        for peer_id in self.node.neighbors:
            self._process_tasks(self.node.network.nodes[peer_id])

    def _process_tasks(self, peer: Node) -> None:
        """Work the tasks this contact can advance.

        The indexed path visits only tasks targeting ``peer`` plus the
        recruit-capable ones, in task-creation (``seq``) order -- exactly
        the order the full scan would process them, so the message
        sequence is identical.  Expired tasks are garbage-collected from
        the expiry heap first, which reproduces the full scan's drop
        timing exactly (the scan drops *every* expired task on *every*
        contact, and a drop frees the dict slot a later re-add would
        otherwise replace in place).
        """
        if not accounting.INCREMENTAL_BOOKKEEPING:
            self._process_tasks_scan(peer)
            return
        now = self.node.sim.now
        expiry_heap = self._task_expiry
        while expiry_heap and expiry_heap[0][0] <= now:
            _, key, version = heapq.heappop(expiry_heap)
            stale = self.tasks.get(key)
            if stale is not None and stale.version == version:
                self._drop_task(key, reason="expired")
                self.stats.counter("refresh.tasks_expired").add(1)
        if not self.tasks:
            return
        pid = peer.node_id
        targeted = self._by_target.get(pid)
        if targeted:
            keys = self._recruitable | targeted
        elif self._recruitable:
            keys = set(self._recruitable)
        else:
            return
        tasks = self.tasks
        candidates = sorted((tasks[key].seq, key) for key in keys)
        peer_handler = peer.find_handler(HdrRefreshHandler)
        for _, key in candidates:
            task = tasks.get(key)
            if task is None:
                continue
            item_id, target = key
            item = self.catalog.get(item_id)
            if now >= task.version_time + item.lifetime:
                # The version expired in transit; delivering it is useless.
                self._drop_task(key, reason="expired")
                self.stats.counter("refresh.tasks_expired").add(1)
                continue
            if pid == target:
                self._deliver_to_target(item, target, task, peer, peer_handler)
            elif task.may_recruit:
                self._maybe_recruit(item, target, task, peer, peer_handler)

    def _process_tasks_scan(self, peer: Node) -> None:
        """Pre-index full scan, kept for equivalence testing/benchmarks."""
        now = self.node.sim.now
        peer_handler = peer.find_handler(HdrRefreshHandler)
        for (item_id, target), task in list(self.tasks.items()):
            item = self.catalog.get(item_id)
            if now >= task.version_time + item.lifetime:
                self._drop_task((item_id, target), reason="expired")
                self.stats.counter("refresh.tasks_expired").add(1)
                continue
            if peer.node_id == target:
                self._deliver_to_target(item, target, task, peer, peer_handler)
            elif task.may_recruit:
                self._maybe_recruit(item, target, task, peer, peer_handler)

    def _deliver_to_target(
        self,
        item: DataItem,
        target: int,
        task: _PendingRefresh,
        peer: Node,
        peer_handler: Optional[ProtocolHandler],
    ) -> None:
        if isinstance(peer_handler, HdrRefreshHandler):
            if peer_handler.known_version(item.item_id) >= task.version:
                # Another copy beat us to it: the handshake suppresses the send.
                self._drop_task((item.item_id, target), reason="suppressed")
                self.stats.counter("refresh.suppressed").add(1)
                return
        message = Message(
            kind="refresh",
            src=self.node.node_id,
            dst=target,
            created_at=self.node.sim.now,
            size=item.size + REFRESH_OVERHEAD,
            payload={
                "item_id": item.item_id,
                "version": task.version,
                "version_time": task.version_time,
            },
        )
        if self.node.send(message, peer):
            self._drop_task((item.item_id, target))

    def _relay_qualifies(self, plan, target: int, peer_id: int) -> bool:
        """Whether an encountered node is worth recruiting as a relay.

        The plan's ``num_relays`` is the *analytically provisioned copy
        count* k for this edge; the runtime recruits the first k
        encountered nodes that qualify.  A node qualifies if the plan
        pre-ranked it among the best relays, or if its estimated contact
        rate to the target beats the parent's own (it is a strictly
        better carrier).  A distributed node cannot wait for specific
        relays it may never meet -- recruitment must work with whoever
        shows up, which is exactly why the provisioning is
        probabilistic.
        """
        if peer_id in plan.relays:
            return True
        if self.rates is None:
            return False
        peer_rate = self.rates.rate(peer_id, target)
        own_rate = self.rates.rate(self.node.node_id, target)
        return peer_rate > own_rate

    def _maybe_recruit(
        self,
        item: DataItem,
        target: int,
        task: _PendingRefresh,
        peer: Node,
        peer_handler: Optional[ProtocolHandler],
    ) -> None:
        plan = self.plans.get((item.item_id, self.node.node_id, target))
        if plan is None or plan.num_relays == 0:
            return
        if peer.node_id in task.handed_to or len(task.handed_to) >= plan.num_relays:
            return
        budget_key = (item.item_id, task.version)
        if (
            self.relay_budget is not None
            and self._recruits_used.get(budget_key, 0) >= self.relay_budget
        ):
            self.stats.counter("refresh.budget_exhausted").add(1)
            return
        if not self._relay_qualifies(plan, target, peer.node_id):
            return
        if isinstance(peer_handler, HdrRefreshHandler):
            if peer_handler.known_version(item.item_id) >= task.version:
                return
            if peer_handler.pending_version_for(item.item_id, target) >= task.version:
                task.handed_to.add(peer.node_id)
                return
        message = Message(
            kind="refresh_relay",
            src=self.node.node_id,
            dst=peer.node_id,
            created_at=self.node.sim.now,
            size=item.size + REFRESH_OVERHEAD,
            payload={
                "item_id": item.item_id,
                "version": task.version,
                "version_time": task.version_time,
                "target": target,
            },
        )
        if self.node.send(message, peer):
            task.handed_to.add(peer.node_id)
            self._recruits_used[budget_key] = self._recruits_used.get(budget_key, 0) + 1
            self.stats.counter("refresh.relays_recruited").add(1)

    # -- receiving ---------------------------------------------------------------

    def on_message(self, message: Message, sender: Node) -> None:
        item_id = message.payload["item_id"]
        version = message.payload["version"]
        version_time = message.payload["version_time"]
        item = self.catalog.get(item_id)
        if message.kind == "refresh_relay":
            target = message.payload["target"]
            self._set_task(item_id, target, version, version_time, may_recruit=False)
            return
        # kind == "refresh": this node is the target.  Record whether the
        # copy came straight from the tree parent or via a recruited relay.
        tree = self.trees.get(item_id)
        parent = tree.parent_of(self.node.node_id) if tree else None
        via = "direct" if parent == sender.node_id else "relay"
        self._apply_update(item, version, version_time, via=via)

    def _apply_update(self, item: DataItem, version: int, version_time: float, via: str) -> None:
        if self.store is None:
            # Not a caching node (can happen after reconfiguration); ignore.
            self.stats.counter("refresh.delivered_to_non_cache").add(1)
            return
        now = self.node.sim.now
        changed = self.store.put(
            CacheEntry(
                item_id=item.item_id,
                version=version,
                version_time=version_time,
                cached_at=now,
            ),
            now,
        )
        if not changed:
            self.stats.counter("refresh.stale_delivery").add(1)
            return
        self.update_log.append(
            RefreshUpdate(
                item_id=item.item_id,
                node=self.node.node_id,
                version=version,
                version_time=version_time,
                updated_at=now,
                via=via,
            )
        )
        self.stats.counter("refresh.updates").add(1)
        self.stats.tally("refresh.delay").observe(now - version_time)
        # Hierarchical cascade: now refresh my own children.
        self._assume_responsibility(item, version, version_time)


class InvalidationRefreshHandler(ProtocolHandler):
    """Invalidation-based consistency: the classic alternative baseline.

    Instead of pushing fresh *data*, the source gossips tiny
    **invalidation notices** ("item i is now at version v") epidemically
    through every node.  A caching node that learns its copy is outdated
    drops it immediately -- so it never serves data staler than the
    notice latency -- and re-acquires the item only on direct contact
    with the source (which pushes the current version, full size).

    The trade-off against refresh schemes: validity of what *is* served
    is excellent and the gossip is cheap in bytes, but availability and
    freshness collapse to source-only levels because invalidation
    removes copies without replacing them.  Classic cache-consistency
    literature; reproduced here as the E13 comparison.
    """

    handled_kinds = frozenset({"invalidate", "refresh"})

    INVALIDATION_SIZE = 64

    def __init__(
        self,
        catalog: DataCatalog,
        caching_nodes: frozenset[int],
        update_log: list[RefreshUpdate],
        stats: StatsRegistry,
        store: Optional[CacheStore] = None,
    ) -> None:
        super().__init__()
        self.catalog = catalog
        self.caching_nodes = caching_nodes
        self.update_log = update_log
        self.stats = stats
        self.store = store
        #: newest version this node has *heard of*, per item
        self.notices: dict[int, tuple[int, float]] = {}
        #: per-peer watermark: the newest notice each peer was *observed*
        #: holding (via handshake peeks and received messages).  Noticed
        #: versions only grow, so a watermark-skip corresponds exactly to
        #: a peek that would have suppressed the send anyway.
        self._peer_seen: dict[int, dict[int, int]] = {}
        #: per-peer count of notices whose watermark already covers our
        #: noticed version -- when it equals ``len(notices)`` the gossip
        #: scan is skipped outright (see FloodingRefreshHandler).
        self._peer_known: dict[int, int] = {}

    def noticed_version(self, item_id: int) -> int:
        return self.notices.get(item_id, (0, 0.0))[0]

    def _observe_peer(self, peer_id: int, item_id: int, version: int) -> None:
        seen = self._peer_seen.get(peer_id)
        if seen is None:
            seen = self._peer_seen[peer_id] = {}
            self._peer_known[peer_id] = 0
        wm = seen.get(item_id, 0)
        if version > wm:
            seen[item_id] = version
            notice = self.notices.get(item_id)
            if notice is not None and wm < notice[0] <= version:
                self._peer_known[peer_id] += 1

    def _set_notice(self, item_id: int, version: int, version_time: float) -> None:
        prev = self.notices.get(item_id)
        self.notices[item_id] = (version, version_time)
        old = prev[0] if prev is not None else None
        if old == version:
            return
        for peer_id, seen in self._peer_seen.items():
            wm = seen.get(item_id, 0)
            if (old is not None and wm >= old) is not (wm >= version):
                self._peer_known[peer_id] += 1 if wm >= version else -1

    def seed_entry(self, item: DataItem, version: int, version_time: float) -> None:
        self._set_notice(item.item_id, version, version_time)
        if self.store is not None:
            now = self.node.sim.now if self.node.network else version_time
            self.store.put(
                CacheEntry(
                    item_id=item.item_id,
                    version=version,
                    version_time=version_time,
                    cached_at=now,
                ),
                now,
            )
            self.update_log.append(
                RefreshUpdate(
                    item_id=item.item_id,
                    node=self.node.node_id,
                    version=version,
                    version_time=version_time,
                    updated_at=now,
                    via="seed",
                )
            )

    def source_published(self, item: DataItem, version: int, version_time: float) -> None:
        self._set_notice(item.item_id, version, version_time)
        self._gossip_open_contacts()

    def _my_source_handler(self) -> Optional[SourceHandler]:
        handler = self.node.find_handler(SourceHandler)
        return handler if isinstance(handler, SourceHandler) else None

    def on_contact_start(self, peer: Node) -> None:
        self._gossip_to(peer)
        self._push_data_if_source(peer)

    def _gossip_open_contacts(self) -> None:
        if self.node.network is None:
            return
        for peer_id in self.node.neighbors:
            self._gossip_to(self.node.network.nodes[peer_id])

    def _gossip_to(self, peer: Node) -> None:
        if not self.notices:
            return
        pid = peer.node_id
        if accounting.INCREMENTAL_BOOKKEEPING:
            if self._peer_known.get(pid) == len(self.notices):
                return
            seen = self._peer_seen.get(pid)
            if seen is None:
                seen = self._peer_seen[pid] = {}
                self._peer_known[pid] = 0
        else:
            seen = None
        peer_handler = peer.find_handler(InvalidationRefreshHandler)
        if not isinstance(peer_handler, InvalidationRefreshHandler):
            return
        now = self.node.sim.now
        for item_id, (version, version_time) in self.notices.items():
            if seen is not None:
                wm = seen.get(item_id, 0)
                if wm >= version:
                    continue
            peer_version = peer_handler.noticed_version(item_id)
            if seen is not None and peer_version > wm:
                seen[item_id] = peer_version
                if peer_version >= version:
                    self._peer_known[pid] += 1
            if peer_version >= version:
                continue
            message = Message(
                kind="invalidate",
                src=self.node.node_id,
                dst=peer.node_id,
                created_at=now,
                size=self.INVALIDATION_SIZE,
                payload={
                    "item_id": item_id,
                    "version": version,
                    "version_time": version_time,
                },
            )
            self.node.send(message, peer)

    def _push_data_if_source(self, peer: Node) -> None:
        source_handler = self._my_source_handler()
        if source_handler is None or peer.node_id not in self.caching_nodes:
            return
        peer_handler = peer.find_handler(InvalidationRefreshHandler)
        if not isinstance(peer_handler, InvalidationRefreshHandler):
            return
        now = self.node.sim.now
        for item in source_handler.items:
            version, version_time = source_handler.current_version(item.item_id)
            if version == 0 or now >= version_time + item.lifetime:
                continue
            entry = peer_handler.store.peek(item.item_id) if peer_handler.store else None
            if entry is not None and entry.version >= version:
                continue
            message = Message(
                kind="refresh",
                src=self.node.node_id,
                dst=peer.node_id,
                created_at=now,
                size=item.size + REFRESH_OVERHEAD,
                payload={
                    "item_id": item.item_id,
                    "version": version,
                    "version_time": version_time,
                },
            )
            self.node.send(message, peer)

    def on_message(self, message: Message, sender: Node) -> None:
        item_id = message.payload["item_id"]
        version = message.payload["version"]
        version_time = message.payload["version_time"]
        # The sender provably holds a notice for at least this version.
        self._observe_peer(sender.node_id, item_id, version)
        if message.kind == "invalidate":
            if self.noticed_version(item_id) >= version:
                return
            self._set_notice(item_id, version, version_time)
            if self.store is not None:
                entry = self.store.peek(item_id)
                if entry is not None and entry.version < version:
                    self.store.remove(item_id)
                    self.stats.counter("refresh.invalidated").add(1)
            self._gossip_open_contacts()
            return
        # kind == "refresh": data pushed by the source.
        if self.store is None:
            return
        now = self.node.sim.now
        if self.store.put(
            CacheEntry(
                item_id=item_id,
                version=version,
                version_time=version_time,
                cached_at=now,
            ),
            now,
        ):
            self._set_notice(
                item_id, max(version, self.noticed_version(item_id)), version_time
            )
            self.update_log.append(
                RefreshUpdate(
                    item_id=item_id,
                    node=self.node.node_id,
                    version=version,
                    version_time=version_time,
                    updated_at=now,
                    via="direct",
                )
            )
            self.stats.counter("refresh.updates").add(1)
            self.stats.tally("refresh.delay").observe(now - version_time)


class FloodingRefreshHandler(ProtocolHandler):
    """Epidemic version gossip: the freshness upper bound."""

    handled_kinds = frozenset({"refresh_flood"})

    def __init__(
        self,
        catalog: DataCatalog,
        update_log: list[RefreshUpdate],
        stats: StatsRegistry,
        store: Optional[CacheStore] = None,
    ) -> None:
        super().__init__()
        self.catalog = catalog
        self.update_log = update_log
        self.stats = stats
        self.store = store
        #: newest version this node carries, per item (caching or not)
        self.carried: dict[int, tuple[int, float]] = {}
        #: per-peer watermark of the newest version each peer was observed
        #: carrying; carried versions only grow, so skipping on the
        #: watermark suppresses exactly the sends the handshake peek
        #: would have filtered.
        self._peer_seen: dict[int, dict[int, int]] = {}
        #: per-peer count of carried items whose watermark already covers
        #: our carried version.  When it equals ``len(carried)`` the scan
        #: in :meth:`_push_to` would skip every item, so the whole
        #: exchange is a single dict lookup.  Maintained by the only two
        #: mutators of ``carried``/``_peer_seen``: :meth:`_carry` and
        #: :meth:`_observe_peer` (plus the inline peek in ``_push_to``).
        self._peer_known: dict[int, int] = {}

    def known_version(self, item_id: int) -> int:
        return self.carried.get(item_id, (0, 0.0))[0]

    def _observe_peer(self, peer_id: int, item_id: int, version: int) -> None:
        seen = self._peer_seen.get(peer_id)
        if seen is None:
            seen = self._peer_seen[peer_id] = {}
            self._peer_known[peer_id] = 0
        wm = seen.get(item_id, 0)
        if version > wm:
            seen[item_id] = version
            entry = self.carried.get(item_id)
            if entry is not None and wm < entry[0] <= version:
                self._peer_known[peer_id] += 1

    def _carry(self, item_id: int, version: int, version_time: float) -> None:
        prev = self.carried.get(item_id)
        self.carried[item_id] = (version, version_time)
        old = prev[0] if prev is not None else None
        if old == version:
            return
        for peer_id, seen in self._peer_seen.items():
            wm = seen.get(item_id, 0)
            if (old is not None and wm >= old) is not (wm >= version):
                self._peer_known[peer_id] += 1 if wm >= version else -1

    def seed_entry(self, item: DataItem, version: int, version_time: float) -> None:
        self._carry(item.item_id, version, version_time)
        if self.store is not None:
            now = self.node.sim.now if self.node.network else version_time
            self.store.put(
                CacheEntry(
                    item_id=item.item_id,
                    version=version,
                    version_time=version_time,
                    cached_at=now,
                ),
                now,
            )
            self.update_log.append(
                RefreshUpdate(
                    item_id=item.item_id,
                    node=self.node.node_id,
                    version=version,
                    version_time=version_time,
                    updated_at=now,
                    via="seed",
                )
            )

    def source_published(self, item: DataItem, version: int, version_time: float) -> None:
        self._carry(item.item_id, version, version_time)
        self._push_open_contacts()

    def on_contact_start(self, peer: Node) -> None:
        self._push_to(peer)

    def _push_open_contacts(self) -> None:
        if self.node.network is None:
            return
        for peer_id in self.node.neighbors:
            self._push_to(self.node.network.nodes[peer_id])

    def _push_to(self, peer: Node) -> None:
        if not self.carried:
            return
        pid = peer.node_id
        if accounting.INCREMENTAL_BOOKKEEPING:
            if self._peer_known.get(pid) == len(self.carried):
                # Every carried version was already observed at the peer,
                # so the scan below would skip every item.
                return
            seen = self._peer_seen.get(pid)
            if seen is None:
                seen = self._peer_seen[pid] = {}
                self._peer_known[pid] = 0
        else:
            seen = None
        peer_handler = peer.find_handler(FloodingRefreshHandler)
        if not isinstance(peer_handler, FloodingRefreshHandler):
            return
        now = self.node.sim.now
        for item_id, (version, version_time) in self.carried.items():
            if seen is not None:
                wm = seen.get(item_id, 0)
                if wm >= version:
                    continue
            item = self.catalog.get(item_id)
            if now >= version_time + item.lifetime:
                continue
            peer_version = peer_handler.known_version(item_id)
            if seen is not None and peer_version > wm:
                seen[item_id] = peer_version
                if peer_version >= version:
                    self._peer_known[pid] += 1
            if peer_version >= version:
                continue
            message = Message(
                kind="refresh_flood",
                src=self.node.node_id,
                dst=peer.node_id,
                created_at=now,
                size=item.size + REFRESH_OVERHEAD,
                payload={
                    "item_id": item_id,
                    "version": version,
                    "version_time": version_time,
                },
            )
            self.node.send(message, peer)

    def on_message(self, message: Message, sender: Node) -> None:
        item_id = message.payload["item_id"]
        version = message.payload["version"]
        version_time = message.payload["version_time"]
        # The sender provably carries at least this version.
        self._observe_peer(sender.node_id, item_id, version)
        if self.known_version(item_id) >= version:
            return
        self._carry(item_id, version, version_time)
        if self.store is not None:
            item = self.catalog.get(item_id)
            now = self.node.sim.now
            if self.store.put(
                CacheEntry(
                    item_id=item_id,
                    version=version,
                    version_time=version_time,
                    cached_at=now,
                ),
                now,
            ):
                self.update_log.append(
                    RefreshUpdate(
                        item_id=item_id,
                        node=self.node.node_id,
                        version=version,
                        version_time=version_time,
                        updated_at=now,
                        via="flood",
                    )
                )
                self.stats.counter("refresh.updates").add(1)
                self.stats.tally("refresh.delay").observe(now - version_time)
        # Gossip onward over currently open contacts.
        self._push_open_contacts()
