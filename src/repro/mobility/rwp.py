"""Random-waypoint spatial mobility with contact extraction.

Unlike the Poisson generators, this model moves nodes through space and
derives contacts geometrically: two nodes are in contact while their
distance is below ``radio_range``.  It exists (a) as an independent
cross-check that the schemes do not depend on the exponential
inter-contact assumption, and (b) to exercise the trace pipeline with a
mobility model whose contacts have realistic spatial correlation.

Nodes move on a square of side ``area``: pick a uniform waypoint, move
toward it at a speed uniform in ``[speed_min, speed_max]``, optionally
pause, repeat.  Positions are sampled every ``sample_interval`` seconds
and contact intervals are built from the sampled proximity indicator.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mobility.arrays import ContactArrays
from repro.mobility.synthetic import DEFAULT_CHUNK_CONTACTS
from repro.mobility.trace import Contact, ContactTrace


class RandomWaypointModel:
    """Random-waypoint mobility on a square area."""

    def __init__(
        self,
        n: int,
        area: float = 1000.0,
        radio_range: float = 30.0,
        speed_min: float = 0.5,
        speed_max: float = 2.0,
        pause_max: float = 120.0,
        sample_interval: float = 10.0,
        name: str = "rwp",
    ) -> None:
        if n < 2:
            raise ValueError("need at least 2 nodes")
        if not 0 < speed_min <= speed_max:
            raise ValueError("need 0 < speed_min <= speed_max")
        if radio_range <= 0 or area <= 0 or sample_interval <= 0:
            raise ValueError("area, radio_range and sample_interval must be positive")
        self.n = int(n)
        self.area = float(area)
        self.radio_range = float(radio_range)
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause_max = float(pause_max)
        self.sample_interval = float(sample_interval)
        self.name = name
        self.node_ids = list(range(self.n))

    def positions(self, duration: float, rng: np.random.Generator) -> np.ndarray:
        """Sampled positions, shape ``(num_samples, n, 2)``."""
        num_samples = int(duration / self.sample_interval) + 1
        pos = rng.random((self.n, 2)) * self.area
        target = rng.random((self.n, 2)) * self.area
        speed = rng.uniform(self.speed_min, self.speed_max, size=self.n)
        pause_left = np.zeros(self.n)
        out = np.empty((num_samples, self.n, 2))
        dt = self.sample_interval
        for k in range(num_samples):
            out[k] = pos
            for i in range(self.n):
                if pause_left[i] > 0:
                    pause_left[i] = max(0.0, pause_left[i] - dt)
                    continue
                vec = target[i] - pos[i]
                dist = float(np.hypot(vec[0], vec[1]))
                step = speed[i] * dt
                if dist <= step:
                    pos[i] = target[i]
                    target[i] = rng.random(2) * self.area
                    speed[i] = rng.uniform(self.speed_min, self.speed_max)
                    if self.pause_max > 0:
                        pause_left[i] = rng.uniform(0.0, self.pause_max)
                else:
                    pos[i] = pos[i] + vec * (step / dist)
        return out

    def generate(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        """Derive contact intervals from sampled proximity."""
        samples = self.positions(duration, rng)
        num_samples = samples.shape[0]
        dt = self.sample_interval
        open_since: dict[tuple[int, int], float] = {}
        contacts: list[Contact] = []
        range2 = self.radio_range**2
        for k in range(num_samples):
            t = k * dt
            pts = samples[k]
            diff = pts[:, None, :] - pts[None, :, :]
            dist2 = (diff**2).sum(axis=2)
            near = dist2 <= range2
            iu = np.triu_indices(self.n, k=1)
            for i, j in zip(*iu):
                pair = (int(i), int(j))
                if near[i, j]:
                    open_since.setdefault(pair, t)
                elif pair in open_since:
                    start = open_since.pop(pair)
                    contacts.append(Contact.make(pair[0], pair[1], start, t))
        horizon = (num_samples - 1) * dt
        for pair, start in open_since.items():
            if horizon > start:
                contacts.append(Contact.make(pair[0], pair[1], start, horizon))
        return ContactTrace(contacts, node_ids=self.node_ids, name=self.name)

    def generate_chunks(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield the trace as lexsorted ``(start, end, a, b)`` blocks.

        Contact extraction consumes no RNG (only :meth:`positions`
        does), so the open/close bookkeeping can run on whole pair
        vectors per sample; the emitted interval set is exactly
        :meth:`generate`'s, just discovered in close-time order before
        the per-block sort.
        """
        samples = self.positions(duration, rng)
        num_samples = samples.shape[0]
        dt = self.sample_interval
        range2 = self.radio_range**2
        iu_i, iu_j = np.triu_indices(self.n, k=1)
        open_mask = np.zeros(len(iu_i), dtype=bool)
        open_start = np.zeros(len(iu_i), dtype=np.float64)
        buf: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        buffered = 0
        for k in range(num_samples):
            t = k * dt
            pts = samples[k]
            diff = pts[:, None, :] - pts[None, :, :]
            dist2 = (diff**2).sum(axis=2)
            near = dist2[iu_i, iu_j] <= range2
            closes = open_mask & ~near
            if bool(closes.any()):
                s = open_start[closes]
                buf.append((s, np.full(len(s), t), iu_i[closes], iu_j[closes]))
                buffered += len(s)
            opens = near & ~open_mask
            open_start[opens] = t
            open_mask = near
            if buffered >= chunk_contacts:
                yield _flush(buf)
                buf, buffered = [], 0
        horizon = (num_samples - 1) * dt
        final = open_mask & (open_start < horizon)
        if bool(final.any()):
            s = open_start[final]
            buf.append((s, np.full(len(s), horizon), iu_i[final], iu_j[final]))
        if buf:
            yield _flush(buf)

    def generate_arrays(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> ContactArrays:
        """Chunked generation assembled into a :class:`ContactArrays`.

        A pair that closes can only reopen a full sample later, so
        intervals of one pair never overlap or touch and assembly skips
        the merge pass.
        """
        return ContactArrays.from_blocks(
            self.generate_chunks(duration, rng, chunk_contacts=chunk_contacts),
            node_ids=self.node_ids,
            name=self.name,
            merge_overlaps=False,
        )


def _flush(
    buf: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    s = np.concatenate([p[0] for p in buf])
    e = np.concatenate([p[1] for p in buf])
    a = np.concatenate([p[2] for p in buf])
    b = np.concatenate([p[3] for p in buf])
    order = np.lexsort((b, a, e, s))
    return s[order], e[order], a[order], b[order]
