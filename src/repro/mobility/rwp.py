"""Random-waypoint spatial mobility with contact extraction.

Unlike the Poisson generators, this model moves nodes through space and
derives contacts geometrically: two nodes are in contact while their
distance is below ``radio_range``.  It exists (a) as an independent
cross-check that the schemes do not depend on the exponential
inter-contact assumption, and (b) to exercise the trace pipeline with a
mobility model whose contacts have realistic spatial correlation.

Nodes move on a square of side ``area``: pick a uniform waypoint, move
toward it at a speed uniform in ``[speed_min, speed_max]``, optionally
pause, repeat.  Positions are sampled every ``sample_interval`` seconds
and contact intervals are built from the sampled proximity indicator.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.trace import Contact, ContactTrace


class RandomWaypointModel:
    """Random-waypoint mobility on a square area."""

    def __init__(
        self,
        n: int,
        area: float = 1000.0,
        radio_range: float = 30.0,
        speed_min: float = 0.5,
        speed_max: float = 2.0,
        pause_max: float = 120.0,
        sample_interval: float = 10.0,
        name: str = "rwp",
    ) -> None:
        if n < 2:
            raise ValueError("need at least 2 nodes")
        if not 0 < speed_min <= speed_max:
            raise ValueError("need 0 < speed_min <= speed_max")
        if radio_range <= 0 or area <= 0 or sample_interval <= 0:
            raise ValueError("area, radio_range and sample_interval must be positive")
        self.n = int(n)
        self.area = float(area)
        self.radio_range = float(radio_range)
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause_max = float(pause_max)
        self.sample_interval = float(sample_interval)
        self.name = name
        self.node_ids = list(range(self.n))

    def positions(self, duration: float, rng: np.random.Generator) -> np.ndarray:
        """Sampled positions, shape ``(num_samples, n, 2)``."""
        num_samples = int(duration / self.sample_interval) + 1
        pos = rng.random((self.n, 2)) * self.area
        target = rng.random((self.n, 2)) * self.area
        speed = rng.uniform(self.speed_min, self.speed_max, size=self.n)
        pause_left = np.zeros(self.n)
        out = np.empty((num_samples, self.n, 2))
        dt = self.sample_interval
        for k in range(num_samples):
            out[k] = pos
            for i in range(self.n):
                if pause_left[i] > 0:
                    pause_left[i] = max(0.0, pause_left[i] - dt)
                    continue
                vec = target[i] - pos[i]
                dist = float(np.hypot(vec[0], vec[1]))
                step = speed[i] * dt
                if dist <= step:
                    pos[i] = target[i]
                    target[i] = rng.random(2) * self.area
                    speed[i] = rng.uniform(self.speed_min, self.speed_max)
                    if self.pause_max > 0:
                        pause_left[i] = rng.uniform(0.0, self.pause_max)
                else:
                    pos[i] = pos[i] + vec * (step / dist)
        return out

    def generate(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        """Derive contact intervals from sampled proximity."""
        samples = self.positions(duration, rng)
        num_samples = samples.shape[0]
        dt = self.sample_interval
        open_since: dict[tuple[int, int], float] = {}
        contacts: list[Contact] = []
        range2 = self.radio_range**2
        for k in range(num_samples):
            t = k * dt
            pts = samples[k]
            diff = pts[:, None, :] - pts[None, :, :]
            dist2 = (diff**2).sum(axis=2)
            near = dist2 <= range2
            iu = np.triu_indices(self.n, k=1)
            for i, j in zip(*iu):
                pair = (int(i), int(j))
                if near[i, j]:
                    open_since.setdefault(pair, t)
                elif pair in open_since:
                    start = open_since.pop(pair)
                    contacts.append(Contact.make(pair[0], pair[1], start, t))
        horizon = (num_samples - 1) * dt
        for pair, start in open_since.items():
            if horizon > start:
                contacts.append(Contact.make(pair[0], pair[1], start, horizon))
        return ContactTrace(contacts, node_ids=self.node_ids, name=self.name)
