"""Contact-trace data model.

A *contact* is an interval during which two nodes can exchange data.  A
*trace* is the full time-ordered set of contacts over a node population,
either recorded from real devices (CRAWDAD-style) or synthesised by the
generators in this package.

The trace is the only interface between mobility and everything above
it: the simulator replays contacts, the contact-analysis layer estimates
rates from them, and the schemes never see positions or radio models.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from operator import attrgetter
from typing import Iterable, Iterator, Optional, Sequence

#: Sort key matching :class:`Contact`'s dataclass ordering exactly.
#: Sorting large generated traces through a key of plain tuples is much
#: faster than the dataclass ``__lt__`` (one Python call per comparison).
_CONTACT_ORDER = attrgetter("start", "end", "a", "b")

#: When True (default), trace construction sorts through the tuple key
#: above.  ``repro bench`` flips this together with
#: ``repro.mobility.synthetic.VECTORISED_GENERATION`` so the legacy
#: comparison measures the pre-optimisation dataclass comparisons.  The
#: orderings are identical either way.
FAST_SORT = True


def _sort_contacts(contacts: list) -> None:
    contacts.sort(key=_CONTACT_ORDER if FAST_SORT else None)


@dataclass(frozen=True, order=True)
class Contact:
    """One contact interval between nodes ``a`` and ``b``.

    Ordering is by ``(start, end, a, b)`` so sorting a contact list gives
    replay order.  ``a < b`` is normalised by :meth:`make`.
    """

    start: float
    end: float
    a: int
    b: int

    @classmethod
    def make(cls, a: int, b: int, start: float, end: float) -> "Contact":
        """Validated constructor that normalises the pair order."""
        if a == b:
            raise ValueError(f"self-contact for node {a}")
        if end < start:
            raise ValueError(f"contact ends before it starts: [{start}, {end}]")
        if a > b:
            a, b = b, a
        return cls(float(start), float(end), int(a), int(b))

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def pair(self) -> tuple[int, int]:
        return (self.a, self.b)

    def involves(self, node_id: int) -> bool:
        return node_id == self.a or node_id == self.b

    def peer_of(self, node_id: int) -> int:
        """The other endpoint of this contact."""
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise ValueError(f"node {node_id} is not part of contact {self}")


@dataclass
class TraceStats:
    """Aggregate statistics of a trace (rows of the E1 table)."""

    num_nodes: int
    num_contacts: int
    duration: float
    num_pairs_with_contact: int
    mean_contacts_per_pair: float
    mean_contact_duration: float
    mean_inter_contact: float
    median_inter_contact: float

    def as_row(self) -> dict[str, float]:
        return {
            "nodes": self.num_nodes,
            "contacts": self.num_contacts,
            "duration_days": self.duration / 86400.0,
            "pairs_with_contact": self.num_pairs_with_contact,
            "contacts_per_pair": self.mean_contacts_per_pair,
            "mean_contact_s": self.mean_contact_duration,
            "mean_intercontact_h": self.mean_inter_contact / 3600.0,
            "median_intercontact_h": self.median_inter_contact / 3600.0,
        }


class ContactTrace:
    """Time-ordered, validated collection of contacts.

    Construction sorts contacts and (optionally) merges overlapping
    intervals of the same pair -- real traces frequently contain
    overlapping sightings from both endpoints.
    """

    def __init__(
        self,
        contacts: Iterable[Contact],
        node_ids: Optional[Iterable[int]] = None,
        name: str = "trace",
        merge_overlaps: bool = True,
    ) -> None:
        sorted_contacts = list(contacts)
        _sort_contacts(sorted_contacts)
        if merge_overlaps:
            sorted_contacts = _merge_overlapping(sorted_contacts)
        self._contacts: list[Contact] = sorted_contacts
        self.name = name
        seen: set[int] = set()
        for c in self._contacts:
            seen.add(c.a)
            seen.add(c.b)
        if node_ids is not None:
            ids = set(int(n) for n in node_ids)
            missing = seen - ids
            if missing:
                raise ValueError(f"contacts reference unknown nodes: {sorted(missing)}")
            self.node_ids: tuple[int, ...] = tuple(sorted(ids))
        else:
            self.node_ids = tuple(sorted(seen))
        self._starts = [c.start for c in self._contacts]
        self._pair_index: Optional[dict[tuple[int, int], list[Contact]]] = None

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    def __getitem__(self, index: int) -> Contact:
        return self._contacts[index]

    @property
    def contacts(self) -> Sequence[Contact]:
        return self._contacts

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def start_time(self) -> float:
        return self._contacts[0].start if self._contacts else 0.0

    @property
    def end_time(self) -> float:
        return max((c.end for c in self._contacts), default=0.0)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    # -- queries -------------------------------------------------------------

    def pair_contacts(self) -> dict[tuple[int, int], list[Contact]]:
        """Contacts grouped by (a, b) pair, each list time-ordered."""
        if self._pair_index is None:
            index: dict[tuple[int, int], list[Contact]] = {}
            for c in self._contacts:
                index.setdefault(c.pair, []).append(c)
            self._pair_index = index
        return self._pair_index

    def contacts_of(self, node_id: int) -> list[Contact]:
        """All contacts involving ``node_id``, time-ordered."""
        return [c for c in self._contacts if c.involves(node_id)]

    def window(self, t0: float, t1: float, clip: bool = True) -> "ContactTrace":
        """Contacts overlapping [t0, t1], optionally clipped to it."""
        if t1 < t0:
            raise ValueError(f"empty window [{t0}, {t1}]")
        picked = []
        lo = bisect_left(self._starts, t0 - self._max_duration())
        for c in self._contacts[lo:]:
            if c.start > t1:
                break
            if c.end < t0:
                continue
            if clip:
                picked.append(Contact.make(c.a, c.b, max(c.start, t0), min(c.end, t1)))
            else:
                picked.append(c)
        return ContactTrace(
            picked, node_ids=self.node_ids, name=f"{self.name}[{t0},{t1}]",
            merge_overlaps=False,
        )

    def subset(self, node_ids: Iterable[int]) -> "ContactTrace":
        """Restrict the trace to contacts among ``node_ids``."""
        keep = set(int(n) for n in node_ids)
        picked = [c for c in self._contacts if c.a in keep and c.b in keep]
        return ContactTrace(
            picked, node_ids=keep, name=f"{self.name}|{len(keep)}n",
            merge_overlaps=False,
        )

    def shifted(self, offset: float) -> "ContactTrace":
        """The same trace with every timestamp shifted by ``offset``."""
        moved = [Contact.make(c.a, c.b, c.start + offset, c.end + offset) for c in self]
        return ContactTrace(moved, node_ids=self.node_ids, name=self.name, merge_overlaps=False)

    def _max_duration(self) -> float:
        return max((c.duration for c in self._contacts), default=0.0)

    # -- statistics ------------------------------------------------------------

    def inter_contact_times(self) -> dict[tuple[int, int], list[float]]:
        """Per-pair gaps between the end of a contact and the next start."""
        gaps: dict[tuple[int, int], list[float]] = {}
        for pair, contacts in self.pair_contacts().items():
            pair_gaps = []
            for prev, nxt in zip(contacts, contacts[1:]):
                gap = nxt.start - prev.end
                if gap > 0:
                    pair_gaps.append(gap)
            if pair_gaps:
                gaps[pair] = pair_gaps
        return gaps

    def stats(self) -> TraceStats:
        """Aggregate statistics (row of the E1 trace table)."""
        pairs = self.pair_contacts()
        durations = [c.duration for c in self._contacts]
        all_gaps = [g for gaps in self.inter_contact_times().values() for g in gaps]
        all_gaps.sort()
        n = len(all_gaps)
        if n:
            median = all_gaps[n // 2] if n % 2 else 0.5 * (all_gaps[n // 2 - 1] + all_gaps[n // 2])
            mean_gap = sum(all_gaps) / n
        else:
            median = float("nan")
            mean_gap = float("nan")
        return TraceStats(
            num_nodes=self.num_nodes,
            num_contacts=len(self._contacts),
            duration=self.duration,
            num_pairs_with_contact=len(pairs),
            mean_contacts_per_pair=(len(self._contacts) / len(pairs)) if pairs else 0.0,
            mean_contact_duration=(sum(durations) / len(durations)) if durations else 0.0,
            mean_inter_contact=mean_gap,
            median_inter_contact=median,
        )


def _merge_overlapping(contacts: list[Contact]) -> list[Contact]:
    """Merge overlapping/adjacent contacts of the same pair.

    Input must already be sorted.  Output is sorted too.
    """
    open_by_pair: dict[tuple[int, int], Contact] = {}
    merged: list[Contact] = []
    for c in contacts:
        key = (c.a, c.b)
        current = open_by_pair.get(key)
        if current is not None and c.start <= current.end:
            if c.end > current.end:
                open_by_pair[key] = Contact(current.start, c.end, c.a, c.b)
        else:
            if current is not None:
                merged.append(current)
            open_by_pair[key] = c
    merged.extend(open_by_pair.values())
    _sort_contacts(merged)
    return merged
