"""Levy-walk spatial mobility with contact extraction.

Vehicular and human GPS traces show *scale-free* displacement: most
moves are short, but occasional long flights relocate a node across the
whole area (Rhee et al., "On the Levy-walk nature of human mobility").
A random waypoint model misses this heavy tail; this model generates it
directly:

1. draw a flight length from a truncated Pareto (power-law exponent
   ``alpha``, cut off at the arena diagonal) and a uniform direction;
2. traverse the flight at a speed coupled to its length (long flights
   are faster -- the vehicular regime), reflecting off the arena walls;
3. pause for a truncated-Pareto time (exponent ``beta``) and repeat.

Contacts are derived geometrically exactly like
:class:`~repro.mobility.rwp.RandomWaypointModel`: positions are sampled
every ``sample_interval`` seconds and a contact spans every maximal run
of samples in which two nodes sit within ``radio_range``.  The
heavy-tailed flights produce the bursty, long-range re-mixing that makes
vehicular traces hard for purely rate-based schemes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mobility.arrays import ContactArrays
from repro.mobility.synthetic import DEFAULT_CHUNK_CONTACTS
from repro.mobility.trace import Contact, ContactTrace


def truncated_pareto(
    rng: np.random.Generator,
    alpha: float,
    lo: float,
    hi: float,
    size: int | None = None,
) -> "np.ndarray | float":
    """Draw from a Pareto(``alpha``) truncated to ``[lo, hi]``.

    Inverse-CDF sampling of ``p(x) ~ x**-(alpha+1)`` restricted to the
    interval, so the tail is genuinely power-law up to the cutoff
    (re-drawing until below ``hi`` would consume an unbounded number of
    RNG draws and break per-seed determinism).

    >>> import numpy as np
    >>> rng = np.random.default_rng(7)
    >>> x = truncated_pareto(rng, alpha=1.5, lo=10.0, hi=1000.0, size=1000)
    >>> bool((x >= 10.0).all() and (x <= 1000.0).all())
    True
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    u = rng.random(size) if size is not None else rng.random()
    lo_a = lo**-alpha
    hi_a = hi**-alpha
    return (lo_a - u * (lo_a - hi_a)) ** (-1.0 / alpha)


class LevyWalkModel:
    """Levy-walk mobility on a square arena (vehicular regime).

    ``alpha`` is the flight-length exponent (smaller = heavier tail;
    Rhee et al. report ~1.5 for human walks, vehicular traces trend
    lower), ``beta`` the pause-time exponent.  Speed scales with flight
    length as ``speed = speed_scale * length**speed_exponent`` clipped
    to ``[speed_min, speed_max]`` -- long flights are driven, short ones
    walked.
    """

    def __init__(
        self,
        n: int,
        area: float = 2000.0,
        radio_range: float = 50.0,
        alpha: float = 1.4,
        beta: float = 1.8,
        flight_min: float = 20.0,
        pause_min: float = 10.0,
        pause_max: float = 600.0,
        speed_min: float = 1.0,
        speed_max: float = 15.0,
        speed_scale: float = 0.5,
        speed_exponent: float = 0.5,
        sample_interval: float = 10.0,
        name: str = "levy",
    ) -> None:
        if n < 2:
            raise ValueError("need at least 2 nodes")
        if area <= 0 or radio_range <= 0 or sample_interval <= 0:
            raise ValueError("area, radio_range and sample_interval must be positive")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if not 0 < flight_min < area:
            raise ValueError("need 0 < flight_min < area")
        if not 0 < pause_min < pause_max:
            raise ValueError("need 0 < pause_min < pause_max")
        if not 0 < speed_min <= speed_max:
            raise ValueError("need 0 < speed_min <= speed_max")
        self.n = int(n)
        self.area = float(area)
        self.radio_range = float(radio_range)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.flight_min = float(flight_min)
        self.flight_max = float(np.hypot(area, area))
        self.pause_min = float(pause_min)
        self.pause_max = float(pause_max)
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.speed_scale = float(speed_scale)
        self.speed_exponent = float(speed_exponent)
        self.sample_interval = float(sample_interval)
        self.name = name
        self.node_ids = list(range(self.n))

    def _flight_speed(self, length: np.ndarray) -> np.ndarray:
        speed = self.speed_scale * length**self.speed_exponent
        return np.clip(speed, self.speed_min, self.speed_max)

    def positions(self, duration: float, rng: np.random.Generator) -> np.ndarray:
        """Sampled positions, shape ``(num_samples, n, 2)``.

        All nodes draw their next flight/pause in node-id order whenever
        they finish the previous one, so the draw sequence -- and hence
        the trace -- is a pure function of the seed.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        num_samples = int(duration / self.sample_interval) + 1
        pos = rng.random((self.n, 2)) * self.area
        # Per-node leg state: target of the current flight, speed, and
        # remaining pause.  Nodes start paused for a uniform fraction of
        # a pause draw so they do not all depart in lockstep.
        target = pos.copy()
        speed = np.full(self.n, self.speed_min)
        pause_left = truncated_pareto(
            rng, self.beta, self.pause_min, self.pause_max, size=self.n
        ) * rng.random(self.n)
        out = np.empty((num_samples, self.n, 2))
        dt = self.sample_interval
        for k in range(num_samples):
            out[k] = pos
            for i in range(self.n):
                if pause_left[i] > 0:
                    pause_left[i] -= dt
                    if pause_left[i] > 0:
                        continue
                    pause_left[i] = 0.0
                    self._new_flight(i, pos, target, speed, rng)
                vec = target[i] - pos[i]
                dist = float(np.hypot(vec[0], vec[1]))
                step = speed[i] * dt
                if dist <= step:
                    pos[i] = target[i]
                    pause_left[i] = float(
                        truncated_pareto(rng, self.beta, self.pause_min, self.pause_max)
                    )
                else:
                    pos[i] = pos[i] + vec * (step / dist)
        return out

    def _new_flight(
        self,
        i: int,
        pos: np.ndarray,
        target: np.ndarray,
        speed: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        length = float(
            truncated_pareto(rng, self.alpha, self.flight_min, self.flight_max)
        )
        angle = rng.random() * 2.0 * np.pi
        dest = pos[i] + length * np.array([np.cos(angle), np.sin(angle)])
        # Reflect off the arena walls (a vehicle turns at the boundary).
        dest = np.abs(dest)
        dest = self.area - np.abs(self.area - dest % (2.0 * self.area))
        target[i] = dest
        speed[i] = float(self._flight_speed(np.array([length]))[0])

    def generate(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        """Derive contact intervals from sampled proximity."""
        samples = self.positions(duration, rng)
        num_samples = samples.shape[0]
        dt = self.sample_interval
        open_since: dict[tuple[int, int], float] = {}
        contacts: list[Contact] = []
        range2 = self.radio_range**2
        iu = np.triu_indices(self.n, k=1)
        for k in range(num_samples):
            t = k * dt
            pts = samples[k]
            diff = pts[:, None, :] - pts[None, :, :]
            dist2 = (diff**2).sum(axis=2)
            near = dist2 <= range2
            for i, j in zip(*iu):
                pair = (int(i), int(j))
                if near[i, j]:
                    open_since.setdefault(pair, t)
                elif pair in open_since:
                    start = open_since.pop(pair)
                    contacts.append(Contact.make(pair[0], pair[1], start, t))
        horizon = (num_samples - 1) * dt
        for pair, start in open_since.items():
            if horizon > start:
                contacts.append(Contact.make(pair[0], pair[1], start, horizon))
        return ContactTrace(contacts, node_ids=self.node_ids, name=self.name)

    def generate_chunks(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield the trace as lexsorted ``(start, end, a, b)`` blocks.

        Contact extraction consumes no RNG (only :meth:`positions`
        does), so the emitted interval set is exactly :meth:`generate`'s,
        discovered in close-time order before the per-block sort --
        the same contract as the other chunked generators.
        """
        samples = self.positions(duration, rng)
        num_samples = samples.shape[0]
        dt = self.sample_interval
        range2 = self.radio_range**2
        iu_i, iu_j = np.triu_indices(self.n, k=1)
        open_mask = np.zeros(len(iu_i), dtype=bool)
        open_start = np.zeros(len(iu_i), dtype=np.float64)
        buf: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        buffered = 0
        for k in range(num_samples):
            t = k * dt
            pts = samples[k]
            diff = pts[:, None, :] - pts[None, :, :]
            dist2 = (diff**2).sum(axis=2)
            near = dist2[iu_i, iu_j] <= range2
            closes = open_mask & ~near
            if bool(closes.any()):
                s = open_start[closes]
                buf.append((s, np.full(len(s), t), iu_i[closes], iu_j[closes]))
                buffered += len(s)
            opens = near & ~open_mask
            open_start[opens] = t
            open_mask = near
            if buffered >= chunk_contacts:
                yield _flush(buf)
                buf, buffered = [], 0
        horizon = (num_samples - 1) * dt
        final = open_mask & (open_start < horizon)
        if bool(final.any()):
            s = open_start[final]
            buf.append((s, np.full(len(s), horizon), iu_i[final], iu_j[final]))
        if buf:
            yield _flush(buf)

    def generate_arrays(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> ContactArrays:
        """Chunked generation assembled into a :class:`ContactArrays`.

        A pair that closes can only reopen a full sample later, so
        intervals of one pair never overlap and assembly skips the
        merge pass.
        """
        return ContactArrays.from_blocks(
            self.generate_chunks(duration, rng, chunk_contacts=chunk_contacts),
            node_ids=self.node_ids,
            name=self.name,
            merge_overlaps=False,
        )


def _flush(
    buf: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    s = np.concatenate([p[0] for p in buf])
    e = np.concatenate([p[1] for p in buf])
    a = np.concatenate([p[2] for p in buf])
    b = np.concatenate([p[3] for p in buf])
    order = np.lexsort((b, a, e, s))
    return s[order], e[order], a[order], b[order]
