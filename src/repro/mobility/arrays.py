"""Array-native contact-trace container.

:class:`ContactArrays` holds a whole contact trace as four parallel
NumPy arrays (``start``, ``end``, ``a``, ``b``) lexsorted by
``(start, end, a, b)`` -- exactly the order :class:`ContactTrace`
iterates in -- without materialising one :class:`Contact` object per
row.  It is the interchange format of the chunked build pipeline: the
mobility generators emit lexsorted blocks, :func:`repro.contacts.rates`
estimates rates straight off the arrays, and
:class:`repro.sim.soa.ContactEventStream` consumes them without an
object round-trip.

Construction reproduces :class:`ContactTrace`'s semantics bit for bit:

* pairs are normalised to ``a < b``;
* overlapping/touching intervals of the same pair are merged with the
  same rule as ``trace._merge_overlapping`` (``next.start <= cur.end``
  extends ``cur.end`` to the max);
* rows are sorted by the ``(start, end, a, b)`` tuple order.

``ContactArrays.from_trace(t).to_trace()`` round-trips losslessly, and
the equivalence is enforced by tests (chunked vs monolithic generation,
array vs object synthesis in ``experiments/scale``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.mobility.trace import Contact, ContactTrace

#: Node ids must fit a non-negative int32 so a pair packs into one int64
#: key (``a << 32 | b``) for vectorised grouping.
MAX_NODE_ID = 2**31 - 1

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)


def _pack_pairs(a, b):
    """One int64 key per row ordering exactly like ``(a, b)`` (ids are
    non-negative and fit 31 bits)."""
    return (a.astype(np.int64) << 32) | b.astype(np.int64)


def _final_sort(s, e, a, b):
    """Sort rows by ``(start, end, a, b)`` -- Contact tuple order."""
    order = np.lexsort((_pack_pairs(a, b), e, s))
    return s[order], e[order], a[order], b[order]


def _merge_pair_runs(s, e, a, b):
    """Merge overlapping same-pair intervals, array-natively.

    Exact equivalent of ``trace._merge_overlapping``: rows are grouped
    by pair and time-ordered; a row starting at or before the current
    open interval's end extends it (``end = max(ends)``).  Output row
    order is unspecified (callers re-sort globally).

    Two regimes, picked by how often a pair repeats.  Sparse traces
    (city-scale uniform mixing: almost every pair occurs once) need only
    a single int-key argsort to *find* the few repeated pairs, each of
    which is merged exactly in Python.  Dense traces (small populations
    with many contacts per pair) keep the fully vectorised
    grouped-lexsort path.
    """
    n = len(s)
    if n < 2:
        return s, e, a, b
    pack = _pack_pairs(a, b)
    order = np.argsort(pack, kind="stable")
    ps = pack[order]
    dup = ps[1:] == ps[:-1]
    ndup = int(dup.sum())
    if ndup == 0:
        # Every pair occurs exactly once: nothing can merge.
        return s, e, a, b
    if ndup > n // 100:
        return _merge_pair_runs_dense(s, e, a, b, pack)
    s, e, a, b = s[order], e[order], a[order], b[order]
    keys = np.unique(ps[1:][dup])
    los = np.searchsorted(ps, keys, side="left")
    his = np.searchsorted(ps, keys, side="right")
    keep = np.ones(n, dtype=bool)
    merged_s: list[float] = []
    merged_e: list[float] = []
    merged_a: list[int] = []
    merged_b: list[int] = []
    for lo, hi in zip(los.tolist(), his.tolist()):
        keep[lo:hi] = False
        seg = np.lexsort((e[lo:hi], s[lo:hi]))
        ss = s[lo:hi][seg].tolist()
        ee = e[lo:hi][seg].tolist()
        cs = ss[0]
        ce = ee[0]
        for i in range(1, len(ss)):
            si = ss[i]
            if si <= ce:
                if ee[i] > ce:
                    ce = ee[i]
            else:
                merged_s.append(cs)
                merged_e.append(ce)
                cs = si
                ce = ee[i]
        merged_s.append(cs)
        merged_e.append(ce)
        count = len(merged_a)
        pair_rows = len(merged_s) - count
        merged_a.extend([int(a[lo])] * pair_rows)
        merged_b.extend([int(b[lo])] * pair_rows)
    s = np.concatenate([s[keep], np.asarray(merged_s, dtype=np.float64)])
    e = np.concatenate([e[keep], np.asarray(merged_e, dtype=np.float64)])
    a = np.concatenate([a[keep], np.asarray(merged_a, dtype=a.dtype)])
    b = np.concatenate([b[keep], np.asarray(merged_b, dtype=b.dtype)])
    return s, e, a, b


def _merge_pair_runs_dense(s, e, a, b, pack):
    """The dense regime of :func:`_merge_pair_runs`.

    One grouped lexsort orders every pair's run by ``(start, end)``.
    The overlap test uses a *global* running max of ``end`` as a
    conservative superset: within one pair the global running max
    equals the group-local one (a group break would need a start above
    every earlier end), so the candidate mask is exact per pair; the
    few pair groups it flags are merged exactly in Python.
    """
    n = len(s)
    order = np.lexsort((e, s, pack))
    s, e, a, b = s[order], e[order], a[order], b[order]
    same = (a[1:] == a[:-1]) & (b[1:] == b[:-1])
    running_max = np.maximum.accumulate(e)
    cand = same & (s[1:] <= running_max[:-1])
    if not bool(cand.any()):
        return s, e, a, b
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = ~same
    gid = np.cumsum(new_group) - 1
    num_groups = int(gid[-1]) + 1
    affected = np.zeros(num_groups, dtype=bool)
    affected[gid[1:][cand]] = True
    row_affected = affected[gid]
    keep = ~row_affected
    group_starts = np.nonzero(new_group)[0]
    merged_s: list[float] = []
    merged_e: list[float] = []
    merged_a: list[int] = []
    merged_b: list[int] = []
    for g in np.nonzero(affected)[0]:
        lo = int(group_starts[g])
        hi = int(group_starts[g + 1]) if g + 1 < num_groups else n
        cs = s[lo]
        ce = e[lo]
        for i in range(lo + 1, hi):
            si = s[i]
            if si <= ce:
                ei = e[i]
                if ei > ce:
                    ce = ei
            else:
                merged_s.append(cs)
                merged_e.append(ce)
                cs = si
                ce = e[i]
        merged_s.append(cs)
        merged_e.append(ce)
        count = len(merged_a)
        pair_rows = len(merged_s) - count
        merged_a.extend([int(a[lo])] * pair_rows)
        merged_b.extend([int(b[lo])] * pair_rows)
    s = np.concatenate([s[keep], np.asarray(merged_s, dtype=np.float64)])
    e = np.concatenate([e[keep], np.asarray(merged_e, dtype=np.float64)])
    a = np.concatenate([a[keep], np.asarray(merged_a, dtype=a.dtype)])
    b = np.concatenate([b[keep], np.asarray(merged_b, dtype=b.dtype)])
    return s, e, a, b


class ContactArrays:
    """Lexsorted struct-of-arrays contact trace.

    ``start``/``end`` are float64 seconds, ``a``/``b`` int32 node ids
    with ``a < b`` per row; rows are sorted by ``(start, end, a, b)``.
    """

    __slots__ = ("start", "end", "a", "b", "name", "_node_id_arr", "_node_ids")

    def __init__(
        self,
        start,
        end,
        a,
        b,
        node_ids: Optional[Iterable[int]] = None,
        name: str = "arrays",
        merge_overlaps: bool = True,
    ) -> None:
        s = np.ascontiguousarray(start, dtype=np.float64)
        e = np.ascontiguousarray(end, dtype=np.float64)
        aa = np.ascontiguousarray(a, dtype=np.int64)
        bb = np.ascontiguousarray(b, dtype=np.int64)
        if not (len(s) == len(e) == len(aa) == len(bb)):
            raise ValueError("contact arrays must have equal length")
        if len(s):
            if bool((aa == bb).any()):
                raise ValueError("self-contact in contact arrays")
            if bool((e < s).any()):
                raise ValueError("contact ends before it starts")
            lo = min(int(aa.min()), int(bb.min()))
            hi = max(int(aa.max()), int(bb.max()))
            if lo < 0 or hi > MAX_NODE_ID:
                raise ValueError(f"node ids must be in [0, {MAX_NODE_ID}]")
            swap = aa > bb
            if bool(swap.any()):
                aa2 = np.where(swap, bb, aa)
                bb = np.where(swap, aa, bb)
                aa = aa2
        aa = aa.astype(np.int32)
        bb = bb.astype(np.int32)
        if merge_overlaps and len(s):
            s, e, aa, bb = _merge_pair_runs(s, e, aa, bb)
        s, e, aa, bb = _final_sort(s, e, aa, bb)
        self.start = s
        self.end = e
        self.a = aa
        self.b = bb
        self.name = name
        seen = np.unique(np.concatenate([aa, bb])) if len(aa) else _EMPTY_I.astype(np.int32)
        if node_ids is not None:
            ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
            if len(seen):
                pos = np.searchsorted(ids, seen)
                pos_ok = pos < len(ids)
                known = np.zeros(len(seen), dtype=bool)
                known[pos_ok] = ids[pos[pos_ok]] == seen[pos_ok]
                if not bool(known.all()):
                    missing = seen[~known].tolist()
                    raise ValueError(f"contacts reference unknown nodes: {sorted(missing)}")
            self._node_id_arr = ids
        else:
            self._node_id_arr = seen.astype(np.int64)
        self._node_ids: Optional[tuple[int, ...]] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_blocks(
        cls,
        blocks: Iterable[tuple],
        node_ids: Optional[Iterable[int]] = None,
        name: str = "arrays",
        merge_overlaps: bool = True,
    ) -> "ContactArrays":
        """Assemble a trace from ``(start, end, a, b)`` array blocks.

        Generators that already merge each pair's intervals (and never
        split a pair across blocks) pass ``merge_overlaps=False``.
        """
        parts = list(blocks)
        if not parts:
            return cls(_EMPTY_F, _EMPTY_F, _EMPTY_I, _EMPTY_I, node_ids=node_ids,
                       name=name, merge_overlaps=False)
        s = np.concatenate([np.asarray(p[0], dtype=np.float64) for p in parts])
        e = np.concatenate([np.asarray(p[1], dtype=np.float64) for p in parts])
        a = np.concatenate([np.asarray(p[2], dtype=np.int64) for p in parts])
        b = np.concatenate([np.asarray(p[3], dtype=np.int64) for p in parts])
        return cls(s, e, a, b, node_ids=node_ids, name=name, merge_overlaps=merge_overlaps)

    @classmethod
    def from_trace(cls, trace: ContactTrace) -> "ContactArrays":
        s = np.fromiter((c.start for c in trace), dtype=np.float64, count=len(trace))
        e = np.fromiter((c.end for c in trace), dtype=np.float64, count=len(trace))
        a = np.fromiter((c.a for c in trace), dtype=np.int64, count=len(trace))
        b = np.fromiter((c.b for c in trace), dtype=np.int64, count=len(trace))
        return cls(s, e, a, b, node_ids=trace.node_ids, name=trace.name,
                   merge_overlaps=False)

    def to_trace(self) -> ContactTrace:
        """Materialise the object representation (tests, object backend)."""
        contacts = [
            Contact(s, e, a, b)
            for s, e, a, b in zip(
                self.start.tolist(), self.end.tolist(),
                self.a.tolist(), self.b.tolist(),
            )
        ]
        return ContactTrace(contacts, node_ids=self.node_ids, name=self.name,
                            merge_overlaps=False)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.start)

    @property
    def node_id_array(self) -> np.ndarray:
        """Sorted node ids as an int64 array (no tuple materialisation)."""
        return self._node_id_arr

    @property
    def node_ids(self) -> tuple[int, ...]:
        if self._node_ids is None:
            self._node_ids = tuple(self._node_id_arr.tolist())
        return self._node_ids

    @property
    def num_nodes(self) -> int:
        return len(self._node_id_arr)

    @property
    def start_time(self) -> float:
        return float(self.start[0]) if len(self.start) else 0.0

    @property
    def end_time(self) -> float:
        return float(self.end.max()) if len(self.end) else 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def pair_keys(self) -> np.ndarray:
        """Per-row pair id packed into one int64 (``a << 32 | b``)."""
        return (self.a.astype(np.int64) << 32) | self.b.astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ContactArrays({self.name!r}, contacts={len(self)}, "
                f"nodes={self.num_nodes})")
