"""Working-day mobility: contacts from daily routines (Ekman et al. style).

Where the Poisson generators postulate pairwise rates, this model
*derives* contacts from behaviour: every node has a **home**, an
**office** and access to shared **meeting spots**; days cycle through
night (at home), work (at the office, with occasional meetings), and an
evening slot (some nodes visit a spot).  Two nodes are in contact while
co-located in the same hour-slot.

The emergent trace has the structures real traces show -- households
(nodes sharing a home meet every night), office communities, hub spots
-- generated from first principles rather than calibrated rates.  It
serves as an out-of-model check: the schemes' rate estimators and
hierarchy builder never see the behavioural ground truth, only the
contacts.

Hour-by-hour schedule (local time):

====== ==========================================================
hours  behaviour
====== ==========================================================
0-7    at home
8      commute (no contacts)
9-16   at the office; each hour a node joins a meeting spot with
       probability ``meeting_prob`` instead of its office
17     commute (no contacts)
18-21  with probability ``evening_prob`` at a random spot, else home
22-23  at home
====== ==========================================================
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mobility.arrays import ContactArrays
from repro.mobility.synthetic import DEFAULT_CHUNK_CONTACTS
from repro.mobility.trace import Contact, ContactTrace

HOUR = 3600.0


class WorkingDayModel:
    """Behavioural contact generator built on homes, offices and spots."""

    def __init__(
        self,
        n: int,
        num_offices: int = 4,
        num_spots: int = 3,
        household_size: int = 2,
        meeting_prob: float = 0.15,
        evening_prob: float = 0.3,
        contact_fraction: float = 0.5,
        rng: np.random.Generator | None = None,
        name: str = "workingday",
    ) -> None:
        """Assign homes and offices.

        ``household_size`` groups consecutive nodes into shared homes
        (1 = everyone lives alone).  ``contact_fraction`` is the mean
        fraction of a co-located hour two nodes actually spend within
        radio range (contact durations are Exp with that mean, capped
        at the hour).
        """
        if n < 2:
            raise ValueError("need at least 2 nodes")
        if num_offices < 1 or num_spots < 1:
            raise ValueError("need at least one office and one spot")
        if household_size < 1:
            raise ValueError("household_size must be >= 1")
        if not 0.0 <= meeting_prob <= 1.0 or not 0.0 <= evening_prob <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        if not 0.0 < contact_fraction <= 1.0:
            raise ValueError("contact_fraction must be in (0, 1]")
        self.n = int(n)
        self.num_offices = int(num_offices)
        self.num_spots = int(num_spots)
        self.meeting_prob = float(meeting_prob)
        self.evening_prob = float(evening_prob)
        self.contact_fraction = float(contact_fraction)
        self.name = name
        self.node_ids = list(range(self.n))
        rng = rng or np.random.default_rng()
        self.home = np.array([k // household_size for k in range(self.n)])
        self.office = rng.integers(0, self.num_offices, size=self.n)

    def household_of(self, node: int) -> int:
        return int(self.home[node])

    def office_of(self, node: int) -> int:
        return int(self.office[node])

    def _locations_at(self, hour_of_day: int, rng: np.random.Generator) -> np.ndarray:
        """Location token per node for one hour (-1 = travelling/alone)."""
        locations = np.full(self.n, -1, dtype=np.int64)
        if hour_of_day <= 7 or hour_of_day >= 22:
            locations = 1_000_000 + self.home
        elif 9 <= hour_of_day <= 16:
            locations = 2_000_000 + self.office
            meeting = rng.random(self.n) < self.meeting_prob
            if meeting.any():
                spots = rng.integers(0, self.num_spots, size=int(meeting.sum()))
                locations[meeting] = 3_000_000 + spots
        elif 18 <= hour_of_day <= 21:
            out = rng.random(self.n) < self.evening_prob
            locations = 1_000_000 + self.home
            if out.any():
                spots = rng.integers(0, self.num_spots, size=int(out.sum()))
                locations[out] = 3_000_000 + spots
        return locations

    def generate(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        """Generate a trace over ``[0, duration]`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        num_hours = int(duration // HOUR)
        contacts: list[Contact] = []
        mean_len = self.contact_fraction * HOUR
        for hour_index in range(num_hours):
            hour_of_day = hour_index % 24
            locations = self._locations_at(hour_of_day, rng)
            slot_start = hour_index * HOUR
            by_place: dict[int, list[int]] = {}
            for node, place in enumerate(locations):
                if place >= 0:
                    by_place.setdefault(int(place), []).append(node)
            for members in by_place.values():
                if len(members) < 2:
                    continue
                for i, a in enumerate(members):
                    for b in members[i + 1 :]:
                        offset = rng.uniform(0.0, 0.5 * HOUR)
                        length = min(
                            float(rng.exponential(mean_len)), HOUR - offset
                        )
                        if length <= 0:
                            continue
                        start = slot_start + offset
                        end = min(start + length, slot_start + HOUR, duration)
                        if end > start:
                            contacts.append(Contact.make(a, b, start, end))
        return ContactTrace(contacts, node_ids=self.node_ids, name=self.name)

    def generate_chunks(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield the trace as lexsorted ``(start, end, a, b)`` blocks.

        The per-pair ``uniform``/``exponential`` draws interleave in the
        exact loop order of :meth:`generate` (they cannot be batched
        without changing the stream), but rows are buffered into arrays
        and flushed at hour boundaries, so no :class:`Contact` objects
        are built.  Bit-identical to the object path per seed.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if chunk_contacts < 1:
            raise ValueError("chunk_contacts must be positive")
        num_hours = int(duration // HOUR)
        mean_len = self.contact_fraction * HOUR
        buf_s: list[float] = []
        buf_e: list[float] = []
        buf_a: list[int] = []
        buf_b: list[int] = []
        for hour_index in range(num_hours):
            hour_of_day = hour_index % 24
            locations = self._locations_at(hour_of_day, rng)
            slot_start = hour_index * HOUR
            by_place: dict[int, list[int]] = {}
            for node, place in enumerate(locations):
                if place >= 0:
                    by_place.setdefault(int(place), []).append(node)
            for members in by_place.values():
                if len(members) < 2:
                    continue
                for i, a in enumerate(members):
                    for b in members[i + 1 :]:
                        offset = rng.uniform(0.0, 0.5 * HOUR)
                        length = min(
                            float(rng.exponential(mean_len)), HOUR - offset
                        )
                        if length <= 0:
                            continue
                        start = slot_start + offset
                        end = min(start + length, slot_start + HOUR, duration)
                        if end > start:
                            buf_s.append(start)
                            buf_e.append(end)
                            buf_a.append(a)
                            buf_b.append(b)
            if len(buf_s) >= chunk_contacts:
                yield _sorted_block(buf_s, buf_e, buf_a, buf_b)
                buf_s, buf_e, buf_a, buf_b = [], [], [], []
        if buf_s:
            yield _sorted_block(buf_s, buf_e, buf_a, buf_b)

    def generate_arrays(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> ContactArrays:
        """Chunked generation assembled into a :class:`ContactArrays`.

        A pair co-located in consecutive hours can (measure-zero offset
        draw) produce touching intervals across blocks, so assembly
        keeps the merge pass on, matching :class:`ContactTrace`.
        """
        return ContactArrays.from_blocks(
            self.generate_chunks(duration, rng, chunk_contacts=chunk_contacts),
            node_ids=self.node_ids,
            name=self.name,
            merge_overlaps=True,
        )


def _sorted_block(
    buf_s: list[float], buf_e: list[float], buf_a: list[int], buf_b: list[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    s = np.asarray(buf_s, dtype=np.float64)
    e = np.asarray(buf_e, dtype=np.float64)
    a = np.asarray(buf_a, dtype=np.int64)
    b = np.asarray(buf_b, dtype=np.int64)
    order = np.lexsort((b, a, e, s))
    return s[order], e[order], a[order], b[order]
