"""Heterogeneous pairwise-Poisson contact generation.

The analytical core of the paper assumes pairwise inter-contact times
are exponentially distributed with per-pair rates ``lambda_ij`` -- the
standard empirical fit for the tail of the CRAWDAD traces it evaluates
on.  This module generates traces directly from that model:

1. build a symmetric rate matrix (homogeneous, gamma-heterogeneous or
   community-structured);
2. for every pair with a positive rate, draw a Poisson process of
   contact start times over the horizon and attach contact durations.

Because the generated process matches the model the scheme's analysis
assumes, analytical predictions (replication factors, freshness
probabilities) can be validated exactly against these traces.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.mobility.arrays import ContactArrays
from repro.mobility.trace import Contact, ContactTrace

#: Default block size (contacts) for the chunked generators.
DEFAULT_CHUNK_CONTACTS = 262_144

#: When True (default), trace generation assembles each pair's contacts
#: with numpy mask/array operations; the scalar per-contact loop is kept
#: as the reference path.  Both paths consume the RNG identically, so
#: traces are bit-identical per seed either way (tested on every
#: calibration profile).
VECTORISED_GENERATION = True


def homogeneous_rate_matrix(n: int, rate: float) -> np.ndarray:
    """All pairs meet at the same ``rate`` (contacts per second)."""
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if rate < 0:
        raise ValueError("rate must be non-negative")
    matrix = np.full((n, n), float(rate))
    np.fill_diagonal(matrix, 0.0)
    return matrix


def gamma_rate_matrix(
    n: int,
    mean_rate: float,
    shape: float,
    rng: np.random.Generator,
    sparsity: float = 0.0,
) -> np.ndarray:
    """Pairwise rates drawn i.i.d. from Gamma(shape, mean_rate/shape).

    ``shape`` controls heterogeneity: small shape gives a heavy spread of
    rates (a few strong pairs, many weak ones), which is what real
    human-contact traces exhibit.  ``sparsity`` zeroes that fraction of
    pairs entirely (pairs that never meet).
    """
    if mean_rate <= 0 or shape <= 0:
        raise ValueError("mean_rate and shape must be positive")
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    matrix = np.zeros((n, n))
    iu = np.triu_indices(n, k=1)
    num_pairs = len(iu[0])
    rates = rng.gamma(shape, mean_rate / shape, size=num_pairs)
    if sparsity > 0:
        mask = rng.random(num_pairs) < sparsity
        rates[mask] = 0.0
    matrix[iu] = rates
    matrix += matrix.T
    return matrix


def community_rate_matrix(
    n: int,
    num_communities: int,
    intra_rate: float,
    inter_rate: float,
    rng: np.random.Generator,
    hub_fraction: float = 0.1,
    hub_multiplier: float = 4.0,
    jitter_shape: float = 2.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Community-structured rates: dense inside, sparse across.

    A ``hub_fraction`` of nodes are hubs whose rates to *everyone* are
    multiplied by ``hub_multiplier`` -- these model the socially central
    people whose devices the NCL-selection metric discovers.  Per-pair
    gamma jitter (shape ``jitter_shape``, mean 1) keeps pairs distinct.

    Returns ``(rates, membership)`` where ``membership[i]`` is node i's
    community index.
    """
    if num_communities < 1 or num_communities > n:
        raise ValueError("num_communities must be in [1, n]")
    membership = rng.integers(0, num_communities, size=n)
    base = np.where(
        membership[:, None] == membership[None, :], float(intra_rate), float(inter_rate)
    )
    num_hubs = max(1, int(round(hub_fraction * n))) if hub_fraction > 0 else 0
    if num_hubs:
        hubs = rng.choice(n, size=num_hubs, replace=False)
        boost = np.ones(n)
        boost[hubs] = hub_multiplier
        base = base * np.sqrt(np.outer(boost, boost))
    jitter = rng.gamma(jitter_shape, 1.0 / jitter_shape, size=(n, n))
    jitter = np.triu(jitter, k=1)
    jitter += jitter.T
    rates = base * jitter
    np.fill_diagonal(rates, 0.0)
    return rates, membership


class PoissonContactModel:
    """Generates a :class:`ContactTrace` from a pairwise rate matrix.

    Contact start times per pair form a Poisson process with the pair's
    rate; contact durations are exponential with ``mean_duration``
    (truncated so contacts never outlive the horizon).  Rates are
    interpreted as *contact initiation* rates; for mean durations much
    shorter than mean inter-contacts this coincides with the usual
    inter-contact rate to first order.
    """

    def __init__(
        self,
        rates: np.ndarray,
        mean_duration: float = 120.0,
        node_ids: Optional[list[int]] = None,
        name: str = "poisson",
    ) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
            raise ValueError("rates must be a square matrix")
        if not np.allclose(rates, rates.T):
            raise ValueError("rates must be symmetric")
        if (rates < 0).any():
            raise ValueError("rates must be non-negative")
        if mean_duration <= 0:
            raise ValueError("mean_duration must be positive")
        self.rates = rates
        self.mean_duration = float(mean_duration)
        n = rates.shape[0]
        self.node_ids = list(range(n)) if node_ids is None else [int(i) for i in node_ids]
        if len(self.node_ids) != n:
            raise ValueError("node_ids length must match rate matrix")
        self.name = name

    def generate(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        """Generate a trace over ``[0, duration]`` seconds.

        Per pair, draws the contact count, then uniform order statistics
        for the start times and exponential durations -- equivalent to
        simulating the Poisson process, one vector op per quantity.  The
        per-pair draw sequence (poisson, uniforms, exponentials) is the
        RNG substream contract: both the vectorised and the scalar
        assembly below consume it identically, so traces are
        bit-identical per seed.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not VECTORISED_GENERATION:
            return self._generate_scalar(duration, rng)
        n = self.rates.shape[0]
        mean_duration = self.mean_duration
        node_ids = self.node_ids
        contacts: list[Contact] = []
        append = contacts.append
        for i in range(n):
            row = self.rates[i]
            a_id = node_ids[i]
            for j in range(i + 1, n):
                rate = row[j]
                if rate <= 0:
                    continue
                count = rng.poisson(rate * duration)
                if count == 0:
                    continue
                starts = np.sort(rng.random(count)) * duration
                lengths = rng.exponential(mean_duration, size=count)
                ends = np.minimum(starts + lengths, duration)
                keep = ends > starts
                a, b = a_id, node_ids[j]
                if a > b:
                    a, b = b, a
                for s, e in zip(starts[keep].tolist(), ends[keep].tolist()):
                    append(Contact(s, e, a, b))
        return ContactTrace(contacts, node_ids=self.node_ids, name=self.name)

    def _generate_scalar(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        """Reference scalar assembly (pre-vectorisation), kept for the
        bit-identity tests and the ``repro bench`` comparison."""
        n = self.rates.shape[0]
        contacts: list[Contact] = []
        for i in range(n):
            for j in range(i + 1, n):
                rate = self.rates[i, j]
                if rate <= 0:
                    continue
                expected = rate * duration
                count = rng.poisson(expected)
                if count == 0:
                    continue
                starts = np.sort(rng.random(count)) * duration
                lengths = rng.exponential(self.mean_duration, size=count)
                ends = np.minimum(starts + lengths, duration)
                a, b = self.node_ids[i], self.node_ids[j]
                for s, e in zip(starts, ends):
                    if e > s:
                        contacts.append(Contact.make(a, b, s, e))
        return ContactTrace(contacts, node_ids=self.node_ids, name=self.name)

    def generate_chunks(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield the trace as lexsorted ``(start, end, a, b)`` blocks.

        Streams the same trace :meth:`generate` builds -- the per-pair
        RNG draw sequence is identical, each pair's overlapping
        intervals are merged exactly like :class:`ContactTrace` does,
        and a pair never spans two blocks -- without materialising one
        :class:`Contact` object per row.  Assembling the blocks with
        :meth:`ContactArrays.from_blocks` therefore reproduces
        ``ContactArrays.from_trace(self.generate(...))`` bit for bit
        per seed (enforced by tests, including odd block sizes).
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if chunk_contacts < 1:
            raise ValueError("chunk_contacts must be positive")
        n = self.rates.shape[0]
        mean_duration = self.mean_duration
        node_ids = self.node_ids
        buf_s: list[np.ndarray] = []
        buf_e: list[np.ndarray] = []
        buf_a: list[int] = []
        buf_b: list[int] = []
        buf_counts: list[int] = []
        buffered = 0
        for i in range(n):
            row = self.rates[i]
            a_id = node_ids[i]
            for j in range(i + 1, n):
                rate = row[j]
                if rate <= 0:
                    continue
                count = rng.poisson(rate * duration)
                if count == 0:
                    continue
                starts = np.sort(rng.random(count)) * duration
                lengths = rng.exponential(mean_duration, size=count)
                ends = np.minimum(starts + lengths, duration)
                keep = ends > starts
                s = starts[keep]
                e = ends[keep]
                if not len(s):
                    continue
                s, e = _merge_sorted_intervals(s, e)
                a, b = a_id, node_ids[j]
                if a > b:
                    a, b = b, a
                buf_s.append(s)
                buf_e.append(e)
                buf_a.append(a)
                buf_b.append(b)
                buf_counts.append(len(s))
                buffered += len(s)
                if buffered >= chunk_contacts:
                    yield _flush_block(buf_s, buf_e, buf_a, buf_b, buf_counts)
                    buf_s, buf_e, buf_a, buf_b, buf_counts = [], [], [], [], []
                    buffered = 0
        if buffered:
            yield _flush_block(buf_s, buf_e, buf_a, buf_b, buf_counts)

    def generate_arrays(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> ContactArrays:
        """Chunked generation assembled into a :class:`ContactArrays`."""
        return ContactArrays.from_blocks(
            self.generate_chunks(duration, rng, chunk_contacts=chunk_contacts),
            node_ids=self.node_ids,
            name=self.name,
            merge_overlaps=False,
        )

    def expected_contacts(self, duration: float) -> float:
        """Expected total number of contacts over ``duration`` seconds."""
        return float(np.triu(self.rates, k=1).sum() * duration)


def _merge_sorted_intervals(s: np.ndarray, e: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge one pair's overlapping intervals (starts already ascending).

    Same rule as ``trace._merge_overlapping``: an interval starting at
    or before the running max end joins the open one.  Within one pair
    the global running max equals the per-group running max (a group
    break requires a start above every earlier end), so the cummax test
    is exact, not conservative.
    """
    if len(s) < 2:
        return s, e
    order = np.lexsort((e, s))
    s = s[order]
    e = e[order]
    cm = np.maximum.accumulate(e)
    brk = np.empty(len(s), dtype=bool)
    brk[0] = True
    brk[1:] = s[1:] > cm[:-1]
    if bool(brk.all()):
        return s, e
    first = np.nonzero(brk)[0]
    last = np.append(first[1:] - 1, len(s) - 1)
    return s[first], cm[last]


def _flush_block(
    buf_s: list[np.ndarray],
    buf_e: list[np.ndarray],
    buf_a: list[int],
    buf_b: list[int],
    buf_counts: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Assemble buffered per-pair runs into one lexsorted block."""
    s = np.concatenate(buf_s)
    e = np.concatenate(buf_e)
    counts = np.asarray(buf_counts)
    a = np.repeat(np.asarray(buf_a, dtype=np.int64), counts)
    b = np.repeat(np.asarray(buf_b, dtype=np.int64), counts)
    order = np.lexsort((b, a, e, s))
    return s[order], e[order], a[order], b[order]
