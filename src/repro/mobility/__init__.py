"""Mobility substrate: contact traces, generators, loaders, calibration.

The evaluation of the paper is trace-driven: everything above this layer
consumes a :class:`~repro.mobility.trace.ContactTrace` -- a time-ordered
list of pairwise contacts.  This package provides:

- :mod:`repro.mobility.trace` -- the trace data model and statistics.
- :mod:`repro.mobility.synthetic` -- heterogeneous pairwise-Poisson
  contact generators (the model the paper's analysis assumes).
- :mod:`repro.mobility.community` -- community-structured and diurnal
  generators in the spirit of HCMM.
- :mod:`repro.mobility.rwp` -- a spatial random-waypoint model that
  derives contacts from node positions.
- :mod:`repro.mobility.levy` -- a Levy-walk vehicular model with
  power-law flight lengths (registered as the ``vehicular`` profile).
- :mod:`repro.mobility.workingday` -- a behavioural model (homes,
  offices, meeting spots) whose contacts emerge from daily routines.
- :mod:`repro.mobility.loaders` -- parsers for on-disk trace formats
  (plain pairwise and ONE connectivity reports) so real CRAWDAD traces
  drop in.
- :mod:`repro.mobility.calibration` -- synthetic stand-ins calibrated to
  the published statistics of the traces the paper evaluates on.
"""

from repro.mobility.trace import Contact, ContactTrace, TraceStats
from repro.mobility.arrays import ContactArrays
from repro.mobility.synthetic import (
    PoissonContactModel,
    community_rate_matrix,
    gamma_rate_matrix,
    homogeneous_rate_matrix,
)
from repro.mobility.community import CommunityModel, DiurnalModel
from repro.mobility.levy import LevyWalkModel, truncated_pareto
from repro.mobility.rwp import RandomWaypointModel
from repro.mobility.workingday import WorkingDayModel
from repro.mobility.loaders import (
    load_one_report,
    load_pairwise,
    write_pairwise,
)
from repro.mobility.calibration import TraceProfile, get_profile, list_profiles

__all__ = [
    "CommunityModel",
    "Contact",
    "ContactArrays",
    "ContactTrace",
    "DiurnalModel",
    "LevyWalkModel",
    "PoissonContactModel",
    "RandomWaypointModel",
    "TraceProfile",
    "TraceStats",
    "WorkingDayModel",
    "community_rate_matrix",
    "gamma_rate_matrix",
    "get_profile",
    "homogeneous_rate_matrix",
    "list_profiles",
    "load_one_report",
    "load_pairwise",
    "truncated_pareto",
    "write_pairwise",
]
