"""On-disk trace formats.

Two reader formats are supported so that real CRAWDAD traces drop into
the pipeline unchanged:

- **pairwise** -- whitespace-separated ``node_a node_b start end`` lines
  (the format the Haggle/Reality contact dumps are usually distributed
  in); ``#`` comments and blank lines are ignored.
- **ONE connectivity reports** -- lines of the form
  ``<time> CONN <a> <b> up|down`` produced by the ONE simulator.

``write_pairwise`` round-trips a trace to the pairwise format.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, TextIO, Union

from repro.mobility.trace import Contact, ContactTrace

PathOrFile = Union[str, Path, TextIO]


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def load_pairwise(
    source: PathOrFile,
    name: Optional[str] = None,
    time_scale: float = 1.0,
) -> ContactTrace:
    """Load a pairwise-format trace.

    ``time_scale`` multiplies the timestamps, e.g. pass ``3600`` for a
    file whose times are in hours.
    """
    handle, should_close = _open_for_read(source)
    contacts: list[Contact] = []
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(
                    f"line {lineno}: expected 'a b start end', got {line!r}"
                )
            a, b = int(parts[0]), int(parts[1])
            start, end = float(parts[2]) * time_scale, float(parts[3]) * time_scale
            contacts.append(Contact.make(a, b, start, end))
    finally:
        if should_close:
            handle.close()
    trace_name = name or (str(source) if isinstance(source, (str, Path)) else "pairwise")
    return ContactTrace(contacts, name=trace_name)


def load_one_report(
    source: PathOrFile,
    name: Optional[str] = None,
) -> ContactTrace:
    """Load a ONE-simulator connectivity report (``CONN up/down`` events).

    An ``up`` without a matching ``down`` is closed at the last event
    time in the file.  Node tokens may be bare integers or carry a
    non-numeric prefix (e.g. ``n17``), which is stripped.
    """
    handle, should_close = _open_for_read(source)
    open_since: dict[tuple[int, int], float] = {}
    contacts: list[Contact] = []
    last_time = 0.0
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 5 or parts[1].upper() != "CONN":
                raise ValueError(
                    f"line {lineno}: expected '<time> CONN <a> <b> up|down', got {line!r}"
                )
            time = float(parts[0])
            a, b = _parse_node(parts[2]), _parse_node(parts[3])
            state = parts[4].lower()
            if a > b:
                a, b = b, a
            last_time = max(last_time, time)
            if state == "up":
                open_since.setdefault((a, b), time)
            elif state == "down":
                start = open_since.pop((a, b), None)
                if start is not None and time > start:
                    contacts.append(Contact.make(a, b, start, time))
            else:
                raise ValueError(f"line {lineno}: unknown state {state!r}")
    finally:
        if should_close:
            handle.close()
    for (a, b), start in open_since.items():
        if last_time > start:
            contacts.append(Contact.make(a, b, start, last_time))
    trace_name = name or (str(source) if isinstance(source, (str, Path)) else "one-report")
    return ContactTrace(contacts, name=trace_name)


def _parse_node(token: str) -> int:
    digits = "".join(ch for ch in token if ch.isdigit())
    if not digits:
        raise ValueError(f"node token {token!r} has no numeric id")
    return int(digits)


def write_pairwise(trace: ContactTrace, target: PathOrFile) -> None:
    """Write ``trace`` in the pairwise format (sorted, one contact/line)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write_pairwise(trace, handle)
    else:
        _write_pairwise(trace, target)


def _write_pairwise(trace: ContactTrace, handle: TextIO) -> None:
    handle.write(f"# trace: {trace.name}\n")
    handle.write(f"# nodes: {trace.num_nodes} contacts: {len(trace)}\n")
    for c in trace:
        handle.write(f"{c.a} {c.b} {c.start:.3f} {c.end:.3f}\n")


def loads_pairwise(text: str, name: str = "pairwise") -> ContactTrace:
    """Parse pairwise-format trace from a string (tests convenience)."""
    return load_pairwise(io.StringIO(text), name=name)
