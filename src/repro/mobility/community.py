"""Community-structured and diurnal contact models.

Human contact traces show two structures beyond pairwise heterogeneity:

- **communities** -- groups (labs, classes, households) whose members
  meet each other far more often than outsiders, plus a few socially
  central "hub" people; and
- **diurnal rhythm** -- contact activity follows the day/night cycle.

:class:`CommunityModel` composes the community rate matrix of
:mod:`repro.mobility.synthetic` with the Poisson generator.
:class:`DiurnalModel` wraps any rate matrix in an inhomogeneous Poisson
process via thinning, modulated by a 24-hour activity profile.  These
are the HCMM-flavoured generators used by the calibrated trace profiles.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.mobility import synthetic
from repro.mobility.arrays import ContactArrays
from repro.mobility.synthetic import (
    DEFAULT_CHUNK_CONTACTS,
    PoissonContactModel,
    community_rate_matrix,
)
from repro.mobility.trace import Contact, ContactTrace

#: Default 24-hour activity profile (fraction of peak rate per hour),
#: low overnight, peaks mid-morning and mid-afternoon.
DEFAULT_ACTIVITY = (
    0.05, 0.03, 0.02, 0.02, 0.03, 0.08,  # 00-05
    0.20, 0.50, 0.90, 1.00, 0.95, 0.85,  # 06-11
    0.90, 0.95, 1.00, 0.95, 0.85, 0.70,  # 12-17
    0.55, 0.45, 0.35, 0.25, 0.15, 0.08,  # 18-23
)


class CommunityModel:
    """Community-structured heterogeneous Poisson contact generator."""

    def __init__(
        self,
        n: int,
        num_communities: int,
        intra_rate: float,
        inter_rate: float,
        rng: np.random.Generator,
        mean_duration: float = 300.0,
        hub_fraction: float = 0.1,
        hub_multiplier: float = 4.0,
        name: str = "community",
    ) -> None:
        self.rates, self.membership = community_rate_matrix(
            n,
            num_communities,
            intra_rate,
            inter_rate,
            rng,
            hub_fraction=hub_fraction,
            hub_multiplier=hub_multiplier,
        )
        self.mean_duration = float(mean_duration)
        self._model = PoissonContactModel(self.rates, mean_duration=mean_duration, name=name)
        self.name = name

    @property
    def node_ids(self) -> list[int]:
        return self._model.node_ids

    def generate(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        return self._model.generate(duration, rng)

    def generate_chunks(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Chunked generation (see :meth:`PoissonContactModel.generate_chunks`)."""
        return self._model.generate_chunks(duration, rng, chunk_contacts=chunk_contacts)

    def generate_arrays(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> ContactArrays:
        return self._model.generate_arrays(duration, rng, chunk_contacts=chunk_contacts)

    def community_of(self, node_id: int) -> int:
        return int(self.membership[node_id])


class DiurnalModel:
    """Inhomogeneous Poisson contacts: base rates x time-of-day activity.

    Generation uses thinning: candidate contacts are drawn at the peak
    rate and kept with probability equal to the activity level at their
    start time.  The activity profile is a sequence of per-hour
    multipliers in [0, 1] (length 24), repeated over the horizon.
    """

    def __init__(
        self,
        rates: np.ndarray,
        activity: Sequence[float] = DEFAULT_ACTIVITY,
        mean_duration: float = 300.0,
        node_ids: Optional[list[int]] = None,
        name: str = "diurnal",
    ) -> None:
        if len(activity) != 24:
            raise ValueError("activity profile must have 24 hourly values")
        activity_arr = np.asarray(activity, dtype=float)
        if (activity_arr < 0).any() or (activity_arr > 1).any():
            raise ValueError("activity values must be in [0, 1]")
        self.activity = activity_arr
        self._peak_model = PoissonContactModel(
            np.asarray(rates, dtype=float), mean_duration=mean_duration,
            node_ids=node_ids, name=name,
        )
        self.name = name

    @property
    def node_ids(self) -> list[int]:
        return self._peak_model.node_ids

    def activity_at(self, time: float) -> float:
        """Activity multiplier at absolute time ``time`` (seconds)."""
        hour = int(time // 3600) % 24
        return float(self.activity[hour])

    def generate(self, duration: float, rng: np.random.Generator) -> ContactTrace:
        """Thin the peak-rate candidate trace by time-of-day activity.

        One uniform is drawn per candidate contact, in trace order --
        the batched draw consumes the RNG stream exactly like the scalar
        per-contact draw, so both paths keep the same contacts.
        """
        candidate = self._peak_model.generate(duration, rng)
        m = len(candidate)
        if not synthetic.VECTORISED_GENERATION:
            kept: list[Contact] = []
            for c in candidate:
                if rng.random() < self.activity_at(c.start):
                    kept.append(c)
        elif m:
            u = rng.random(m)
            starts = np.fromiter(
                (c.start for c in candidate), dtype=float, count=m
            )
            hours = (starts // 3600.0).astype(np.int64) % 24
            keep = u < self.activity[hours]
            kept = [c for c, k in zip(candidate.contacts, keep.tolist()) if k]
        else:
            kept = []
        return ContactTrace(kept, node_ids=self.node_ids, name=self.name)

    def generate_chunks(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Chunked thinned generation, bit-identical to :meth:`generate`.

        The RNG contract requires every candidate draw to happen before
        any thinning uniform, and the uniforms to be consumed in global
        trace order -- so the candidate blocks are generated first,
        assembled sorted, and then thinned slice by slice (consecutive
        ``rng.random(k)`` calls read the same stream as one big draw).
        """
        candidate = ContactArrays.from_blocks(
            self._peak_model.generate_chunks(duration, rng, chunk_contacts=chunk_contacts),
            node_ids=self.node_ids,
            name=self.name,
            merge_overlaps=False,
        )
        m = len(candidate)
        for lo in range(0, m, chunk_contacts):
            hi = min(lo + chunk_contacts, m)
            starts = candidate.start[lo:hi]
            u = rng.random(hi - lo)
            hours = (starts // 3600.0).astype(np.int64) % 24
            keep = u < self.activity[hours]
            yield (
                starts[keep],
                candidate.end[lo:hi][keep],
                candidate.a[lo:hi][keep],
                candidate.b[lo:hi][keep],
            )

    def generate_arrays(
        self,
        duration: float,
        rng: np.random.Generator,
        chunk_contacts: int = DEFAULT_CHUNK_CONTACTS,
    ) -> ContactArrays:
        return ContactArrays.from_blocks(
            self.generate_chunks(duration, rng, chunk_contacts=chunk_contacts),
            node_ids=self.node_ids,
            name=self.name,
            merge_overlaps=False,
        )

    def effective_mean_activity(self) -> float:
        """Average of the activity profile (thinning acceptance rate)."""
        return float(self.activity.mean())
