"""Calibrated synthetic stand-ins for the paper's evaluation traces.

The paper evaluates on real CRAWDAD traces (the *MIT Reality* Bluetooth
trace and the *Haggle Infocom06* conference trace).  Those datasets are
not redistributable with this repository, so each is replaced by a
synthetic profile whose generator is matched to the published shape of
the original:

- the same node count,
- community structure with a small fraction of socially central hubs
  (the structure NCL selection exploits),
- heterogeneous pairwise contact rates tuned to the published per-node
  contact frequency (Reality: a handful of contacts per node per day
  over months; Infocom06: tens of contacts per node per day over ~4
  conference days),
- a diurnal activity cycle.

Because the schemes consume only the contact process, and the paper's
own analysis models inter-contacts as pairwise exponential, these
profiles exercise exactly the code paths the real traces would.  Loaders
in :mod:`repro.mobility.loaders` accept the real traces when available.

Durations: the Reality deployment ran ~9 months; simulating that adds
nothing once metrics stabilise, so the profile's *default* horizon is 21
days (every experiment accepts an explicit horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mobility.community import DEFAULT_ACTIVITY, CommunityModel, DiurnalModel
from repro.mobility.levy import LevyWalkModel
from repro.mobility.trace import ContactTrace

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class TraceProfile:
    """A named, calibrated trace generator."""

    name: str
    description: str
    num_nodes: int
    default_duration: float
    make_model: Callable[[np.random.Generator], object]
    diurnal: bool = True

    def generate(self, rng: np.random.Generator, duration: float | None = None) -> ContactTrace:
        """Build the model and generate one trace realisation."""
        horizon = self.default_duration if duration is None else float(duration)
        model = self.make_model(rng)
        if self.diurnal:
            model = DiurnalModel(
                model.rates,
                activity=DEFAULT_ACTIVITY,
                mean_duration=model.mean_duration,
                name=self.name,
            )
        trace = model.generate(horizon, rng)
        trace.name = self.name
        return trace


def _reality_model(rng: np.random.Generator) -> CommunityModel:
    return CommunityModel(
        n=97,
        num_communities=8,
        intra_rate=2.0e-5,    # ~1.7 contacts/day per intra-community pair at peak
        inter_rate=2.0e-6,    # sparse cross-community contacts (~0.17/day/pair)
        rng=rng,
        mean_duration=300.0,  # 5-minute Bluetooth sightings
        hub_fraction=0.08,
        hub_multiplier=5.0,
        name="reality",
    )


def _infocom06_model(rng: np.random.Generator) -> CommunityModel:
    return CommunityModel(
        n=78,
        num_communities=4,
        intra_rate=6.0e-5,   # dense conference mixing within groups
        inter_rate=1.0e-5,   # frequent cross-group hallway contacts
        rng=rng,
        mean_duration=180.0,
        hub_fraction=0.10,
        hub_multiplier=3.0,
        name="infocom06",
    )


def _vehicular_model(rng: np.random.Generator) -> LevyWalkModel:
    # rng is unused at construction: LevyWalkModel draws all randomness
    # inside generate(), like the spatial RWP model.
    return LevyWalkModel(
        n=40,
        area=3000.0,
        radio_range=100.0,    # DSRC-ish reach
        alpha=1.2,            # heavy vehicular flight tail
        beta=1.6,
        flight_min=50.0,
        pause_min=30.0,
        pause_max=1800.0,     # parked up to 30 min
        speed_min=2.0,
        speed_max=20.0,       # ~70 km/h ceiling
        speed_scale=0.8,
        speed_exponent=0.5,
        sample_interval=15.0,
        name="vehicular",
    )


def _small_model(rng: np.random.Generator) -> CommunityModel:
    return CommunityModel(
        n=20,
        num_communities=2,
        intra_rate=4.0e-4,
        inter_rate=5.0e-5,
        rng=rng,
        mean_duration=120.0,
        hub_fraction=0.15,
        hub_multiplier=3.0,
        name="small",
    )


_PROFILES: dict[str, TraceProfile] = {
    "reality": TraceProfile(
        name="reality",
        description=(
            "Synthetic stand-in for the MIT Reality Bluetooth trace: 97 nodes, "
            "8 communities, sparse cross-community contacts, diurnal cycle."
        ),
        num_nodes=97,
        default_duration=21 * DAY,
        make_model=_reality_model,
    ),
    "infocom06": TraceProfile(
        name="infocom06",
        description=(
            "Synthetic stand-in for the Haggle Infocom06 conference trace: 78 "
            "nodes, dense mixing, 4-day horizon, diurnal cycle."
        ),
        num_nodes=78,
        default_duration=4 * DAY,
        make_model=_infocom06_model,
    ),
    "small": TraceProfile(
        name="small",
        description="20-node dense community trace for tests and quick demos.",
        num_nodes=20,
        default_duration=2 * DAY,
        make_model=_small_model,
    ),
    "vehicular": TraceProfile(
        name="vehicular",
        description=(
            "Levy-walk vehicular trace: 40 nodes on a 3 km arena with "
            "power-law flight lengths and length-coupled speeds. Spatial, "
            "so no diurnal thinning (the walk itself sets the tempo)."
        ),
        num_nodes=40,
        default_duration=2 * DAY,
        make_model=_vehicular_model,
        diurnal=False,
    ),
}


def get_profile(name: str) -> TraceProfile:
    """Look up a calibrated profile by name (raises ``KeyError`` listing options)."""
    if name not in _PROFILES:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(_PROFILES)}")
    return _PROFILES[name]


def list_profiles() -> list[str]:
    """Names of all calibrated profiles."""
    return sorted(_PROFILES)
