"""Shared experiment settings.

Defaults mirror the reconstructed paper setup (see DESIGN.md section 4):
the Reality-calibrated trace, 12 caching nodes, a 6-hour refresh
interval, a 0.9 freshness requirement, and Zipf(0.8) queries.  The
``fast()`` preset shrinks the trace and replication count so the whole
suite runs in CI time; shapes are preserved, error bars are wider.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

HOUR = 3600.0
DAY = 86400.0


@dataclass(frozen=True)
class Settings:
    """Knobs shared by all experiments."""

    profile: str = "reality"
    duration: float = 21 * DAY
    seeds: tuple[int, ...] = (1, 2, 3)
    num_caching_nodes: int = 12
    num_items: int = 6
    num_sources: int = 2
    refresh_interval: float = 24 * HOUR
    freshness_requirement: float = 0.9
    lifetime_factor: float = 2.0  # lifetime = factor * refresh_interval
    item_size: int = 1024
    query_rate_per_day: float = 2.0  # queries per requester per day
    zipf_exponent: float = 0.8
    probe_interval: float = 30 * 60.0
    warmup_fraction: float = 0.1  # probes before this are discarded
    fanout: int = 3
    max_depth: int = 3
    max_relays: int = 5
    #: relative jitter on the refresh schedule: desynchronises the
    #: items' version bumps (and avoids probe aliasing artifacts)
    refresh_jitter: float = 0.25

    @property
    def lifetime(self) -> float:
        return self.lifetime_factor * self.refresh_interval

    @property
    def query_rate(self) -> float:
        """Per-requester query rate in 1/s."""
        return self.query_rate_per_day / DAY

    @classmethod
    def fast(cls) -> "Settings":
        """Scaled-down settings for CI benchmarks and tests."""
        return cls(
            profile="small",
            duration=3 * DAY,
            seeds=(1, 2),
            num_caching_nodes=5,
            num_items=4,
            num_sources=1,
            refresh_interval=3 * HOUR,
            probe_interval=20 * 60.0,
        )

    def with_(self, **overrides) -> "Settings":
        """A copy with some fields replaced."""
        return replace(self, **overrides)

    def validate(self) -> "Settings":
        """Raise ``ValueError`` on any out-of-range knob.

        Called eagerly by the experiment runner before any worker is
        spawned, so a bad sweep fails immediately in the parent rather
        than as N tracebacks out of a process pool.  Returns ``self``
        so call sites can chain.
        """
        errors = []
        if self.duration <= 0:
            errors.append(f"duration must be positive, got {self.duration}")
        if not self.seeds:
            errors.append("seeds must be non-empty")
        for positive_int in ("num_caching_nodes", "num_items", "num_sources",
                             "item_size", "fanout", "max_depth", "max_relays"):
            value = getattr(self, positive_int)
            if value < 1:
                errors.append(f"{positive_int} must be >= 1, got {value}")
        for positive in ("refresh_interval", "probe_interval"):
            value = getattr(self, positive)
            if value <= 0:
                errors.append(f"{positive} must be positive, got {value}")
        for non_negative in ("query_rate_per_day", "zipf_exponent",
                             "refresh_jitter"):
            value = getattr(self, non_negative)
            if value < 0:
                errors.append(f"{non_negative} must be >= 0, got {value}")
        if not 0.0 < self.freshness_requirement <= 1.0:
            errors.append(
                "freshness_requirement must be in (0, 1], "
                f"got {self.freshness_requirement}"
            )
        if self.lifetime_factor <= 0:
            errors.append(
                f"lifetime_factor must be positive, got {self.lifetime_factor}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            errors.append(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if errors:
            raise ValueError("invalid experiment settings: " + "; ".join(errors))
        return self
