"""Shared experiment settings.

Defaults mirror the reconstructed paper setup (see DESIGN.md section 4):
the Reality-calibrated trace, 12 caching nodes, a 6-hour refresh
interval, a 0.9 freshness requirement, and Zipf(0.8) queries.  The
``fast()`` preset shrinks the trace and replication count so the whole
suite runs in CI time; shapes are preserved, error bars are wider.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

HOUR = 3600.0
DAY = 86400.0


@dataclass(frozen=True)
class Settings:
    """Knobs shared by all experiments."""

    profile: str = "reality"
    duration: float = 21 * DAY
    seeds: tuple[int, ...] = (1, 2, 3)
    num_caching_nodes: int = 12
    num_items: int = 6
    num_sources: int = 2
    refresh_interval: float = 24 * HOUR
    freshness_requirement: float = 0.9
    lifetime_factor: float = 2.0  # lifetime = factor * refresh_interval
    item_size: int = 1024
    query_rate_per_day: float = 2.0  # queries per requester per day
    zipf_exponent: float = 0.8
    probe_interval: float = 30 * 60.0
    warmup_fraction: float = 0.1  # probes before this are discarded
    fanout: int = 3
    max_depth: int = 3
    max_relays: int = 5
    #: relative jitter on the refresh schedule: desynchronises the
    #: items' version bumps (and avoids probe aliasing artifacts)
    refresh_jitter: float = 0.25

    @property
    def lifetime(self) -> float:
        return self.lifetime_factor * self.refresh_interval

    @property
    def query_rate(self) -> float:
        """Per-requester query rate in 1/s."""
        return self.query_rate_per_day / DAY

    @classmethod
    def fast(cls) -> "Settings":
        """Scaled-down settings for CI benchmarks and tests."""
        return cls(
            profile="small",
            duration=3 * DAY,
            seeds=(1, 2),
            num_caching_nodes=5,
            num_items=4,
            num_sources=1,
            refresh_interval=3 * HOUR,
            probe_interval=20 * 60.0,
        )

    def with_(self, **overrides) -> "Settings":
        """A copy with some fields replaced."""
        return replace(self, **overrides)
