"""E5 -- data access validity vs freshness requirement.

Sweeps the per-item freshness requirement p_req.  Three columns to
compare per requirement level:

1. **requested** -- the p_req handed to the provisioning analysis;
2. **planned** -- the analytical end-to-end delivery probability of the
   relay plans actually built (the analysis stops adding relays once the
   target is met, and caps at the relay budget when it is unreachable);
3. **achieved** -- the empirical on-time refresh ratio of the run.

HDR's achieved curve should track the planned curve, which rises with
(and is clipped against) the requested one -- that is the paper's
"analytically ensure that the freshness requirements are satisfied"
claim, within the budget.  Source-only has no provisioning knob, so its
curve is flat.  A second table shows the query-level effect: the
fraction of answered queries served fresh data.

HDR runs with an enlarged relay budget here (``max_relays=16``) so the
provisioning has headroom to respond to the requirement instead of
saturating at the default budget.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.tables import format_series
from repro.core.scheme import build_simulation, scheme_variant
from repro.experiments.config import Settings
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.experiments.runner import (
    ExperimentResult,
    analytic_on_time,
    choose_sources,
    make_catalog,
    make_trace,
)

TITLE = "Achieved refresh ratio and access validity vs freshness requirement"

REQUIREMENTS = [0.5, 0.7, 0.8, 0.9, 0.95]
FAST_REQUIREMENTS = [0.5, 0.8, 0.95]
HDR_HEADROOM_RELAYS = 16


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    requirements = FAST_REQUIREMENTS if settings.profile == "small" else REQUIREMENTS
    hdr = scheme_variant("hdr", max_relays=HDR_HEADROOM_RELAYS, name="hdr")
    schemes = {"hdr": hdr, "source": "source", "flooding": "flooding"}

    on_time: dict[str, list[float]] = {name: [] for name in schemes}
    planned: list[float] = []
    query_fresh: dict[str, list[float]] = {name: [] for name in schemes}
    points = [
        SweepPoint(
            settings=settings.with_(freshness_requirement=p_req),
            schemes=tuple(schemes.values()),
            with_queries=True,
        )
        for p_req in requirements
    ]
    for p_req, results in zip(requirements, run_sweep(points, jobs=jobs)):
        sweep_settings = settings.with_(freshness_requirement=p_req)
        for name in schemes:
            on_time[name].append(
                round(summarize([m.on_time_ratio for m in results[name]]).mean, 4)
            )
            query_fresh[name].append(
                round(summarize([m.query_fresh_ratio for m in results[name]]).mean, 4)
            )
        # Analytical plan quality from one representative build.
        trace = make_trace(sweep_settings, sweep_settings.seeds[0])
        catalog = make_catalog(sweep_settings, choose_sources(trace, sweep_settings))
        runtime = build_simulation(
            trace, catalog, scheme=hdr,
            num_caching_nodes=sweep_settings.num_caching_nodes,
            seed=sweep_settings.seeds[0],
        )
        planned.append(round(analytic_on_time(runtime), 4))

    on_time_series = {
        "requested": list(requirements),
        "hdr.planned": planned,
        "hdr.achieved": on_time["hdr"],
        "source.achieved": on_time["source"],
        "flooding.achieved": on_time["flooding"],
    }
    text = "\n\n".join(
        [
            format_series("p_req", requirements, on_time_series,
                          title=f"{TITLE} -- on-time refresh ratio", precision=3),
            format_series(
                "p_req",
                requirements,
                {f"{name}.query_fresh": values for name, values in query_fresh.items()},
                title="fraction of answered queries served fresh data",
                precision=3,
            ),
        ]
    )
    return ExperimentResult(
        exp_id="E5",
        title=TITLE,
        text=text,
        data={
            "requirements": requirements,
            "on_time": on_time,
            "planned": planned,
            "query_fresh": query_fresh,
        },
        notes="hdr planned/achieved rise with the requested p_req; source is flat.",
    )
