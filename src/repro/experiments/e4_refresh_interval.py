"""E4 -- freshness vs refresh interval.

Sweeps the items' refresh interval: short intervals stress every scheme
(versions appear faster than contacts can carry them), long intervals
let even source-only keep up.  HDR should hold near flooding across the
sweep while source-only degrades sharply at short intervals.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.tables import format_series
from repro.experiments.config import HOUR, Settings
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.experiments.runner import ExperimentResult

TITLE = "Time-averaged cache freshness vs refresh interval"

SCHEMES = ["hdr", "flooding", "flat", "source"]
INTERVALS_H = [6.0, 12.0, 24.0, 48.0, 72.0]
FAST_INTERVALS_H = [2.0, 6.0, 12.0]


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    intervals = FAST_INTERVALS_H if settings.profile == "small" else INTERVALS_H
    series: dict[str, list[float]] = {name: [] for name in SCHEMES}
    spread: dict[str, list[float]] = {name: [] for name in SCHEMES}
    points = [
        SweepPoint(
            settings=settings.with_(refresh_interval=hours * HOUR),
            schemes=tuple(SCHEMES),
        )
        for hours in intervals
    ]
    for results in run_sweep(points, jobs=jobs):
        for name in SCHEMES:
            summary = summarize([m.freshness for m in results[name]])
            series[name].append(round(summary.mean, 4))
            spread[name].append(round(summary.ci95, 4))
    text = format_series("interval_h", intervals, series, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E4",
        title=TITLE,
        text=text,
        data={"intervals_h": intervals, "series": series, "ci95": spread},
        notes="Freshness rises with the interval for every scheme; the "
        "hdr-vs-source gap is widest at short intervals.",
    )
