"""E1 -- trace statistics table (paper's Table 1, reconstructed).

One row per evaluation trace: node count, horizon, contact counts and
inter-contact statistics.  Uses each profile's own default horizon (the
shape the calibration targets), one realisation per profile.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.config import Settings
from repro.experiments.runner import ExperimentResult
from repro.mobility.calibration import get_profile

TITLE = "Trace statistics (synthetic stand-ins calibrated to CRAWDAD traces)"


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    profiles = ["reality", "infocom06"] if settings.profile != "small" else ["small"]
    rows = []
    data = {}
    for name in profiles:
        profile = get_profile(name)
        rng = np.random.default_rng(settings.seeds[0])
        trace = profile.generate(rng)
        stats = trace.stats()
        row = {"trace": name, **stats.as_row()}
        rows.append(row)
        data[name] = stats
    text = format_table(rows, title=TITLE, precision=2)
    return ExperimentResult(
        exp_id="E1",
        title=TITLE,
        text=text,
        data=data,
        notes=(
            "Real CRAWDAD traces load via repro.mobility.loaders and produce "
            "the same row format."
        ),
    )
