"""Parallel experiment execution.

Every experiment decomposes into independent ``(seed, scheme,
sweep-point)`` simulation jobs -- the classic embarrassingly-parallel
sweep.  This module fans those jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
output **byte-identical to serial execution**:

* each job is a picklable spec executed by a module-level function, so
  a worker computes exactly what the serial loop would have computed;
* job ids enumerate the serial iteration order, and results are merged
  in job-id order (``ProcessPoolExecutor.map`` preserves input order),
  so the merged structure is indistinguishable from the serial one;
* all randomness is derived from seeds carried inside the specs --
  nothing depends on scheduling order or worker identity.

Worker count resolution (:func:`resolve_jobs`): an explicit ``jobs``
argument wins, then the ``REPRO_JOBS`` environment variable, then the
serial default of 1.  ``jobs=1`` bypasses the pool entirely -- no
subprocess, no pickling, just the plain loop.

The per-seed artifacts (trace, MLE rates, centrality ranking) are
computed once in the parent via :mod:`repro.experiments.artifacts` and
shipped to the workers inside the job spec, so no worker ever
regenerates a trace.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, TypeVar

from repro.experiments.artifacts import SeedArtifacts, cache_put, seed_artifacts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.caching.items import DataCatalog
    from repro.caching.onpath import OnPathConfig
    from repro.caching.placement import PlacementPolicy
    from repro.core.scheme import SchemeConfig
    from repro.experiments.config import Settings
    from repro.experiments.runner import RunMetrics
    from repro.faults.plan import FaultPlan
    from repro.workloads.cycles import QueryCycle

T = TypeVar("T")
R = TypeVar("R")

#: environment variable consulted when no explicit worker count is given
JOBS_ENV_VAR = "REPRO_JOBS"

#: ``jobs`` values meaning "one worker per CPU"
_AUTO_VALUES = {"auto", "max", "0", "-1"}


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``$REPRO_JOBS`` > 1.

    ``0``, ``-1`` or the strings ``auto``/``max`` (in the environment
    variable) select one worker per available CPU.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip().lower()
        if not raw:
            return 1
        if raw in _AUTO_VALUES:
            return os.cpu_count() or 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"invalid {JOBS_ENV_VAR}={raw!r}: expected an integer or 'auto'"
            ) from None
    if jobs in (0, -1):
        return os.cpu_count() or 1
    if jobs < -1:
        raise ValueError(f"invalid worker count {jobs}")
    return int(jobs)


def run_tasks(
    fn: Callable[[T], R],
    specs: Sequence[T],
    jobs: Optional[int] = None,
) -> list[R]:
    """Apply a picklable ``fn`` to every spec, optionally in parallel.

    The result list is in input order regardless of worker scheduling,
    so a parallel run merges identically to the serial loop.  With a
    resolved worker count of 1 (the default) the pool is bypassed
    entirely.

    Inside a :func:`repro.experiments.reliability.resilient_execution`
    block, execution routes through the fault-tolerant executor instead
    (same contract, plus retries, per-job timeouts, crashed-worker
    requeue and checkpoint/resume).
    """
    from repro.experiments import reliability

    context = reliability.current_context()
    if context is not None:
        return reliability.run_tasks_resilient(fn, specs, jobs=jobs,
                                               context=context)
    workers = resolve_jobs(jobs)
    specs = list(specs)
    if workers <= 1 or len(specs) <= 1:
        return [fn(spec) for spec in specs]
    workers = min(workers, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, specs, chunksize=1))


@dataclass(frozen=True)
class Job:
    """One picklable ``run_once`` invocation.

    ``job_id`` enumerates the serial iteration order; the merge sorts by
    it, which is what makes parallel output identical to serial.
    """

    job_id: int
    #: index of the sweep point this job belongs to (0 for flat runs)
    point: int
    seed: int
    scheme: "str | SchemeConfig"
    settings: "Settings"
    artifacts: SeedArtifacts
    catalog: "DataCatalog"
    with_queries: bool = False
    num_caching_nodes: Optional[int] = None
    #: JSONL trace file for this job, allocated by the parent's
    #: :class:`~repro.experiments.runner.TraceSink` (workers never see
    #: the parent's sink -- the path travels inside the spec)
    trace_path: Optional[str] = None
    #: fault plan resolved by the parent (workers never see the parent's
    #: :func:`~repro.experiments.runner.fault_injection` context -- like
    #: the trace path, the plan travels inside the spec)
    fault_plan: Optional["FaultPlan"] = None
    #: execution engine for this job ("object" or "soa")
    backend: str = "object"
    #: optional placement policy restricting replication
    placement: Optional["PlacementPolicy"] = None
    #: optional LCE/LCD on-path caching of responses
    onpath: Optional["OnPathConfig"] = None
    #: optional inhomogeneous query cycle (diurnal / flash crowd)
    cycle: Optional["QueryCycle"] = None


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: which schemes to run under which settings."""

    settings: "Settings"
    schemes: tuple = ()
    with_queries: bool = False
    num_caching_nodes: Optional[int] = None
    #: per-point fault plan; ``None`` falls back to the ambient
    #: :func:`~repro.experiments.runner.fault_injection` context
    fault_plan: Optional["FaultPlan"] = None
    #: execution engine ("object" or "soa"; soa has no query plane,
    #: faults, placement or on-path caching)
    backend: str = "object"
    #: optional placement policy restricting replication
    placement: Optional["PlacementPolicy"] = None
    #: optional LCE/LCD on-path caching (requires ``with_queries``)
    onpath: Optional["OnPathConfig"] = None
    #: optional inhomogeneous query cycle (requires ``with_queries``)
    cycle: Optional["QueryCycle"] = None


def execute_job(job: Job) -> "RunMetrics":
    """Run one job (in a worker or inline) and return its metrics."""
    from repro.experiments.runner import run_once

    # Seed the worker-local artifact cache so anything downstream that
    # asks for this seed's artifacts reuses the shipped copy.
    cache_put(job.artifacts)
    return run_once(
        job.artifacts.trace,
        job.scheme,
        job.settings,
        seed=job.seed,
        with_queries=job.with_queries,
        catalog=job.catalog,
        num_caching_nodes=job.num_caching_nodes,
        rates=job.artifacts.rates,
        trace_path=job.trace_path,
        fault_plan=job.fault_plan,
        backend=job.backend,
        placement=job.placement,
        onpath=job.onpath,
        cycle=job.cycle,
    )


def validate_points(points: Sequence[SweepPoint]) -> None:
    """Eagerly reject malformed sweep configuration.

    Runs in the parent **before** any worker spawns or artifact builds:
    a typo'd scheme name or a negative rate fails in milliseconds with a
    clear message instead of as N identical tracebacks out of a pool.
    """
    from repro.core.scheme import SCHEMES

    for point_index, point in enumerate(points):
        where = f"sweep point {point_index}"
        try:
            point.settings.validate()
        except ValueError as exc:
            raise ValueError(f"{where}: {exc}") from None
        if not point.schemes:
            raise ValueError(f"{where}: no schemes to run")
        for scheme in point.schemes:
            if isinstance(scheme, str) and scheme not in SCHEMES:
                known = ", ".join(sorted(SCHEMES))
                raise ValueError(
                    f"{where}: unknown scheme {scheme!r} (known: {known})"
                )
        if (point.num_caching_nodes is not None
                and point.num_caching_nodes < 1):
            raise ValueError(
                f"{where}: num_caching_nodes must be >= 1, "
                f"got {point.num_caching_nodes}"
            )
        if point.fault_plan is not None:
            try:
                point.fault_plan.validate()
            except ValueError as exc:
                raise ValueError(f"{where}: invalid fault plan: {exc}") from None
        if point.backend not in ("object", "soa"):
            raise ValueError(
                f"{where}: unknown backend {point.backend!r} (object|soa)"
            )
        if point.backend == "soa":
            unsupported = [
                name
                for name, active in (
                    ("with_queries", point.with_queries),
                    ("fault_plan", point.fault_plan is not None),
                    ("placement", point.placement is not None),
                    ("onpath", point.onpath is not None),
                    ("cycle", point.cycle is not None),
                )
                if active
            ]
            if unsupported:
                raise ValueError(
                    f"{where}: the soa backend does not support "
                    f"{', '.join(unsupported)}"
                )
        if point.onpath is not None and not point.with_queries:
            raise ValueError(
                f"{where}: onpath caching requires with_queries=true"
            )
        if point.cycle is not None and not point.with_queries:
            raise ValueError(
                f"{where}: a query cycle requires with_queries=true"
            )


def build_jobs(points: Sequence[SweepPoint]) -> list[Job]:
    """Expand sweep points into the serial-order job list.

    Order is (point, seed, scheme) -- exactly the nesting of the serial
    loops in ``run_replicated`` and the per-experiment sweeps.  The
    whole sweep is validated eagerly first (:func:`validate_points`).
    """
    from repro.experiments import runner as runner_mod
    from repro.experiments.runner import make_catalog

    validate_points(points)
    # Allocate per-job trace files in the parent: the sink is a plain
    # module global and does not survive pickling into workers.  The
    # ambient fault plan resolves here for the same reason.
    sink = runner_mod._TRACE_SINK
    ambient_plan = runner_mod._FAULT_PLAN
    jobs: list[Job] = []
    job_id = 0
    for point_index, point in enumerate(points):
        settings = point.settings
        fault_plan = (
            point.fault_plan if point.fault_plan is not None else ambient_plan
        )
        for seed in settings.seeds:
            artifacts = seed_artifacts(settings, seed)
            catalog = make_catalog(settings, artifacts.sources(settings.num_sources))
            for scheme in point.schemes:
                trace_path = (
                    str(sink.allocate(point_index, seed, scheme))
                    if sink is not None
                    else None
                )
                jobs.append(
                    Job(
                        job_id=job_id,
                        point=point_index,
                        seed=seed,
                        scheme=scheme,
                        settings=settings,
                        artifacts=artifacts,
                        catalog=catalog,
                        with_queries=point.with_queries,
                        num_caching_nodes=point.num_caching_nodes,
                        trace_path=trace_path,
                        fault_plan=fault_plan,
                        backend=point.backend,
                        placement=point.placement,
                        onpath=point.onpath,
                        cycle=point.cycle,
                    )
                )
                job_id += 1
    return jobs


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
) -> list[dict[str, list["RunMetrics"]]]:
    """Run every (point, seed, scheme) job; one result dict per point.

    Each dict maps scheme name to the per-seed :class:`RunMetrics` list,
    in seed order -- the exact structure ``run_replicated`` builds
    serially.  Jobs a degraded resilient run gave up on (``None``
    results under ``on_failure="partial"``) are left out of the merge;
    the journal's manifest records which they were.
    """
    specs = build_jobs(points)
    metrics = run_tasks(execute_job, specs, jobs=jobs)
    merged: list[dict[str, list["RunMetrics"]]] = [{} for _ in points]
    for spec, result in zip(specs, metrics):
        if result is None:
            continue
        merged[spec.point].setdefault(result.scheme, []).append(result)
    return merged
