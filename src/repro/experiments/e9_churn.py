"""E9 -- robustness under caching-node churn (maintenance extension).

Caching devices power off and return.  The hierarchy is repaired on
every event (:mod:`repro.core.maintenance`): orphans re-attach
rate-aware, changed edges are re-provisioned.  The sweep varies the mean
node uptime and reports the time-averaged freshness over the *online*
caching nodes, plus the repair activity.

Expected shape: HDR degrades gracefully (repairs keep the tree usable);
flooding is structure-free and barely notices; source-only was never
relying on structure either, so the hdr-vs-source gap narrows but
persists.  This extends the paper's evaluation (its traces are fixed
populations); the mechanism is the "distributed maintenance" the title
refers to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary
from repro.analysis.tables import format_table
from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable
from repro.core.maintenance import ChurnProcess
from repro.core.scheme import build_simulation
from repro.experiments.artifacts import seed_artifacts
from repro.experiments.config import HOUR, Settings
from repro.experiments.parallel import run_tasks
from repro.experiments.runner import ExperimentResult, make_catalog
from repro.mobility.trace import ContactTrace

TITLE = "Cache freshness under caching-node churn"

SCHEMES = ["hdr", "flooding", "source"]
#: mean uptime before departure, in hours (inf = no churn)
UPTIMES_H = [math.inf, 72.0, 24.0, 8.0]
FAST_UPTIMES_H = [math.inf, 12.0, 4.0]
MEAN_DOWNTIME_FRACTION = 0.25  # downtime is a quarter of the uptime


@dataclass(frozen=True)
class _ChurnJob:
    """One (uptime, scheme, seed) churn simulation, picklable."""

    scheme: str
    seed: int
    uptime_h: float
    settings: Settings
    trace: ContactTrace
    rates: RateTable
    catalog: DataCatalog


def _churn_job(job: _ChurnJob) -> tuple[float, int, int]:
    """Worker: run one churn simulation, return (freshness, departures,
    reattachments)."""
    settings = job.settings
    runtime = build_simulation(
        job.trace, job.catalog, scheme=job.scheme,
        num_caching_nodes=settings.num_caching_nodes, rates=job.rates,
        seed=job.seed, refresh_jitter=settings.refresh_jitter,
    )
    runtime.install_freshness_probe(
        interval=settings.probe_interval, until=settings.duration
    )
    churn = None
    if math.isfinite(job.uptime_h):
        churn = ChurnProcess(
            runtime,
            leave_rate=1.0 / (job.uptime_h * HOUR),
            mean_downtime=MEAN_DOWNTIME_FRACTION * job.uptime_h * HOUR,
            rng=np.random.default_rng(job.seed * 131 + 7),
            until=settings.duration,
            managers=(
                None if runtime.config.structure in ("tree", "star") else {}
            ),
        )
        churn.install()
    runtime.run(until=settings.duration)
    fresh = freshness_summary(
        runtime, t0=settings.warmup_fraction * settings.duration
    )
    departures = churn.num_departures if churn is not None else 0
    repairs = (
        sum(m.stats.reattachments for m in churn.managers.values())
        if churn is not None
        else 0
    )
    return fresh.freshness, departures, repairs


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    uptimes = FAST_UPTIMES_H if settings.profile == "small" else UPTIMES_H
    per_seed = {
        seed: seed_artifacts(settings, seed) for seed in settings.seeds
    }
    catalogs = {
        seed: make_catalog(settings, art.sources(settings.num_sources))
        for seed, art in per_seed.items()
    }
    specs = [
        _ChurnJob(
            scheme=name, seed=seed, uptime_h=uptime_h, settings=settings,
            trace=per_seed[seed].trace, rates=per_seed[seed].rates,
            catalog=catalogs[seed],
        )
        for uptime_h in uptimes
        for name in SCHEMES
        for seed in settings.seeds
    ]
    outcomes = run_tasks(_churn_job, specs, jobs=jobs)
    by_key: dict[tuple[float, str], list[tuple[float, int, int]]] = {}
    for spec, outcome in zip(specs, outcomes):
        by_key.setdefault((spec.uptime_h, spec.scheme), []).append(outcome)

    rows = []
    data: dict[str, dict] = {name: {} for name in SCHEMES}
    for uptime_h in uptimes:
        for name in SCHEMES:
            bucket = by_key[(uptime_h, name)]
            freshness_values = [f for f, _, _ in bucket]
            departures = sum(d for _, d, _ in bucket)
            repairs = sum(r for _, _, r in bucket)
            summary = summarize(freshness_values)
            label = "inf" if math.isinf(uptime_h) else f"{uptime_h:.0f}"
            rows.append(
                {
                    "uptime_h": label,
                    "scheme": name,
                    "freshness": round(summary.mean, 3),
                    "departures": departures,
                    "reattachments": repairs,
                }
            )
            data[name][label] = summary.mean
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E9",
        title=TITLE,
        text=text,
        data=data,
        notes="hdr degrades gracefully as uptime shrinks; flooding barely "
        "notices; the hdr-vs-source gap persists under churn.",
    )
