"""E9 -- robustness under caching-node churn (maintenance extension).

Caching devices power off and return.  The hierarchy is repaired on
every event (:mod:`repro.core.maintenance`): orphans re-attach
rate-aware, changed edges are re-provisioned.  The sweep varies the mean
node uptime and reports the time-averaged freshness over the *online*
caching nodes, plus the repair activity.

Expected shape: HDR degrades gracefully (repairs keep the tree usable);
flooding is structure-free and barely notices; source-only was never
relying on structure either, so the hdr-vs-source gap narrows but
persists.  This extends the paper's evaluation (its traces are fixed
populations); the mechanism is the "distributed maintenance" the title
refers to.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary
from repro.analysis.tables import format_table
from repro.core.maintenance import ChurnProcess
from repro.core.scheme import build_simulation
from repro.experiments.config import HOUR, Settings
from repro.experiments.runner import (
    ExperimentResult,
    choose_sources,
    make_catalog,
    make_trace,
)

TITLE = "Cache freshness under caching-node churn"

SCHEMES = ["hdr", "flooding", "source"]
#: mean uptime before departure, in hours (inf = no churn)
UPTIMES_H = [math.inf, 72.0, 24.0, 8.0]
FAST_UPTIMES_H = [math.inf, 12.0, 4.0]
MEAN_DOWNTIME_FRACTION = 0.25  # downtime is a quarter of the uptime


def run(settings: Optional[Settings] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    uptimes = FAST_UPTIMES_H if settings.profile == "small" else UPTIMES_H
    rows = []
    data: dict[str, dict] = {name: {} for name in SCHEMES}
    for uptime_h in uptimes:
        for name in SCHEMES:
            freshness_values = []
            departures = 0
            repairs = 0
            for seed in settings.seeds:
                trace = make_trace(settings, seed)
                catalog = make_catalog(settings, choose_sources(trace, settings))
                runtime = build_simulation(
                    trace, catalog, scheme=name,
                    num_caching_nodes=settings.num_caching_nodes, seed=seed,
                    refresh_jitter=settings.refresh_jitter,
                )
                runtime.install_freshness_probe(
                    interval=settings.probe_interval, until=settings.duration
                )
                churn = None
                if math.isfinite(uptime_h):
                    churn = ChurnProcess(
                        runtime,
                        leave_rate=1.0 / (uptime_h * HOUR),
                        mean_downtime=MEAN_DOWNTIME_FRACTION * uptime_h * HOUR,
                        rng=np.random.default_rng(seed * 131 + 7),
                        until=settings.duration,
                        managers=(
                            None
                            if runtime.config.structure in ("tree", "star")
                            else {}
                        ),
                    )
                    churn.install()
                runtime.run(until=settings.duration)
                fresh = freshness_summary(
                    runtime, t0=settings.warmup_fraction * settings.duration
                )
                freshness_values.append(fresh.freshness)
                if churn is not None:
                    departures += churn.num_departures
                    repairs += sum(
                        m.stats.reattachments for m in churn.managers.values()
                    )
            summary = summarize(freshness_values)
            label = "inf" if math.isinf(uptime_h) else f"{uptime_h:.0f}"
            rows.append(
                {
                    "uptime_h": label,
                    "scheme": name,
                    "freshness": round(summary.mean, 3),
                    "departures": departures,
                    "reattachments": repairs,
                }
            )
            data[name][label] = summary.mean
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E9",
        title=TITLE,
        text=text,
        data=data,
        notes="hdr degrades gracefully as uptime shrinks; flooding barely "
        "notices; the hdr-vs-source gap persists under churn.",
    )
