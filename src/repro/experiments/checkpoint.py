"""Sweep-level checkpointing: a journal of completed jobs.

A long sweep is a list of independent jobs; losing the whole run to one
crashed worker (or a killed process) is the failure mode this module
removes.  :class:`SweepJournal` appends one JSONL line per completed
job as it finishes; a re-run opened in resume mode replays those lines
and only executes the jobs that are missing, merging to output
byte-identical to an uninterrupted run.

The journal is guarded by a **fingerprint** of the sweep it belongs to
(function name, job count, and a content hash of every job spec).  A
journal whose fingerprint does not match the sweep being run is stale --
different settings, seeds, or schemes -- and is ignored with a warning
rather than silently mixing results from two different sweeps.

Alongside the journal, :meth:`SweepJournal.write_manifest` records a
human-readable ``manifest.json`` summarising per-job status (completed /
failed with error / pending), which is the partial-results artifact a
degraded run leaves behind.

Results are encoded to JSON losslessly for the types sweeps produce:
:class:`~repro.experiments.runner.RunMetrics` (tagged, floats round-trip
exactly through ``repr``, NaN included), tuples (tagged, so they decode
back to tuples), lists, dicts, and JSON scalars.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
import warnings
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

_FORMAT = "repro-sweep-journal-v1"


def sweep_fingerprint(fn: Callable, specs: Sequence[Any]) -> str:
    """Content hash identifying one (function, job list) sweep.

    Specs are already required to be picklable (they ship to workers);
    hashing their pickles catches any change to settings, seeds, schemes
    or fault plans between the interrupted run and the resume.
    """
    digest = hashlib.sha256()
    digest.update(getattr(fn, "__qualname__", repr(fn)).encode())
    digest.update(b"|%d|" % len(specs))
    for spec in specs:
        try:
            payload = pickle.dumps(spec, protocol=4)
        except Exception:
            payload = repr(spec).encode()
        digest.update(hashlib.sha256(payload).digest())
    return digest.hexdigest()


def encode_result(value: Any) -> Any:
    """JSON-encode a job result; lossless for the sweep result types."""
    from repro.experiments.runner import RunMetrics

    if isinstance(value, RunMetrics):
        return {"__runmetrics__": dataclasses.asdict(value)}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_result(v) for v in value]}
    if isinstance(value, list):
        return [encode_result(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot journal dict with non-string key {key!r}"
                )
            out[key] = encode_result(item)
        return out
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot journal result of type {type(value).__name__}; "
        "sweep results must be RunMetrics, tuples, lists, dicts or scalars"
    )


def decode_result(value: Any) -> Any:
    """Invert :func:`encode_result`."""
    from repro.experiments.runner import RunMetrics

    if isinstance(value, dict):
        if "__runmetrics__" in value and len(value) == 1:
            return RunMetrics(**value["__runmetrics__"])
        if "__tuple__" in value and len(value) == 1:
            return tuple(decode_result(v) for v in value["__tuple__"])
        return {key: decode_result(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_result(v) for v in value]
    return value


def _job_label(spec: Any) -> Optional[str]:
    """Human-readable job tag when the spec carries the usual fields."""
    parts = []
    for attr in ("point", "seed", "scheme"):
        value = getattr(spec, attr, None)
        if value is None:
            continue
        name = getattr(value, "name", value)
        parts.append(f"{attr}={name}")
    return " ".join(parts) or None


class SweepJournal:
    """Append-only record of completed jobs under one directory.

    Layout: ``<dir>/journal.jsonl`` (header line with the sweep
    fingerprint, then one line per completed job) and
    ``<dir>/manifest.json`` (status summary, rewritten at the end of
    every attempt).
    """

    def __init__(self, directory: str | Path, resume: bool = True) -> None:
        self.directory = Path(directory)
        self.journal_path = self.directory / "journal.jsonl"
        self.manifest_path = self.directory / "manifest.json"
        #: resume mode replays a matching existing journal; otherwise any
        #: existing journal is discarded and the sweep starts clean
        self.resume = resume
        self.fingerprint: Optional[str] = None
        self._completed: dict[int, Any] = {}
        self._attempts: dict[int, int] = {}
        self._labels: dict[int, Optional[str]] = {}
        self._total = 0
        self._handle = None

    # -- lifecycle --------------------------------------------------------

    def open(self, fn: Callable, specs: Sequence[Any]) -> None:
        """Bind to a sweep: load resumable entries, start the journal."""
        self.fingerprint = sweep_fingerprint(fn, specs)
        self._total = len(specs)
        self._labels = {i: _job_label(spec) for i, spec in enumerate(specs)}
        entries: list[dict] = []
        if self.resume and self.journal_path.exists():
            entries = self._load_entries()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.journal_path, "w", encoding="utf-8")
        self._write_line(
            {"format": _FORMAT, "fingerprint": self.fingerprint,
             "total": self._total}
        )
        for entry in entries:
            index = int(entry["job"])
            self._completed[index] = decode_result(entry["result"])
            self._attempts[index] = int(entry.get("attempts", 1))
            self._write_line(entry)

    def _load_entries(self) -> list[dict]:
        try:
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                lines = [line for line in handle if line.strip()]
            if not lines:
                return []
            header = json.loads(lines[0])
        except (OSError, json.JSONDecodeError) as exc:
            warnings.warn(
                f"ignoring unreadable sweep journal {self.journal_path}: {exc}",
                stacklevel=3,
            )
            return []
        if (header.get("format") != _FORMAT
                or header.get("fingerprint") != self.fingerprint):
            warnings.warn(
                f"sweep journal {self.journal_path} belongs to a different "
                "sweep (settings, seeds, schemes or fault plan changed); "
                "ignoring it and starting fresh",
                stacklevel=3,
            )
            return []
        entries = []
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-write leaves at most one torn final line.
                break
            if "job" in entry and "result" in entry:
                entries.append(entry)
        return entries

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- per-job interface ------------------------------------------------

    def completed(self) -> dict[int, Any]:
        """Decoded results of every journaled job, keyed by job index."""
        return dict(self._completed)

    def record(self, index: int, result: Any, attempts: int = 1) -> None:
        """Append one completed job; flushed so a crash loses at most
        the in-flight line."""
        self._completed[index] = result
        self._attempts[index] = attempts
        entry = {"job": index, "attempts": attempts,
                 "result": encode_result(result)}
        label = self._labels.get(index)
        if label:
            entry["label"] = label
        self._write_line(entry)

    def _write_line(self, entry: dict) -> None:
        assert self._handle is not None, "journal not opened"
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()

    # -- partial-results manifest -----------------------------------------

    def write_manifest(self, failures: Optional[dict[int, str]] = None) -> Path:
        """Summarise job status to ``manifest.json``; the artifact a
        degraded (partially failed) sweep leaves behind."""
        failures = failures or {}
        jobs = []
        for index in range(self._total):
            if index in self._completed:
                status = "completed"
            elif index in failures:
                status = "failed"
            else:
                status = "pending"
            entry: dict[str, Any] = {"job": index, "status": status}
            label = self._labels.get(index)
            if label:
                entry["label"] = label
            if index in self._attempts:
                entry["attempts"] = self._attempts[index]
            if index in failures:
                entry["error"] = failures[index]
            jobs.append(entry)
        manifest = {
            "format": _FORMAT,
            "fingerprint": self.fingerprint,
            "total": self._total,
            "completed": len(self._completed),
            "failed": len(failures),
            "complete": len(self._completed) == self._total,
            "jobs": jobs,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        return self.manifest_path
