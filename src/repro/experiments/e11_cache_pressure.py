"""E11 -- cache pressure (extension): bounded stores under refresh + queries.

The paper's model gives caching nodes room for their assigned items;
real devices have bounded storage.  This extension sweeps the per-node
store capacity below the catalog size and measures what breaks first:

- **slot freshness** is structurally capped at ``capacity / num_items``
  (a node cannot be fresh on an item it cannot hold);
- **query outcomes** degrade far more slowly -- and the *fresh-answer*
  ratio can even rise: an evicted item re-enters the cache with the
  current version at its next refresh, while an unbounded store keeps
  serving whatever stale copy it retained.

Swept for HDR with LRU against FIFO eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary, judge_queries
from repro.analysis.tables import format_table
from repro.caching.items import DataCatalog
from repro.caching.store import EvictionPolicy
from repro.contacts.rates import RateTable
from repro.core.scheme import build_simulation
from repro.experiments.artifacts import seed_artifacts
from repro.experiments.config import Settings
from repro.experiments.parallel import run_tasks
from repro.experiments.runner import ExperimentResult, make_catalog
from repro.mobility.trace import ContactTrace
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries

import numpy as np

TITLE = "Cache pressure: bounded stores under refresh and Zipf queries"


@dataclass(frozen=True)
class _PressureJob:
    """One (policy, capacity, seed) bounded-store run, picklable."""

    policy: EvictionPolicy
    capacity: int
    seed: int
    settings: Settings
    trace: ContactTrace
    rates: RateTable
    catalog: DataCatalog


def _pressure_job(job: _PressureJob) -> tuple[float, float, float]:
    """Worker: one bounded-store run, returns (freshness, answered,
    fresh-answer ratio)."""
    settings = job.settings
    runtime = build_simulation(
        job.trace, job.catalog, scheme="hdr",
        num_caching_nodes=settings.num_caching_nodes, rates=job.rates,
        seed=job.seed, with_queries=True, store_capacity=job.capacity,
        eviction_policy=job.policy,
        refresh_jitter=settings.refresh_jitter,
    )
    runtime.install_freshness_probe(
        interval=settings.probe_interval, until=settings.duration
    )
    schedule_queries(
        runtime,
        rate_per_node=settings.query_rate,
        duration=settings.duration,
        rng=np.random.default_rng(job.seed * 7919 + 17),
        popularity=ZipfPopularity(job.catalog.item_ids, s=settings.zipf_exponent),
    )
    runtime.run(until=settings.duration)
    fresh = freshness_summary(
        runtime, t0=settings.warmup_fraction * settings.duration
    )
    outcomes = judge_queries(runtime.query_records(), runtime.history, job.catalog)
    return fresh.freshness, outcomes.answer_ratio, outcomes.fresh_ratio


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    capacities = [settings.num_items, max(2, settings.num_items // 2), 2]
    capacities = sorted(set(capacities), reverse=True)
    per_seed = {seed: seed_artifacts(settings, seed) for seed in settings.seeds}
    catalogs = {
        seed: make_catalog(settings, art.sources(settings.num_sources))
        for seed, art in per_seed.items()
    }
    specs = [
        _PressureJob(
            policy=policy, capacity=capacity, seed=seed, settings=settings,
            trace=per_seed[seed].trace, rates=per_seed[seed].rates,
            catalog=catalogs[seed],
        )
        for policy in (EvictionPolicy.LRU, EvictionPolicy.FIFO)
        for capacity in capacities
        for seed in settings.seeds
    ]
    by_key: dict[tuple[EvictionPolicy, int], list[tuple[float, float, float]]] = {}
    for spec, outcome in zip(specs, run_tasks(_pressure_job, specs, jobs=jobs)):
        by_key.setdefault((spec.policy, spec.capacity), []).append(outcome)

    rows = []
    data: dict[str, dict] = {}
    for policy in (EvictionPolicy.LRU, EvictionPolicy.FIFO):
        for capacity in capacities:
            bucket = by_key[(policy, capacity)]
            freshness_values = [f for f, _, _ in bucket]
            answered_values = [a for _, a, _ in bucket]
            fresh_answer_values = [r for _, _, r in bucket]
            row = {
                "policy": policy.value,
                "capacity": capacity,
                "slot_freshness": round(summarize(freshness_values).mean, 3),
                "cap_bound": round(capacity / settings.num_items, 3),
                "answered": round(summarize(answered_values).mean, 3),
                "fresh_answers": round(summarize(fresh_answer_values).mean, 3),
            }
            rows.append(row)
            data[f"{policy.value}@{capacity}"] = row
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E11",
        title=TITLE,
        text=text,
        data={"rows": rows, "by_config": data,
              "num_items": settings.num_items},
        notes="slot freshness is capped by capacity/num_items; the "
        "answered and fresh-answer ratios degrade far more slowly "
        "(re-insertion brings current versions back).",
    )
