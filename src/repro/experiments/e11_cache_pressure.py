"""E11 -- cache pressure (extension): bounded stores under refresh + queries.

The paper's model gives caching nodes room for their assigned items;
real devices have bounded storage.  This extension sweeps the per-node
store capacity below the catalog size and measures what breaks first:

- **slot freshness** is structurally capped at ``capacity / num_items``
  (a node cannot be fresh on an item it cannot hold);
- **query outcomes** degrade far more slowly -- and the *fresh-answer*
  ratio can even rise: an evicted item re-enters the cache with the
  current version at its next refresh, while an unbounded store keeps
  serving whatever stale copy it retained.

Swept for HDR with LRU against FIFO eviction.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary, judge_queries
from repro.analysis.tables import format_table
from repro.caching.store import EvictionPolicy
from repro.core.scheme import build_simulation
from repro.experiments.config import Settings
from repro.experiments.runner import (
    ExperimentResult,
    choose_sources,
    make_catalog,
    make_trace,
)
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries

import numpy as np

TITLE = "Cache pressure: bounded stores under refresh and Zipf queries"


def run(settings: Optional[Settings] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    capacities = [settings.num_items, max(2, settings.num_items // 2), 2]
    capacities = sorted(set(capacities), reverse=True)
    rows = []
    data: dict[str, dict] = {}
    for policy in (EvictionPolicy.LRU, EvictionPolicy.FIFO):
        for capacity in capacities:
            freshness_values = []
            answered_values = []
            fresh_answer_values = []
            for seed in settings.seeds:
                trace = make_trace(settings, seed)
                catalog = make_catalog(settings, choose_sources(trace, settings))
                runtime = build_simulation(
                    trace, catalog, scheme="hdr",
                    num_caching_nodes=settings.num_caching_nodes, seed=seed,
                    with_queries=True, store_capacity=capacity,
                    eviction_policy=policy,
                    refresh_jitter=settings.refresh_jitter,
                )
                runtime.install_freshness_probe(
                    interval=settings.probe_interval, until=settings.duration
                )
                schedule_queries(
                    runtime,
                    rate_per_node=settings.query_rate,
                    duration=settings.duration,
                    rng=np.random.default_rng(seed * 7919 + 17),
                    popularity=ZipfPopularity(
                        catalog.item_ids, s=settings.zipf_exponent
                    ),
                )
                runtime.run(until=settings.duration)
                fresh = freshness_summary(
                    runtime, t0=settings.warmup_fraction * settings.duration
                )
                outcomes = judge_queries(
                    runtime.query_records(), runtime.history, catalog
                )
                freshness_values.append(fresh.freshness)
                answered_values.append(outcomes.answer_ratio)
                fresh_answer_values.append(outcomes.fresh_ratio)
            row = {
                "policy": policy.value,
                "capacity": capacity,
                "slot_freshness": round(summarize(freshness_values).mean, 3),
                "cap_bound": round(capacity / settings.num_items, 3),
                "answered": round(summarize(answered_values).mean, 3),
                "fresh_answers": round(summarize(fresh_answer_values).mean, 3),
            }
            rows.append(row)
            data[f"{policy.value}@{capacity}"] = row
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E11",
        title=TITLE,
        text=text,
        data={"rows": rows, "by_config": data,
              "num_items": settings.num_items},
        notes="slot freshness is capped by capacity/num_items; the "
        "answered and fresh-answer ratios degrade far more slowly "
        "(re-insertion brings current versions back).",
    )
