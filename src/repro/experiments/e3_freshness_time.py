"""E3 -- cache freshness ratio over time, all schemes.

The headline comparison: on one trace realisation, the fraction of
(caching node, item) slots holding the current version, sampled through
the run, one series per scheme.  Expected shape: flooding on top, HDR
close behind at a fraction of the overhead, then flat replication,
random assignment, source-only, and the no-refresh floor decaying to
zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.tables import format_series
from repro.baselines import COMPARISON_ORDER
from repro.experiments.config import Settings
from repro.experiments.runner import ExperimentResult, make_catalog, make_trace, choose_sources
from repro.core.scheme import build_simulation

TITLE = "Cache freshness ratio vs time (one realisation, all schemes)"

NUM_POINTS = 12


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    seed = settings.seeds[0]
    trace = make_trace(settings, seed)
    catalog = make_catalog(settings, choose_sources(trace, settings))
    horizon = settings.duration

    raw_series: dict[str, tuple[list[float], list[float]]] = {}
    for scheme in COMPARISON_ORDER:
        runtime = build_simulation(
            trace,
            catalog,
            scheme=scheme,
            num_caching_nodes=settings.num_caching_nodes,
            seed=seed,
            refresh_jitter=settings.refresh_jitter,
        )
        runtime.install_freshness_probe(interval=settings.probe_interval, until=horizon)
        runtime.run(until=horizon)
        series = runtime.stats.series("probe.freshness")
        raw_series[scheme] = (list(series.times), list(series.values))

    # Downsample by averaging the probe samples inside each grid bin --
    # the instantaneous ratio is a sawtooth (it drops to zero the moment
    # a new version is published), so bin averages are what the paper's
    # time-series figure shows.
    edges = np.linspace(0.0, horizon, NUM_POINTS + 1)
    table_series: dict[str, list[float]] = {}
    for scheme, (times, values) in raw_series.items():
        t_arr = np.asarray(times)
        v_arr = np.asarray(values)
        sampled = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (t_arr > lo) & (t_arr <= hi)
            sampled.append(float(v_arr[mask].mean()) if mask.any() else float("nan"))
        table_series[scheme] = sampled
    hours = [round(t / 3600.0, 1) for t in edges[1:]]
    text = format_series("hour", hours, table_series, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E3",
        title=TITLE,
        text=text,
        data={"grid_hours": hours, "series": table_series, "raw": raw_series},
        notes="Expected ordering: flooding >= hdr > flat > random > source > none.",
    )
