"""E6 -- refresh overhead and load distribution.

For the default configuration, the number of refresh-plane
transmissions per scheme, absolute and per useful delivery, next to the
freshness each scheme buys with it.  The headline trade-off of the
paper: HDR achieves near-flooding freshness at a small fraction of
flooding's transmissions.

A second dimension is *where* the transmissions happen: the hierarchy
spreads refresh load over the tree's interior nodes, while star-rooted
schemes concentrate it at the data source (``src_share``: the source's
fraction of all refresh transmissions, from one representative run with
transfer recording; ``gini``: inequality over all senders).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import transmission_load
from repro.analysis.tables import format_table
from repro.baselines import COMPARISON_ORDER
from repro.core.scheme import build_simulation
from repro.experiments.config import Settings
from repro.experiments.runner import (
    ExperimentResult,
    choose_sources,
    make_catalog,
    make_trace,
    run_replicated,
)

TITLE = "Refresh overhead, load distribution, and achieved freshness"


def _load_profile(settings: Settings, scheme: str) -> tuple[float, float]:
    """(source share of transmissions, gini) from one recorded run."""
    trace = make_trace(settings, settings.seeds[0])
    catalog = make_catalog(settings, choose_sources(trace, settings))
    runtime = build_simulation(
        trace, catalog, scheme=scheme,
        num_caching_nodes=settings.num_caching_nodes,
        seed=settings.seeds[0], record_transfers=True,
        refresh_jitter=settings.refresh_jitter,
    )
    runtime.run(until=settings.duration)
    load = transmission_load(runtime)
    if load.total == 0:
        return float("nan"), float("nan")
    by_source = sum(
        1
        for t in runtime.network.transfers
        if t.kind.startswith("refresh") and t.sender in runtime.sources
    )
    return by_source / load.total, load.gini


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    results = run_replicated(COMPARISON_ORDER, settings, jobs=jobs)
    flooding_msgs = summarize([m.messages for m in results["flooding"]]).mean
    rows = []
    data = {}
    for name in COMPARISON_ORDER:
        runs = results[name]
        freshness = summarize([m.freshness for m in runs])
        messages = summarize([m.messages for m in runs])
        per_update = summarize([m.messages_per_update for m in runs])
        src_share, gini = _load_profile(settings, name)
        row = {
            "scheme": name,
            "freshness": round(freshness.mean, 3),
            "messages": round(messages.mean, 1),
            "msgs_per_update": round(per_update.mean, 2),
            "vs_flooding": round(messages.mean / flooding_msgs, 3)
            if flooding_msgs
            else float("nan"),
            "src_share": round(src_share, 3),
            "gini": round(gini, 3),
        }
        rows.append(row)
        data[name] = {
            "freshness": freshness,
            "messages": messages,
            "messages_per_update": per_update,
            "src_share": src_share,
            "gini": gini,
        }
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E6",
        title=TITLE,
        text=text,
        data=data,
        notes="hdr should sit near flooding in freshness at a small "
        "fraction of its transmissions.",
    )
