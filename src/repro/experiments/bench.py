"""Performance benchmarks: engine events/sec and sweep wall-clock.

Two measurements back the performance claims in the README:

* **engine micro-benchmark** -- a heap-heavy synthetic workload (many
  pending self-rescheduling timers, a sprinkling of cancellations) run
  through the current :class:`~repro.sim.engine.Simulator` and through
  an embedded *legacy* reference engine that stores ``order=True``
  dataclass events directly in the heap (the pre-optimisation design).
  Reported as events/sec plus the speedup of current over legacy.

* **sweep benchmark** -- a 4-seed x 4-scheme comparison sweep executed
  serially (``jobs=1``) and through the process pool (``jobs=4`` by
  default), with the per-seed artifact cache cleared before each timed
  run so both sides pay the same trace-generation cost.  Reported as
  wall-clock seconds plus the parallel speedup.

``repro bench`` runs both and writes ``BENCH_runner.json``.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.experiments.artifacts import cache_clear
from repro.experiments.config import DAY, Settings
from repro.experiments.parallel import SweepPoint, resolve_jobs, run_sweep

#: schemes exercised by the sweep benchmark (4 x 4 seeds = 16 jobs)
SWEEP_SCHEMES = ("hdr", "flooding", "random", "source")
SWEEP_SEEDS = (1, 2, 3, 4)


# ---------------------------------------------------------------------------
# Legacy reference engine (the pre-optimisation design, kept verbatim in
# miniature so the events/sec comparison stays reproducible).
# ---------------------------------------------------------------------------


@dataclass(order=True)
class _LegacyEvent:
    """``order=True`` dataclass event -- every heap compare is a Python call."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class _LegacySimulator:
    """Minimal replica of the seed engine: dataclass events in the heap."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_LegacyEvent] = []
        self._seq = itertools.count()
        self._events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any,
        priority: int = 0,
    ) -> _LegacyEvent:
        event = _LegacyEvent(float(time), priority, next(self._seq),
                             callback, args)
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None) -> float:
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_executed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now


# ---------------------------------------------------------------------------
# Engine micro-benchmark
# ---------------------------------------------------------------------------


def _pump(sim, num_events: int, fanout: int = 512) -> int:
    """Heap-heavy synthetic workload: ``fanout`` self-rescheduling timers.

    Keeps ~``fanout`` events pending so every push/pop walks a deep
    heap; every 16th tick schedules-and-cancels an extra event to
    exercise the lazy-deletion path.  Identical (deterministic) on both
    engines.
    """
    executed = 0

    def tick(delta: float, priority: int) -> None:
        nonlocal executed
        executed += 1
        if executed >= num_events:
            return
        if executed % 16 == 0:
            sim.schedule_at(sim.now + delta * 0.5, tick, delta, priority,
                            priority=priority).cancel()
        sim.schedule_at(sim.now + delta, tick, delta, priority,
                        priority=priority)

    for i in range(fanout):
        sim.schedule_at(0.001 * (i % 97), tick, 0.5 + 0.25 * (i % 7), i % 3,
                        priority=i % 3)
    sim.run()
    return executed


def engine_benchmark(num_events: int = 200_000, repeats: int = 3) -> dict:
    """Events/sec of the current engine vs the legacy reference.

    Best-of-``repeats`` wall clock for each engine; returns a dict with
    ``events_per_sec`` (current), ``legacy_events_per_sec`` and the
    ``speedup`` ratio.
    """
    from repro.sim.engine import Simulator

    def best(make_sim) -> tuple[float, int]:
        times, counts = [], []
        for _ in range(repeats):
            sim = make_sim()
            start = time.perf_counter()
            executed = _pump(sim, num_events)
            times.append(time.perf_counter() - start)
            counts.append(executed)
        assert len(set(counts)) == 1  # workload is deterministic
        return min(times), counts[0]

    current, executed = best(Simulator)
    legacy, legacy_executed = best(_LegacySimulator)
    assert executed == legacy_executed  # identical workload on both engines
    return {
        "num_events": executed,
        "repeats": repeats,
        "events_per_sec": round(executed / current, 1),
        "legacy_events_per_sec": round(executed / legacy, 1),
        "speedup": round(legacy / current, 3),
        "improvement_pct": round((legacy / current - 1.0) * 100.0, 1),
    }


# ---------------------------------------------------------------------------
# Sweep benchmark
# ---------------------------------------------------------------------------


def _sweep_settings() -> Settings:
    return Settings.fast().with_(seeds=SWEEP_SEEDS, duration=6 * DAY)


def _timed_sweep(jobs: int) -> float:
    cache_clear()  # both sides pay the same trace-generation cost
    point = SweepPoint(settings=_sweep_settings(), schemes=SWEEP_SCHEMES)
    start = time.perf_counter()
    run_sweep([point], jobs=jobs)
    return time.perf_counter() - start


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sweep_benchmark(jobs: Optional[int] = None) -> dict:
    """Serial vs parallel wall-clock for the 4-seed x 4-scheme sweep.

    The reported speedup is bounded by ``cpus``: on a single-core
    machine the pool can only add overhead, so the report carries the
    CPU count to make the number interpretable.
    """
    workers = resolve_jobs(jobs) if jobs is not None else 4
    if workers <= 1:
        workers = 4
    cpus = available_cpus()
    serial = _timed_sweep(1)
    parallel = _timed_sweep(workers)
    report = {
        "seeds": len(SWEEP_SEEDS),
        "schemes": list(SWEEP_SCHEMES),
        "jobs": workers,
        "cpus": cpus,
        "serial_seconds": round(serial, 3),
        "parallel_seconds": round(parallel, 3),
        "speedup": round(serial / parallel, 3),
    }
    if cpus < 2:
        report["note"] = (
            "single-CPU machine: process-pool parallelism cannot beat "
            "serial here; re-run on a multi-core host for the speedup"
        )
    return report


def run_benchmarks(jobs: Optional[int] = None,
                   path: Optional[str] = None) -> dict:
    """Run both benchmarks; optionally write the JSON report to ``path``."""
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": engine_benchmark(),
        "sweep": sweep_benchmark(jobs=jobs),
    }
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
