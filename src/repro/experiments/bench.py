"""Performance benchmarks: engine, sweep, scheme bookkeeping, trace gen,
and observability overhead.

Five measurements back the performance claims in the README:

* **engine micro-benchmark** -- a heap-heavy synthetic workload (many
  pending self-rescheduling timers, a sprinkling of cancellations) run
  through the current :class:`~repro.sim.engine.Simulator` and through
  an embedded *legacy* reference engine that stores ``order=True``
  dataclass events directly in the heap (the pre-optimisation design).
  Reported as events/sec plus the speedup of current over legacy.

* **sweep benchmark** -- a 4-seed x 4-scheme comparison sweep executed
  serially (``jobs=1``) and through the process pool (``jobs=4`` by
  default), with the per-seed artifact cache cleared before each timed
  run so both sides pay the same trace-generation cost.  Reported as
  wall-clock seconds plus the parallel speedup.  Skipped (marked
  ``"skipped": "1 cpu"``) on single-CPU machines, where a process pool
  can only add overhead.

* **scheme benchmark** -- the reference sweep (paper-scale caching-node
  and item counts, 60 s freshness sampling) run serially with the
  incremental bookkeeping on (default) and off (``legacy``): the
  brute-force freshness probe, the full task scan and per-contact
  version peeks, and scalar trace assembly.  Both runs must produce
  metric-identical results (``identical`` in the report); the speedup
  is the end-to-end serial gain of the incremental paths.

* **soa benchmark** -- the reference sweep run through the vectorised
  struct-of-arrays backend (``backend="soa"``) and the object graph;
  every (scheme, seed) pair must be ``RunMetrics.same_as``-identical
  (hard gate) and the timing gives the small-scale speedup.

* **scale benchmark** -- events/sec, build-phase throughput and peak
  RSS vs node count (1k to 500k nodes; 250k in ``--quick``), one fresh
  subprocess per point so RSS is attributable.  Gated on the SoA
  backend being >= 5x the object backend at 1k nodes, on a peak-RSS
  ceiling, and on a build-throughput floor (contacts/sec through the
  synthesis+estimation+construction pipeline) at the 100k+ points.

* **trace-gen benchmark** -- synthetic trace generation per calibration
  profile, vectorised vs scalar assembly, with a bit-identity assertion
  (both paths consume the RNG substream identically).

* **obs benchmark** -- one reference run untraced vs with a full
  :mod:`repro.obs` event trace.  Tracing must be passive: the two
  metric sets are compared field-for-field (``identical``), and the
  timing quantifies the tracing-on overhead.  (Tracing-*off* cost is
  already covered: every other benchmark runs untraced through the
  instrumented code, so the engine baseline check would catch a
  disabled-path regression.)

* **theory benchmark** -- the reference run scored with and without a
  full :mod:`repro.theory` prediction evaluated before the clock
  starts.  Prediction must be passive (``RunMetrics.same_as``), and the
  prediction must agree with the measured run inside the trace's
  KS-derived band (see docs/MODEL.md).

* **service benchmark** -- the live-service mode (:mod:`repro.service`)
  in three phases: an infinite-dilation replay whose scores must be
  field-identical to the batch run on the same (trace, scheme, seed);
  an in-process serve + open-loop Zipf load reporting sustained q/s and
  p50/p95/p99 query latency from the service-side histogram; and a 2x
  overload run in a fresh subprocess (token-bucket-throttled worker,
  tiny query queue) so sheds are deterministic and peak RSS is
  attributable.  Gated on replay identity, a 1k q/s floor, sheds
  actually happening under overload, and an overload RSS ceiling.

``repro bench`` runs all of them and writes ``BENCH_runner.json``;
``repro bench --quick`` shrinks the workloads for CI smoke use.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.experiments.artifacts import cache_clear
from repro.experiments.config import DAY, Settings
from repro.experiments.parallel import SweepPoint, resolve_jobs, run_sweep

#: schemes exercised by the sweep benchmark (4 x 4 seeds = 16 jobs)
SWEEP_SCHEMES = ("hdr", "flooding", "random", "source")
SWEEP_SEEDS = (1, 2, 3, 4)


# ---------------------------------------------------------------------------
# Legacy reference engine (the pre-optimisation design, kept verbatim in
# miniature so the events/sec comparison stays reproducible).
# ---------------------------------------------------------------------------


@dataclass(order=True)
class _LegacyEvent:
    """``order=True`` dataclass event -- every heap compare is a Python call."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class _LegacySimulator:
    """Minimal replica of the seed engine: dataclass events in the heap."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_LegacyEvent] = []
        self._seq = itertools.count()
        self._events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any,
        priority: int = 0,
    ) -> _LegacyEvent:
        event = _LegacyEvent(float(time), priority, next(self._seq),
                             callback, args)
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None) -> float:
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_executed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now


# ---------------------------------------------------------------------------
# Engine micro-benchmark
# ---------------------------------------------------------------------------


def _pump(sim, num_events: int, fanout: int = 512) -> int:
    """Heap-heavy synthetic workload: ``fanout`` self-rescheduling timers.

    Keeps ~``fanout`` events pending so every push/pop walks a deep
    heap; every 16th tick schedules-and-cancels an extra event to
    exercise the lazy-deletion path.  Identical (deterministic) on both
    engines.
    """
    executed = 0

    def tick(delta: float, priority: int) -> None:
        nonlocal executed
        executed += 1
        if executed >= num_events:
            return
        if executed % 16 == 0:
            sim.schedule_at(sim.now + delta * 0.5, tick, delta, priority,
                            priority=priority).cancel()
        sim.schedule_at(sim.now + delta, tick, delta, priority,
                        priority=priority)

    for i in range(fanout):
        sim.schedule_at(0.001 * (i % 97), tick, 0.5 + 0.25 * (i % 7), i % 3,
                        priority=i % 3)
    sim.run()
    return executed


def engine_benchmark(num_events: int = 200_000, repeats: int = 3) -> dict:
    """Events/sec of the current engine vs the legacy reference.

    Best-of-``repeats`` wall clock for each engine; returns a dict with
    ``events_per_sec`` (current), ``legacy_events_per_sec`` and the
    ``speedup`` ratio.
    """
    from repro.sim.engine import Simulator

    def best(make_sim) -> tuple[float, int]:
        times, counts = [], []
        for _ in range(repeats):
            sim = make_sim()
            start = time.perf_counter()
            executed = _pump(sim, num_events)
            times.append(time.perf_counter() - start)
            counts.append(executed)
        assert len(set(counts)) == 1  # workload is deterministic
        return min(times), counts[0]

    current, executed = best(Simulator)
    legacy, legacy_executed = best(_LegacySimulator)
    assert executed == legacy_executed  # identical workload on both engines
    return {
        "num_events": executed,
        "repeats": repeats,
        "events_per_sec": round(executed / current, 1),
        "legacy_events_per_sec": round(executed / legacy, 1),
        "speedup": round(legacy / current, 3),
        "improvement_pct": round((legacy / current - 1.0) * 100.0, 1),
    }


# ---------------------------------------------------------------------------
# Sweep benchmark
# ---------------------------------------------------------------------------


def _sweep_settings() -> Settings:
    return Settings.fast().with_(seeds=SWEEP_SEEDS, duration=6 * DAY)


def _timed_sweep(jobs: int) -> float:
    cache_clear()  # both sides pay the same trace-generation cost
    point = SweepPoint(settings=_sweep_settings(), schemes=SWEEP_SCHEMES)
    start = time.perf_counter()
    run_sweep([point], jobs=jobs)
    return time.perf_counter() - start


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sweep_benchmark(jobs: Optional[int] = None) -> dict:
    """Serial vs parallel wall-clock for the 4-seed x 4-scheme sweep.

    On a single-CPU machine the pool can only add overhead, so the
    comparison is skipped outright and the report says so.
    """
    cpus = available_cpus()
    if cpus < 2:
        return {
            "skipped": "1 cpu",
            "cpus": cpus,
            "note": (
                "process-pool comparison needs >= 2 usable CPUs "
                f"(affinity reports {cpus}); a pool on one CPU can only "
                "add overhead, so serial == parallel by construction"
            ),
        }
    workers = resolve_jobs(jobs) if jobs is not None else 4
    if workers <= 1:
        workers = 4
    serial = _timed_sweep(1)
    parallel = _timed_sweep(workers)
    return {
        "seeds": len(SWEEP_SEEDS),
        "schemes": list(SWEEP_SCHEMES),
        "jobs": workers,
        "cpus": cpus,
        "serial_seconds": round(serial, 3),
        "parallel_seconds": round(parallel, 3),
        "speedup": round(serial / parallel, 3),
    }


# ---------------------------------------------------------------------------
# Scheme (incremental bookkeeping) and trace-generation benchmarks
# ---------------------------------------------------------------------------


@contextmanager
def legacy_mode() -> Iterator[None]:
    """Temporarily run with every incremental/vectorised path disabled.

    Flips the brute-force freshness probe, the full per-contact task
    scan, the per-item version peeks, scalar trace assembly, the
    dataclass contact sort and the array-native rate estimation back
    on -- the pre-optimisation behaviour, kept live precisely so this
    comparison stays honest.
    """
    from repro.contacts import rates
    from repro.core import accounting
    from repro.mobility import synthetic, trace

    saved = (
        accounting.INCREMENTAL_BOOKKEEPING,
        synthetic.VECTORISED_GENERATION,
        trace.FAST_SORT,
        rates.VECTORISED_RATES,
    )
    accounting.INCREMENTAL_BOOKKEEPING = False
    synthetic.VECTORISED_GENERATION = False
    trace.FAST_SORT = False
    rates.VECTORISED_RATES = False
    try:
        yield
    finally:
        (
            accounting.INCREMENTAL_BOOKKEEPING,
            synthetic.VECTORISED_GENERATION,
            trace.FAST_SORT,
            rates.VECTORISED_RATES,
        ) = saved


def reference_settings(quick: bool = False) -> Settings:
    """The reference scenario for scheme-level benchmarks and profiling.

    Paper-scale caching-node/item/source counts on the small calibrated
    trace, with 60-second freshness sampling -- the high-resolution
    probing that incremental accounting makes cheap.
    """
    return Settings.fast().with_(
        seeds=(1, 2) if quick else SWEEP_SEEDS,
        duration=(3 if quick else 6) * DAY,
        num_caching_nodes=12,
        num_items=6,
        num_sources=2,
        probe_interval=60.0,
    )


def scheme_benchmark(quick: bool = False, repeats: int = 2) -> dict:
    """End-to-end serial sweep: incremental bookkeeping vs legacy paths.

    Runs the reference sweep with the optimised paths (default flags)
    and again in :func:`legacy_mode`, best-of-``repeats`` each, clearing
    the artifact cache before every timed run.  The two final metric
    sets are compared field-for-field (``RunMetrics.same_as``); the
    benchmark is only meaningful while they stay identical.
    """
    from repro.experiments.runner import run_replicated

    settings = reference_settings(quick)
    if quick:
        repeats = 1

    def timed() -> tuple[float, dict]:
        cache_clear()
        start = time.perf_counter()
        result = run_replicated(SWEEP_SCHEMES, settings, jobs=1)
        return time.perf_counter() - start, result

    optimised_times, legacy_times = [], []
    optimised_result = legacy_result = None
    for _ in range(repeats):
        elapsed, optimised_result = timed()
        optimised_times.append(elapsed)
        with legacy_mode():
            elapsed, legacy_result = timed()
        legacy_times.append(elapsed)
    cache_clear()  # legacy-generated artifacts must not leak to later runs
    identical = all(
        a.same_as(b)
        for scheme in SWEEP_SCHEMES
        for a, b in zip(optimised_result[scheme], legacy_result[scheme])
    )
    optimised, legacy = min(optimised_times), min(legacy_times)
    return {
        "seeds": len(settings.seeds),
        "schemes": list(SWEEP_SCHEMES),
        "num_caching_nodes": settings.num_caching_nodes,
        "num_items": settings.num_items,
        "probe_interval_s": settings.probe_interval,
        "duration_days": settings.duration / DAY,
        "optimised_seconds": round(optimised, 3),
        "legacy_seconds": round(legacy, 3),
        "speedup": round(legacy / optimised, 3),
        "identical": identical,
    }


def trace_gen_benchmark(quick: bool = False, repeats: int = 2) -> dict:
    """Vectorised vs scalar synthetic-trace assembly, per profile.

    Asserts bit-identity of the generated traces (same seed, both
    paths) before reporting the timing -- a speedup over a divergent
    trace would be meaningless.
    """
    import numpy as np

    from repro.mobility.calibration import get_profile, list_profiles

    profiles = ["small"] if quick else list_profiles()
    if quick:
        repeats = 1
    report: dict[str, Any] = {"profiles": {}}
    for name in profiles:
        profile = get_profile(name)

        def timed() -> tuple[float, Any]:
            start = time.perf_counter()
            generated = profile.generate(np.random.default_rng(1))
            return time.perf_counter() - start, generated

        vec_times, scalar_times = [], []
        vectorised = scalar = None
        for _ in range(repeats):
            elapsed, vectorised = timed()
            vec_times.append(elapsed)
            with legacy_mode():
                elapsed, scalar = timed()
            scalar_times.append(elapsed)
        identical = list(vectorised) == list(scalar)
        vec, sca = min(vec_times), min(scalar_times)
        report["profiles"][name] = {
            "contacts": len(vectorised),
            "vectorised_seconds": round(vec, 3),
            "scalar_seconds": round(sca, 3),
            "speedup": round(sca / vec, 3) if vec > 0 else float("inf"),
            "identical": identical,
        }
    return report


def obs_benchmark(quick: bool = False, repeats: int = 2) -> dict:
    """Traced vs untraced reference run: metric identity plus overhead.

    Runs one reference (seed, scheme) simulation untraced and again with
    a full event trace written to a scratch JSONL file.  The two metric
    sets must be field-identical (``RunMetrics.same_as`` -- tracing is
    passive by design); the timings quantify the cost of tracing *on*.
    The cost of tracing *off* is covered by the engine/scheme benchmarks,
    which run untraced through the same instrumented code.
    """
    import tempfile

    from repro.experiments.runner import make_trace, run_once

    settings = reference_settings(quick).with_(seeds=(1,))
    if quick:
        repeats = 1
    seed = settings.seeds[0]
    trace = make_trace(settings, seed)

    def timed(trace_path):
        start = time.perf_counter()
        metrics = run_once(trace, "hdr", settings, seed=seed,
                           with_queries=True, trace_path=trace_path)
        return time.perf_counter() - start, metrics

    untraced_times, traced_times = [], []
    untraced = traced = None
    records = 0
    with tempfile.TemporaryDirectory() as tmp:
        scratch = os.path.join(tmp, "bench-trace.jsonl")
        for _ in range(repeats):
            elapsed, untraced = timed(None)
            untraced_times.append(elapsed)
            elapsed, traced = timed(scratch)
            traced_times.append(elapsed)
        with open(scratch, "r", encoding="utf-8") as handle:
            records = sum(1 for line in handle if line.strip())
    untraced_s, traced_s = min(untraced_times), min(traced_times)
    return {
        "scheme": "hdr",
        "seed": seed,
        "records": records,
        "untraced_seconds": round(untraced_s, 3),
        "traced_seconds": round(traced_s, 3),
        "overhead_pct": round((traced_s / untraced_s - 1.0) * 100.0, 1),
        "identical": untraced.same_as(traced),
    }


def faults_benchmark(quick: bool = False, repeats: int = 2) -> dict:
    """Fault-layer overhead when **no plan** is installed, plus identity.

    The fault subsystem's contract is that absent a plan it costs
    nothing: runs predating the subsystem, runs with ``fault_plan=None``
    and runs with a null plan are all bit-identical, and the hook checks
    (``network.faults is None``) are too cheap to measure.  This
    benchmark enforces both halves: metric identity (``same_as``) is a
    hard gate, and the timing pair quantifies the hook cost.  A faulted
    run is timed alongside for scale.
    """
    from repro.experiments.runner import make_trace, run_once
    from repro.faults.plan import FaultPlan

    settings = reference_settings(quick).with_(seeds=(1,))
    if quick:
        repeats = 1
    seed = settings.seeds[0]
    trace = make_trace(settings, seed)
    plan = FaultPlan(loss_rate=0.1, crash_rate_per_day=2.0,
                     cache_persistence="wipe")

    def timed(fault_plan):
        start = time.perf_counter()
        metrics = run_once(trace, "hdr", settings, seed=seed,
                           fault_plan=fault_plan)
        return time.perf_counter() - start, metrics

    no_plan_times, null_times, faulted_times = [], [], []
    no_plan = null_plan = faulted = None
    for _ in range(repeats):
        elapsed, no_plan = timed(None)
        no_plan_times.append(elapsed)
        elapsed, null_plan = timed(FaultPlan())
        null_times.append(elapsed)
        elapsed, faulted = timed(plan)
        faulted_times.append(elapsed)
    base_s, null_s = min(no_plan_times), min(null_times)
    return {
        "scheme": "hdr",
        "seed": seed,
        "no_plan_seconds": round(base_s, 3),
        "null_plan_seconds": round(null_s, 3),
        "faulted_seconds": round(min(faulted_times), 3),
        "overhead_pct": round((null_s / base_s - 1.0) * 100.0, 1),
        # both identity gates: null plan == no plan, and the fault run
        # actually moved the needle (it injected something)
        "identical": no_plan.same_as(null_plan),
        "faulted_differs": not faulted.same_as(no_plan),
    }


def theory_benchmark(quick: bool = False) -> dict:
    """Prediction passivity gate plus model-vs-simulation agreement.

    Builds the reference simulation twice from the same trace and seed:
    one run is scored as-is, the other has the full
    :class:`~repro.theory.FreshnessModel` prediction evaluated *before*
    the clock starts.  The two :class:`RunMetrics` must be
    ``same_as``-identical -- the model reads only static wiring (rates,
    trees, plans, catalog) and consumes no randomness, so predicting
    cannot perturb the run.  The timing isolates the cost of
    ``predict()``; the agreement block diffs the prediction against the
    measured metrics inside the trace's KS-derived band
    (:func:`~repro.theory.agreement_band`).
    """
    from repro.analysis.metrics import freshness_summary, refresh_outcomes
    from repro.contacts.intercontact import (
        aggregate_intercontact_samples,
        fit_exponential,
        ks_distance,
    )
    from repro.core.scheme import build_simulation
    from repro.experiments.runner import (
        RunMetrics,
        choose_sources,
        make_catalog,
        make_trace,
    )
    from repro.theory import FreshnessModel, agreement_band, compare

    settings = reference_settings(quick).with_(seeds=(1,))
    seed = settings.seeds[0]
    trace = make_trace(settings, seed)
    catalog = make_catalog(settings, choose_sources(trace, settings))
    horizon = settings.duration

    def score(with_prediction: bool):
        runtime = build_simulation(
            trace,
            catalog,
            scheme="hdr",
            num_caching_nodes=settings.num_caching_nodes,
            seed=seed,
            refresh_jitter=settings.refresh_jitter,
        )
        prediction = None
        predict_seconds = 0.0
        if with_prediction:
            start = time.perf_counter()
            prediction = FreshnessModel.from_runtime(runtime).predict()
            predict_seconds = time.perf_counter() - start
        runtime.install_freshness_probe(
            interval=settings.probe_interval, until=horizon
        )
        start = time.perf_counter()
        runtime.run(until=horizon)
        run_seconds = time.perf_counter() - start
        fresh = freshness_summary(runtime, t0=settings.warmup_fraction * horizon,
                                  t1=horizon)
        refresh = refresh_outcomes(
            runtime.update_log,
            runtime.history,
            catalog,
            runtime.caching_nodes,
            horizon=horizon,
            messages=runtime.refresh_overhead(),
        )
        metrics = RunMetrics(
            scheme=runtime.config.name,
            seed=seed,
            freshness=fresh.freshness,
            validity=fresh.validity,
            messages=refresh.messages,
            messages_per_update=refresh.messages_per_update,
            on_time_ratio=refresh.on_time_ratio,
            refresh_delay=refresh.mean_delay,
        )
        return metrics, prediction, predict_seconds, run_seconds

    baseline, _, _, baseline_seconds = score(with_prediction=False)
    predicted, prediction, predict_seconds, predicted_seconds = score(
        with_prediction=True
    )
    samples = aggregate_intercontact_samples(trace, normalise=True,
                                             min_gaps_per_pair=3)
    ks = ks_distance(samples, fit_exponential(samples)) if len(samples) else 0.0
    tolerance = agreement_band(ks)
    report = compare(prediction, predicted, tolerance=tolerance)
    return {
        "scheme": "hdr",
        "seed": seed,
        "nodes_predicted": len(prediction.nodes),
        "predict_seconds": round(predict_seconds, 3),
        "baseline_seconds": round(baseline_seconds, 3),
        "predicted_run_seconds": round(predicted_seconds, 3),
        "identical": baseline.same_as(predicted),
        "ks": round(ks, 4),
        "tolerance": round(tolerance, 4),
        "max_error": round(report.max_error, 4),
        "agreement": report.agreement,
    }


def soa_benchmark(quick: bool = False) -> dict:
    """SoA backend vs object backend on the reference sweep: identity + time.

    Runs every (scheme, seed) of the reference sweep through both
    backends and compares the :class:`RunMetrics` field-for-field
    (``RunMetrics.same_as``).  ``identical`` is a hard gate -- the SoA
    engine's entire value rests on being a faster route to the *same*
    numbers, exactly like the ``INCREMENTAL_BOOKKEEPING`` gate in the
    scheme benchmark.  The timings give the end-to-end speedup at
    reference (small) scale; the ``scale`` section measures where the
    vectorised path actually pulls away.
    """
    from repro.experiments.runner import make_trace, run_once

    settings = reference_settings(quick)
    object_s = soa_s = 0.0
    identical = True
    runs = 0
    for seed in settings.seeds:
        trace = make_trace(settings, seed)
        for scheme in SWEEP_SCHEMES:
            start = time.perf_counter()
            obj = run_once(trace, scheme, settings, seed=seed)
            object_s += time.perf_counter() - start
            start = time.perf_counter()
            soa = run_once(trace, scheme, settings, seed=seed, backend="soa")
            soa_s += time.perf_counter() - start
            identical = identical and obj.same_as(soa)
            runs += 1
    return {
        "seeds": len(settings.seeds),
        "schemes": list(SWEEP_SCHEMES),
        "runs": runs,
        "object_seconds": round(object_s, 3),
        "soa_seconds": round(soa_s, 3),
        "speedup": round(object_s / soa_s, 3) if soa_s > 0 else float("inf"),
        "identical": identical,
    }


#: Minimum sustained single-process query throughput (q/s) for the
#: service benchmark's in-process phase -- the acceptance floor for
#: live-service mode.
SERVICE_MIN_QPS = 1000.0

#: Peak-RSS ceiling for the service overload subprocess (MB).  The
#: whole point of the bounded queues is that a 2x overload sheds
#: queries instead of growing memory; the overload run sits near 60 MB,
#: so clearing this ceiling means backpressure stopped working.
SERVICE_RSS_CEILING_MB = 600.0

#: Absolute p95 query-latency grace (ms) for the baseline comparison.
#: Sub-millisecond baselines would otherwise fail on scheduler jitter
#: alone; the current run only fails when p95 exceeds *both* the
#: baseline-relative threshold and this floor.
SERVICE_P95_GRACE_MS = 10.0


def service_benchmark(quick: bool = False) -> dict:
    """Live-service equivalence, sustained throughput, and overload.

    Phase one replays the reference trace through
    :func:`repro.service.replay_scores` at infinite dilation and
    compares field-for-field against batch ``run_once`` on the same
    (trace, scheme, seed) -- ``identical`` is a hard gate, the streaming
    path's entire claim is that it reaches the same numbers.  Phase two
    serves the service's own replay while an open-loop Zipf load fires
    at a target well above :data:`SERVICE_MIN_QPS`; latency percentiles
    come from the service-side ``MetricsRegistry`` histogram.  Phase
    three runs ``python -m repro.service.loadgen`` in a fresh subprocess
    at 2x the worker's token-bucket serve rate with a 64-slot query
    queue: sheds are deterministic regardless of host speed, and peak
    RSS (a process-lifetime high-water mark) is attributable to the
    overloaded service alone.

    Phase four exercises the durability layer end to end: a
    checkpointed ``repro serve`` subprocess is killed mid-replay
    (``REPRO_SERVE_CRASH_AT`` fires ``os._exit`` with no cleanup, the
    moral equivalent of SIGKILL), a second subprocess resumes from the
    checkpoint directory and runs to the horizon, and the resumed score
    must be ``same_as``-identical to the batch run -- the
    kill/resume-equivalence hard gate.  A durable in-process replay
    (journal + manifests on) is also timed against the plain replay of
    phase one to report checkpoint overhead.
    """
    import subprocess
    import sys
    import tempfile
    from pathlib import Path

    import repro
    from repro.experiments.runner import make_trace, run_once
    from repro.service.loadgen import run_loadgen
    from repro.service.runtime import replay_scores, scores_match

    settings = Settings.fast().with_(
        duration=(2 if quick else 3) * DAY, seeds=(1,)
    )
    seed = settings.seeds[0]
    trace = make_trace(settings, seed)
    start = time.perf_counter()
    batch = run_once(trace, "hdr", settings, seed=seed)
    batch_seconds = time.perf_counter() - start
    start = time.perf_counter()
    score = replay_scores(settings, seed=seed, scheme="hdr")
    replay_seconds = time.perf_counter() - start
    identical = scores_match(score, batch)

    throughput = run_loadgen(
        days=2.0,
        scheme="hdr",
        seed=seed,
        rate=2500.0 if quick else 5000.0,
        duration=3.0 if quick else 8.0,
    )

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src_dir
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service.loadgen", "--json",
         "--days", "2", "--seed", str(seed),
         "--rate", "1000", "--serve-rate", "500", "--query-queue", "64",
         "--duration", "2" if quick else "4"],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        overload = {
            "error": (proc.stderr or "subprocess failed").strip()[-500:],
        }
    else:
        overload = json.loads(proc.stdout)
        overload.pop("profile", None)

    days = str(2 if quick else 3)
    serve_cmd = [sys.executable, "-m", "repro.cli", "serve",
                 "--days", days, "--seed", str(seed),
                 "--profile", "small", "--http", "off"]
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        ckpt = str(Path(tmp) / "ckpt")
        score_path = Path(tmp) / "score.json"
        crash_env = dict(env)
        crash_env["REPRO_SERVE_CRASH_AT"] = "256"
        crash = subprocess.run(
            serve_cmd + ["--checkpoint", ckpt, "--checkpoint-interval", "0"],
            capture_output=True, text=True, env=crash_env,
        )
        start = time.perf_counter()
        resume = subprocess.run(
            serve_cmd + ["--checkpoint", ckpt, "--resume",
                         "--score-json", str(score_path)],
            capture_output=True, text=True, env=env,
        )
        resume_seconds = time.perf_counter() - start
        resumed_score = (
            json.loads(score_path.read_text(encoding="utf-8"))
            if score_path.exists() else None
        )
        start = time.perf_counter()
        durable_score = replay_scores(
            settings, seed=seed, scheme="hdr",
            checkpoint=str(Path(tmp) / "inproc"),
        )
        durable_seconds = time.perf_counter() - start
    durability = {
        "killed": crash.returncode == 17,
        "resume_returncode": resume.returncode,
        "resume_seconds": round(resume_seconds, 3),
        "resume_identical": (
            resumed_score is not None and scores_match(resumed_score, batch)
        ),
        "durable_replay_seconds": round(durable_seconds, 3),
        "durable_identical": scores_match(durable_score, batch),
        "checkpoint_overhead_pct": round(
            (durable_seconds / replay_seconds - 1.0) * 100.0, 1
        ) if replay_seconds > 0 else float("nan"),
    }
    if not durability["killed"]:
        durability["crash_stderr"] = (crash.stderr or "").strip()[-500:]
    if resume.returncode != 0:
        durability["resume_stderr"] = (resume.stderr or "").strip()[-500:]

    qps = throughput.get("achieved_qps", 0.0)
    return {
        "scheme": "hdr",
        "seed": seed,
        "identical": identical,
        "batch_seconds": round(batch_seconds, 3),
        "replay_seconds": round(replay_seconds, 3),
        "throughput": throughput,
        "overload": overload,
        "durability": durability,
        "qps_floor": SERVICE_MIN_QPS,
        "qps_ok": qps >= SERVICE_MIN_QPS,
        "rss_ceiling_mb": SERVICE_RSS_CEILING_MB,
        "overload_ok": (
            "error" not in overload
            and overload.get("shed", 0) > 0
            and overload.get("completed", 0) > 0
            and overload.get("peak_rss_mb", float("inf"))
            <= SERVICE_RSS_CEILING_MB
        ),
    }


def check_service_regression(
    report: dict, baseline_path: str, threshold: float = 0.30
) -> tuple[bool, str]:
    """Gate the service section: identity, floors, and p95 vs baseline.

    Fails when the replay diverged from the batch run, when sustained
    throughput fell under :data:`SERVICE_MIN_QPS`, when the overload
    subprocess failed to shed (or blew the RSS ceiling), when the
    durability phase broke kill/resume equivalence (the killed-and-
    resumed run must be ``same_as``-identical to the batch run), or
    when p95 query latency exceeded both ``baseline * (1 + threshold)``
    and the absolute :data:`SERVICE_P95_GRACE_MS` grace.  A baseline
    without a ``service`` section passes the latency comparison
    (nothing to regress against), exactly like the other checks; the
    durability gate reads only the *current* report, so older baselines
    without the key stay usable.
    """
    service = report.get("service", {})
    throughput = service.get("throughput", {})
    problems = []
    if not service.get("identical"):
        problems.append("replay scores diverged from the batch run")
    if not service.get("qps_ok"):
        problems.append(
            f"{throughput.get('achieved_qps', 0.0):,.0f} q/s under the "
            f"{service.get('qps_floor', SERVICE_MIN_QPS):,.0f} q/s floor"
        )
    overload = service.get("overload", {})
    if "error" in overload:
        problems.append(f"overload subprocess failed: {overload['error']}")
    elif not service.get("overload_ok"):
        problems.append(
            f"overload run unhealthy (shed {overload.get('shed')}, "
            f"completed {overload.get('completed')}, peak RSS "
            f"{overload.get('peak_rss_mb', float('nan')):.0f} MB vs "
            f"{service.get('rss_ceiling_mb'):.0f} MB ceiling)"
        )
    durability = service.get("durability")
    if durability is not None:
        if not durability.get("killed"):
            problems.append(
                "durability crash subprocess did not die as expected: "
                + durability.get("crash_stderr", "no stderr")[-200:]
            )
        elif not durability.get("resume_identical"):
            problems.append(
                "kill/resume equivalence broken: resumed score != batch "
                f"run (resume exit {durability.get('resume_returncode')}: "
                + durability.get("resume_stderr", "")[-200:] + ")"
            )
        if not durability.get("durable_identical"):
            problems.append(
                "durable replay (journal + manifests on) diverged from "
                "the batch run"
            )
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError):
        baseline = {}
    base_p95 = (
        baseline.get("service", {}).get("throughput", {}).get("p95_ms")
    )
    current_p95 = throughput.get("p95_ms")
    p95_note = "no baseline p95; skipping latency check"
    if base_p95 and current_p95 is not None:
        allowed = max(base_p95 * (1.0 + threshold), SERVICE_P95_GRACE_MS)
        p95_note = (
            f"p95 {current_p95:.3f} ms vs baseline {base_p95:.3f} ms "
            f"(allowed {allowed:.3f} ms)"
        )
        if current_p95 > allowed:
            problems.append("query latency regressed: " + p95_note)
    if problems:
        return False, "; ".join(problems)
    message = (
        f"service ok: {throughput.get('achieved_qps', 0.0):,.0f} q/s "
        f"(floor {service.get('qps_floor', SERVICE_MIN_QPS):,.0f}), "
        f"overload shed {overload.get('shed')} at "
        f"{overload.get('peak_rss_mb', float('nan')):.0f} MB, {p95_note}"
    )
    if durability is not None:
        message += (
            ", kill/resume identical "
            f"(+{durability.get('checkpoint_overhead_pct', float('nan'))}% "
            "checkpoint overhead)"
        )
    return True, message


#: Peak-RSS ceiling for any single scale point (MB).  The 100k-node SoA
#: run peaks well under this; blowing through it means per-node memory
#: regressed to object-graph territory.
SCALE_RSS_CEILING_MB = 2048.0

#: Minimum SoA-over-object events/sec ratio at the 1k-node point.
SCALE_MIN_SOA_SPEEDUP = 5.0

#: Build-phase throughput floor (contacts/sec through synthesis +
#: estimation + construction) for SoA points at or above this node
#: count.  The vectorised build clears 75-140k contacts/sec on the
#: 100k-1M points; the pre-vectorisation pipeline managed ~31k, so a
#: drop under the floor means the array path stopped being exercised.
SCALE_MIN_BUILD_CONTACTS_PER_SEC = 50_000.0
SCALE_BUILD_FLOOR_MIN_NODES = 100_000

#: Run phases shorter than this (seconds) are pure timer noise on a
#: shared 1-CPU runner -- a 5 ms SoA run at 1k nodes swings 3x between
#: invocations -- so the per-point events/sec baseline comparison skips
#: them.  The absolute build floor and the RSS ceiling still apply.
SCALE_MIN_COMPARABLE_RUN_S = 0.05


def _scale_points(quick: bool) -> list[tuple[str, int]]:
    points = [("object", 1000), ("soa", 1000), ("soa", 10_000)]
    if quick:
        # one 100k+ smoke point so CI still exercises the build floor
        points += [("soa", 250_000)]
    else:
        points += [("soa", 30_000), ("soa", 100_000), ("soa", 250_000),
                   ("soa", 500_000)]
    return points


def scale_benchmark(quick: bool = False) -> dict:
    """Events/sec and peak RSS vs node count, per backend.

    Each point runs :mod:`repro.experiments.scale` in a fresh
    subprocess, because peak RSS (``getrusage``) is a process-lifetime
    high-water mark.  The quick points are a subset of the full ones, so
    baseline comparisons match on ``(backend, nodes)`` keys either way.
    """
    import subprocess
    import sys
    from pathlib import Path

    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src_dir
    )
    points = []
    for backend, nodes in _scale_points(quick):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.scale",
             "--nodes", str(nodes), "--backend", backend, "--json"],
            capture_output=True, text=True, env=env,
        )
        if proc.returncode != 0:
            points.append({
                "nodes": nodes, "backend": backend,
                "error": (proc.stderr or "subprocess failed").strip()[-500:],
            })
            continue
        points.append(json.loads(proc.stdout))

    def _eps(backend: str, nodes: int) -> Optional[float]:
        for point in points:
            if (point.get("backend"), point.get("nodes")) == (backend, nodes):
                return point.get("events_per_sec")
        return None

    obj_1k, soa_1k = _eps("object", 1000), _eps("soa", 1000)
    speedup_1k = (
        round(soa_1k / obj_1k, 2) if obj_1k and soa_1k else None
    )
    rss_values = [p["peak_rss_mb"] for p in points if "peak_rss_mb" in p]
    build_gated = [
        p for p in points
        if p.get("backend") == "soa"
        and (p.get("nodes") or 0) >= SCALE_BUILD_FLOOR_MIN_NODES
        and p.get("build_contacts_per_sec")
    ]
    build_ok = all(
        p["build_contacts_per_sec"] >= SCALE_MIN_BUILD_CONTACTS_PER_SEC
        for p in build_gated
    )
    return {
        "points": points,
        "soa_speedup_1k": speedup_1k,
        "speedup_floor": SCALE_MIN_SOA_SPEEDUP,
        "speedup_ok": (
            speedup_1k is not None and speedup_1k >= SCALE_MIN_SOA_SPEEDUP
        ),
        "rss_ceiling_mb": SCALE_RSS_CEILING_MB,
        "rss_ok": bool(rss_values)
        and max(rss_values) <= SCALE_RSS_CEILING_MB,
        "build_floor_contacts_per_sec": SCALE_MIN_BUILD_CONTACTS_PER_SEC,
        "build_floor_min_nodes": SCALE_BUILD_FLOOR_MIN_NODES,
        "build_points_gated": len(build_gated),
        "build_ok": build_ok,
    }


def check_scale_regression(
    report: dict, baseline_path: str, threshold: float = 0.30
) -> tuple[bool, str]:
    """Gate the scale section against a committed baseline.

    Fails when any ``(backend, nodes)`` point's events/sec dropped more
    than ``threshold`` below the baseline's matching point, when a point
    exceeds the peak-RSS ceiling, when the 1k-node SoA speedup fell
    under its floor, or when a 100k+ SoA point's build throughput
    dropped under the absolute build floor.  Points absent from the
    baseline pass (new points regress against nothing); reports written
    before the build split existed lack ``build_ok`` and skip that gate.
    Points whose run phase (on either side) is under
    :data:`SCALE_MIN_COMPARABLE_RUN_S` are excluded from the events/sec
    comparison -- at small node counts the SoA run finishes in
    milliseconds and the quotient is timer noise.
    """
    scale = report.get("scale", {})
    problems = []
    if not scale.get("speedup_ok"):
        problems.append(
            f"soa speedup at 1k nodes {scale.get('soa_speedup_1k')}x "
            f"under floor {scale.get('speedup_floor')}x"
        )
    if not scale.get("rss_ok"):
        problems.append(
            f"a scale point exceeded the {scale.get('rss_ceiling_mb')} MB "
            "peak-RSS ceiling"
        )
    if "build_ok" in scale and not scale["build_ok"]:
        slow = [
            f"{p.get('backend')}@{p.get('nodes')} "
            f"{p.get('build_contacts_per_sec'):,.0f}"
            for p in scale.get("points", [])
            if p.get("backend") == "soa"
            and (p.get("nodes") or 0) >= scale.get("build_floor_min_nodes", 0)
            and p.get("build_contacts_per_sec") is not None
            and p["build_contacts_per_sec"]
            < scale.get("build_floor_contacts_per_sec", 0.0)
        ]
        problems.append(
            "build throughput under the "
            f"{scale.get('build_floor_contacts_per_sec'):,.0f} contacts/s "
            f"floor: {', '.join(slow) or 'unknown point'}"
        )
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError):
        baseline = {}
    base_points = {
        (p.get("backend"), p.get("nodes")): p
        for p in baseline.get("scale", {}).get("points", [])
    }
    checked = 0
    for point in scale.get("points", []):
        key = (point.get("backend"), point.get("nodes"))
        base_point = base_points.get(key)
        base = base_point.get("events_per_sec") if base_point else None
        current = point.get("events_per_sec")
        if not base or not current:
            continue
        # sub-50ms run phases are timer noise, not throughput signal
        run_times = (point.get("run_s"), base_point.get("run_s"))
        if any(t is not None and t < SCALE_MIN_COMPARABLE_RUN_S
               for t in run_times):
            continue
        checked += 1
        if current / base < 1.0 - threshold:
            problems.append(
                f"{key[0]}@{key[1]} {current:,.0f} events/s vs baseline "
                f"{base:,.0f} ({current / base:.2f}x, "
                f"floor {1.0 - threshold:.2f}x)"
            )
    if problems:
        return False, "; ".join(problems)
    message = (
        f"scale ok: {checked} point(s) within {threshold:.0%} of baseline, "
        f"soa {scale.get('soa_speedup_1k')}x at 1k nodes, "
        f"peak RSS under {scale.get('rss_ceiling_mb'):.0f} MB"
    )
    if scale.get("build_points_gated"):
        message += (
            f", build >= "
            f"{scale.get('build_floor_contacts_per_sec'):,.0f} contacts/s "
            f"on {scale['build_points_gated']} point(s)"
        )
    return True, message


def check_engine_regression(
    report: dict, baseline_path: str, threshold: float = 0.30
) -> tuple[bool, str]:
    """Compare a fresh report's engine throughput against a committed one.

    Returns ``(ok, message)``; ``ok`` is ``False`` when events/sec
    dropped more than ``threshold`` below the baseline.  A missing or
    baseline-less file passes (nothing to regress against).
    """
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return True, f"no usable baseline at {baseline_path}; skipping check"
    base = baseline.get("engine", {}).get("events_per_sec")
    if not base:
        return True, f"{baseline_path} has no engine events/sec; skipping check"
    current = report["engine"]["events_per_sec"]
    ratio = current / base
    ok = ratio >= 1.0 - threshold
    message = (
        f"engine {current:,.0f} events/s vs baseline {base:,.0f} "
        f"({ratio:.2f}x, floor {1.0 - threshold:.2f}x)"
    )
    return ok, message


def run_benchmarks(jobs: Optional[int] = None,
                   path: Optional[str] = None,
                   quick: bool = False) -> dict:
    """Run every benchmark; optionally write the JSON report to ``path``."""
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": engine_benchmark(
            num_events=50_000 if quick else 200_000,
            repeats=2 if quick else 3,
        ),
        "sweep": sweep_benchmark(jobs=jobs),
        "scheme": scheme_benchmark(quick=quick),
        "soa": soa_benchmark(quick=quick),
        "scale": scale_benchmark(quick=quick),
        "trace_gen": trace_gen_benchmark(quick=quick),
        "obs": obs_benchmark(quick=quick),
        "faults": faults_benchmark(quick=quick),
        "theory": theory_benchmark(quick=quick),
        "service": service_benchmark(quick=quick),
    }
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
