"""Scaling benchmark: events/sec and peak RSS vs node count.

The ROADMAP's "millions of users" items all hinge on one question: how
fast does one process chew through contact events as the population
grows?  This module measures exactly that, for both simulation backends,
on a synthetic sparse contact schedule whose size is controlled by
``--nodes`` -- up to city scale (10k-100k nodes), far beyond what the
paper's ~100-node traces exercise.

Each measurement should run in its own process (``python -m
repro.experiments.scale --nodes N --backend soa --json``): peak RSS is
read from ``getrusage`` and is a process-lifetime high-water mark, so
points measured in a shared process would contaminate each other.  The
``scale`` section of :mod:`repro.experiments.bench` does exactly this.

Scale runs flip :data:`repro.sim.stats.STREAMING_TALLIES` on, so tally
memory stays bounded no matter how many refresh deliveries the run
observes (the streaming-percentile satellite of the SoA work).
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Optional

import numpy as np

from repro.caching.items import DataCatalog
from repro.contacts.rates import mle_rates
from repro.mobility.trace import Contact, ContactTrace
from repro.sim import stats as stats_module

DAY = 24 * 3600.0

#: Mean contact duration of the synthetic schedule (seconds).
CONTACT_DURATION = 300.0


def synthetic_trace(
    num_nodes: int,
    contacts_per_node: float = 20.0,
    duration: float = 2 * DAY,
    seed: int = 0,
) -> ContactTrace:
    """A sparse random contact schedule over ``num_nodes`` devices.

    Pairs are uniform (an Erdos-Renyi style mixing pattern -- adequate
    for throughput measurement, which only cares about event volume and
    how many events touch protocol-active nodes).  Every node id in
    ``range(num_nodes)`` exists even if it drew no contacts.
    """
    rng = np.random.default_rng(seed)
    total = int(num_nodes * contacts_per_node / 2)
    a = rng.integers(0, num_nodes, total)
    b = rng.integers(0, num_nodes - 1, total)
    b = b + (b >= a)  # distinct endpoint without rejection sampling
    start = rng.uniform(0.0, duration, total)
    length = rng.exponential(CONTACT_DURATION, total)
    end = np.minimum(start + np.maximum(length, 1.0), duration + CONTACT_DURATION)
    contacts = [
        Contact.make(int(ai), int(bi), float(si), float(ei))
        for ai, bi, si, ei in zip(a, b, start, end)
    ]
    return ContactTrace(
        contacts,
        node_ids=range(num_nodes),
        name=f"synthetic-{num_nodes}",
    )


def _pick_sources(trace: ContactTrace, num_sources: int) -> list[int]:
    """Median-degree nodes, mirroring ``choose_sources``' intent (the
    sources are ordinary devices, not hubs) without the full centrality
    machinery."""
    degree = np.zeros(trace.num_nodes, dtype=np.int64)
    for contact in trace:
        degree[contact.a] += 1
        degree[contact.b] += 1
    ranked = np.argsort(-degree, kind="stable")
    mid = len(ranked) // 2
    half = num_sources // 2
    picked = ranked[mid - half:mid - half + num_sources]
    return sorted(int(n) for n in picked)


def run_scale_point(
    num_nodes: int,
    backend: str = "soa",
    scheme: str = "hdr",
    seed: int = 0,
    contacts_per_node: float = 20.0,
    duration: float = 2 * DAY,
    num_caching_nodes: int = 12,
    num_items: int = 4,
    num_sources: int = 2,
    probe_interval: float = 600.0,
) -> dict:
    """Build + run one (node count, backend) measurement; returns the
    JSON-ready result dict."""
    from repro.core.scheme import build_simulation

    stats_module.STREAMING_TALLIES = True
    try:
        t0 = time.perf_counter()
        trace = synthetic_trace(
            num_nodes, contacts_per_node=contacts_per_node,
            duration=duration, seed=seed,
        )
        sources = _pick_sources(trace, num_sources)
        catalog = DataCatalog.uniform(
            num_items=num_items,
            sources=sources,
            refresh_interval=4 * 3600.0,
            lifetime=12 * 3600.0,
        )
        rates = mle_rates(trace)
        t1 = time.perf_counter()
        runtime = build_simulation(
            trace,
            catalog,
            scheme=scheme,
            num_caching_nodes=num_caching_nodes,
            rates=rates,
            seed=seed,
            refresh_jitter=0.25,
            backend=backend,
        )
        runtime.install_freshness_probe(interval=probe_interval, until=duration)
        t2 = time.perf_counter()
        runtime.run(until=duration)
        t3 = time.perf_counter()
    finally:
        stats_module.STREAMING_TALLIES = False

    if backend == "soa":
        events = runtime.events_processed
    else:
        events = runtime.sim.events_executed
    fresh, valid, total = runtime.freshness_snapshot()
    run_s = t3 - t2
    return {
        "nodes": num_nodes,
        "backend": backend,
        "scheme": scheme,
        "seed": seed,
        "contacts": len(trace),
        "events": int(events),
        "trace_gen_s": round(t1 - t0, 3),
        "build_s": round(t2 - t1, 3),
        "run_s": round(run_s, 3),
        "events_per_sec": round(events / run_s, 1) if run_s > 0 else None,
        "messages": runtime.refresh_overhead(),
        "freshness": round(fresh / total, 4) if total else None,
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="One scaling-benchmark point (run in a fresh process "
        "so peak RSS is attributable)."
    )
    parser.add_argument("--nodes", type=int, required=True)
    parser.add_argument("--backend", choices=("object", "soa"), default="soa")
    parser.add_argument("--scheme", default="hdr")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--contacts-per-node", type=float, default=20.0)
    parser.add_argument("--days", type=float, default=2.0)
    parser.add_argument("--json", action="store_true", help="emit one JSON dict")
    args = parser.parse_args(argv)
    result = run_scale_point(
        args.nodes,
        backend=args.backend,
        scheme=args.scheme,
        seed=args.seed,
        contacts_per_node=args.contacts_per_node,
        duration=args.days * DAY,
    )
    if args.json:
        json.dump(result, sys.stdout)
        sys.stdout.write("\n")
    else:
        for key, value in result.items():
            print(f"{key:15s}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
