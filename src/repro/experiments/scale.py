"""Scaling benchmark: events/sec and peak RSS vs node count.

The ROADMAP's "millions of users" items all hinge on one question: how
fast does one process chew through contact events as the population
grows?  This module measures exactly that, for both simulation backends,
on a synthetic sparse contact schedule whose size is controlled by
``--nodes`` -- up to metro scale (100k-1M nodes), far beyond what the
paper's ~100-node traces exercise.

Each measurement should run in its own process (``python -m
repro.experiments.scale --nodes N --backend soa --json``): peak RSS is
read from ``getrusage`` and is a process-lifetime high-water mark, so
points measured in a shared process would contaminate each other.  The
``scale`` section of :mod:`repro.experiments.bench` does exactly this.

The build phase is timed in three stages -- synthesis (drawing the
contact schedule), estimation (pairwise MLE rates) and construction
(NCL selection, trees, relay plans, the event stream) -- and the result
carries both the split and a ``build_contacts_per_sec`` throughput the
bench regression gate can hold a floor against.  The ``soa`` backend
runs the whole build array-natively on a
:class:`~repro.mobility.arrays.ContactArrays` trace; ``--trace-mode
objects`` forces the legacy ``Contact``-object path (the two produce
identical simulations -- the equivalence tests rely on it).

Scale runs flip :data:`repro.sim.stats.STREAMING_TALLIES` on, so tally
memory stays bounded no matter how many refresh deliveries the run
observes (the streaming-percentile satellite of the SoA work).
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Optional, Union

import numpy as np

from repro.caching.items import DataCatalog
from repro.contacts.rates import mle_rates
from repro.mobility.arrays import ContactArrays
from repro.mobility.trace import Contact, ContactTrace
from repro.sim import stats as stats_module

DAY = 24 * 3600.0

#: Mean contact duration of the synthetic schedule (seconds).
CONTACT_DURATION = 300.0


def _draw_schedule(
    num_nodes: int,
    contacts_per_node: float,
    duration: float,
    seed: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The raw contact draws shared by both trace representations.

    Pairs are uniform (an Erdos-Renyi style mixing pattern -- adequate
    for throughput measurement, which only cares about event volume and
    how many events touch protocol-active nodes).
    """
    rng = np.random.default_rng(seed)
    total = int(num_nodes * contacts_per_node / 2)
    a = rng.integers(0, num_nodes, total)
    b = rng.integers(0, num_nodes - 1, total)
    b = b + (b >= a)  # distinct endpoint without rejection sampling
    start = rng.uniform(0.0, duration, total)
    length = rng.exponential(CONTACT_DURATION, total)
    end = np.minimum(start + np.maximum(length, 1.0), duration + CONTACT_DURATION)
    return start, end, a, b


def synthetic_trace(
    num_nodes: int,
    contacts_per_node: float = 20.0,
    duration: float = 2 * DAY,
    seed: int = 0,
) -> ContactTrace:
    """A sparse random contact schedule over ``num_nodes`` devices.

    Every node id in ``range(num_nodes)`` exists even if it drew no
    contacts.  Materialises per-contact objects; prefer
    :func:`synthetic_arrays` above ~10k nodes.
    """
    start, end, a, b = _draw_schedule(num_nodes, contacts_per_node,
                                      duration, seed)
    contacts = [
        Contact.make(int(ai), int(bi), float(si), float(ei))
        for ai, bi, si, ei in zip(a, b, start, end)
    ]
    return ContactTrace(
        contacts,
        node_ids=range(num_nodes),
        name=f"synthetic-{num_nodes}",
    )


def synthetic_arrays(
    num_nodes: int,
    contacts_per_node: float = 20.0,
    duration: float = 2 * DAY,
    seed: int = 0,
) -> ContactArrays:
    """:func:`synthetic_trace` without the ``Contact`` objects.

    Identical draws, identical normalise/sort/merge semantics:
    ``synthetic_arrays(...).to_trace()`` equals ``synthetic_trace(...)``
    contact-for-contact for any seed.
    """
    start, end, a, b = _draw_schedule(num_nodes, contacts_per_node,
                                      duration, seed)
    return ContactArrays(
        start, end, a, b,
        node_ids=np.arange(num_nodes),
        name=f"synthetic-{num_nodes}",
    )


def _pick_sources(
    trace: Union[ContactTrace, ContactArrays], num_sources: int
) -> list[int]:
    """Median-degree nodes, mirroring ``choose_sources``' intent (the
    sources are ordinary devices, not hubs) without the full centrality
    machinery."""
    if isinstance(trace, ContactArrays):
        degree = (
            np.bincount(trace.a, minlength=trace.num_nodes)
            + np.bincount(trace.b, minlength=trace.num_nodes)
        ).astype(np.int64)
    else:
        degree = np.zeros(trace.num_nodes, dtype=np.int64)
        for contact in trace:
            degree[contact.a] += 1
            degree[contact.b] += 1
    ranked = np.argsort(-degree, kind="stable")
    mid = len(ranked) // 2
    half = num_sources // 2
    picked = ranked[mid - half:mid - half + num_sources]
    return sorted(int(n) for n in picked)


def run_scale_point(
    num_nodes: int,
    backend: str = "soa",
    scheme: str = "hdr",
    seed: int = 0,
    contacts_per_node: float = 20.0,
    duration: float = 2 * DAY,
    num_caching_nodes: int = 12,
    num_items: int = 4,
    num_sources: int = 2,
    probe_interval: float = 600.0,
    trace_mode: str = "auto",
    record_path: Optional[str] = None,
) -> dict:
    """Build + run one (node count, backend) measurement; returns the
    JSON-ready result dict.

    ``trace_mode`` selects the trace representation: ``"arrays"`` (the
    vectorised :class:`ContactArrays` pipeline), ``"objects"`` (the
    legacy per-``Contact`` path), or ``"auto"`` (arrays for the soa
    backend, objects for the object backend, which cannot consume
    arrays).  ``record_path`` appends per-stage
    :class:`~repro.obs.records.BuildPhaseRecord` rows as JSONL.
    """
    from repro.core.scheme import build_simulation

    if trace_mode not in ("auto", "arrays", "objects"):
        raise ValueError(f"unknown trace mode {trace_mode!r}")
    use_arrays = (
        trace_mode == "arrays"
        or (trace_mode == "auto" and backend == "soa")
    )
    stats_module.STREAMING_TALLIES = True
    try:
        t0 = time.perf_counter()
        if use_arrays:
            trace = synthetic_arrays(
                num_nodes, contacts_per_node=contacts_per_node,
                duration=duration, seed=seed,
            )
        else:
            trace = synthetic_trace(
                num_nodes, contacts_per_node=contacts_per_node,
                duration=duration, seed=seed,
            )
        t1 = time.perf_counter()
        sources = _pick_sources(trace, num_sources)
        catalog = DataCatalog.uniform(
            num_items=num_items,
            sources=sources,
            refresh_interval=4 * 3600.0,
            lifetime=12 * 3600.0,
        )
        rates = mle_rates(trace)
        t2 = time.perf_counter()
        runtime = build_simulation(
            trace,
            catalog,
            scheme=scheme,
            num_caching_nodes=num_caching_nodes,
            rates=rates,
            seed=seed,
            refresh_jitter=0.25,
            backend=backend,
        )
        runtime.install_freshness_probe(interval=probe_interval, until=duration)
        t3 = time.perf_counter()
        runtime.run(until=duration)
        t4 = time.perf_counter()
    finally:
        stats_module.STREAMING_TALLIES = False

    if backend == "soa":
        events = runtime.events_processed
    else:
        events = runtime.sim.events_executed
    fresh, valid, total = runtime.freshness_snapshot()
    contacts = len(trace)
    build_total = t3 - t0
    run_s = t4 - t3
    result = {
        "nodes": num_nodes,
        "backend": backend,
        "scheme": scheme,
        "seed": seed,
        "trace_mode": "arrays" if use_arrays else "objects",
        "contacts": contacts,
        "events": int(events),
        "trace_gen_s": round(t1 - t0, 3),
        "estimate_s": round(t2 - t1, 3),
        "build_s": round(t3 - t2, 3),
        "build_total_s": round(build_total, 3),
        "build_contacts_per_sec": round(contacts / build_total, 1)
        if build_total > 0 else None,
        "run_s": round(run_s, 3),
        "events_per_sec": round(events / run_s, 1) if run_s > 0 else None,
        "messages": runtime.refresh_overhead(),
        "freshness": round(fresh / total, 4) if total else None,
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
    }
    if record_path:
        _append_build_records(record_path, result, t0, t1, t2, t3, t4)
    return result


def _append_build_records(path: str, result: dict, t0: float, t1: float,
                          t2: float, t3: float, t4: float) -> None:
    """Append one ``build.phase`` JSONL row per stage to ``path``."""
    from repro.obs.records import BuildPhaseRecord

    nodes, contacts = result["nodes"], result["contacts"]
    stages = [
        ("synthesis", t0, t1),
        ("estimation", t1, t2),
        ("construction", t2, t3),
        ("run", t3, t4),
    ]
    with open(path, "a", encoding="utf-8") as fh:
        for phase, lo, hi in stages:
            record = BuildPhaseRecord(
                time=round(lo - t0, 6), phase=phase,
                seconds=round(hi - lo, 6), nodes=nodes, contacts=contacts,
            )
            fh.write(json.dumps(record.as_dict()) + "\n")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="One scaling-benchmark point (run in a fresh process "
        "so peak RSS is attributable)."
    )
    parser.add_argument("--nodes", type=int, required=True)
    parser.add_argument("--backend", choices=("object", "soa"), default="soa")
    parser.add_argument("--scheme", default="hdr")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--contacts-per-node", type=float, default=20.0)
    parser.add_argument("--days", type=float, default=2.0)
    parser.add_argument(
        "--trace-mode", choices=("auto", "arrays", "objects"), default="auto",
        help="trace representation (auto: arrays for soa, objects otherwise)",
    )
    parser.add_argument(
        "--record", metavar="FILE", default=None,
        help="append per-stage build.phase records to FILE as JSONL",
    )
    parser.add_argument("--json", action="store_true", help="emit one JSON dict")
    args = parser.parse_args(argv)
    result = run_scale_point(
        args.nodes,
        backend=args.backend,
        scheme=args.scheme,
        seed=args.seed,
        contacts_per_node=args.contacts_per_node,
        duration=args.days * DAY,
        trace_mode=args.trace_mode,
        record_path=args.record,
    )
    if args.json:
        json.dump(result, sys.stdout)
        sys.stdout.write("\n")
    else:
        for key, value in result.items():
            print(f"{key:15s}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
