"""E12 -- refresh-delay distribution (CDF figure).

For every (item, version >= 2, caching node) delivery recorded in a
run's update log, the delay from version publication to the node's
update.  The CDF per scheme is the distributional view behind E3's
averages: flooding's curve rises fastest; HDR tracks it and crosses the
freshness window (one refresh interval, marked by the ``on_time``
column at x = R) near its provisioned requirement; source-only's tail
is long.  Deliveries that never happen are censored -- reported via the
``delivered`` fraction, so curves are comparable across schemes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.tables import format_series, format_table
from repro.core.scheme import build_simulation
from repro.experiments.config import Settings
from repro.experiments.runner import (
    ExperimentResult,
    choose_sources,
    make_catalog,
    make_trace,
)

TITLE = "Refresh delay CDF (fraction of opportunities updated within x)"

SCHEMES = ["hdr", "flooding", "flat", "source"]
#: CDF evaluation points, as fractions of the refresh interval
GRID_FRACTIONS = [0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0]


def _first_delays(runtime, horizon: float) -> tuple[list[float], int]:
    """Per-opportunity first-delivery delays and the opportunity count.

    Only *scoreable* versions count on both sides: a version published
    so late that its freshness window extends past the horizon is
    excluded from the opportunities **and** its deliveries are dropped,
    keeping the CDF a true fraction.
    """
    scoreable: set[tuple[int, int]] = set()
    opportunities = 0
    for item in runtime.catalog:
        num_versions = runtime.history.num_versions(item.item_id)
        for version in range(2, num_versions + 1):
            published = runtime.history.version_time(item.item_id, version)
            if published + item.refresh_interval <= horizon:
                scoreable.add((item.item_id, version))
                opportunities += len(runtime.caching_nodes)
    first: dict[tuple[int, int, int], float] = {}
    for update in runtime.update_log:
        if (update.item_id, update.version) not in scoreable:
            continue
        key = (update.item_id, update.version, update.node)
        delay = update.delay
        if key not in first or delay < first[key]:
            first[key] = delay
    return list(first.values()), opportunities


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    seed = settings.seeds[0]
    trace = make_trace(settings, seed)
    catalog = make_catalog(settings, choose_sources(trace, settings))
    interval = settings.refresh_interval

    series: dict[str, list[float]] = {}
    coverage_rows = []
    data: dict[str, dict] = {}
    for scheme in SCHEMES:
        runtime = build_simulation(
            trace, catalog, scheme=scheme,
            num_caching_nodes=settings.num_caching_nodes, seed=seed,
            refresh_jitter=settings.refresh_jitter,
        )
        runtime.run(until=settings.duration)
        delays, opportunities = _first_delays(runtime, settings.duration)
        sorted_delays = np.sort(delays) if delays else np.array([])
        cdf = []
        for fraction in GRID_FRACTIONS:
            x = fraction * interval
            within = int(np.searchsorted(sorted_delays, x, side="right"))
            cdf.append(round(within / opportunities, 4) if opportunities else float("nan"))
        series[scheme] = cdf
        delivered = len(delays) / opportunities if opportunities else float("nan")
        median = float(np.median(sorted_delays)) / 3600.0 if len(sorted_delays) else float("nan")
        coverage_rows.append(
            {
                "scheme": scheme,
                "delivered": round(delivered, 3),
                "median_delay_h": round(median, 2),
            }
        )
        data[scheme] = {"cdf": cdf, "delivered": delivered,
                        "median_delay_h": median}
    x_labels = [f"{f:g}R" for f in GRID_FRACTIONS]
    text = "\n\n".join(
        [
            format_series("delay", x_labels, series, title=TITLE, precision=3),
            format_table(coverage_rows,
                         title="delivery coverage and median delay "
                               "(over delivered updates)",
                         precision=3),
        ]
    )
    return ExperimentResult(
        exp_id="E12",
        title=TITLE,
        text=text,
        data={"grid_fractions": GRID_FRACTIONS, "series": series,
              "coverage": data},
        notes="flooding's CDF dominates; hdr tracks it; the x = 1R column "
        "is each scheme's on-time ratio.",
    )
