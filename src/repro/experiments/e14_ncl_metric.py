"""E14 -- caching-node selection metric ablation (substrate claim).

The cooperative-caching substrate places data at "network central
locations" ranked by the expected number of distinct nodes met within a
window.  This ablation swaps that metric for alternatives -- total
contact rate (degree), delay-weighted betweenness, and uniform random
selection -- and measures the effect on HDR's freshness and on the
query plane.

Expected shape: contact ~ degree > betweenness > random.  The contact
metric's saturation per neighbour matters little when rates are
moderate, so degree is close; random selection loses because poorly
connected caching nodes are both hard to refresh *and* hard to query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary, judge_queries
from repro.analysis.tables import format_table
from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable
from repro.core.scheme import build_simulation
from repro.experiments.artifacts import seed_artifacts
from repro.experiments.config import Settings
from repro.experiments.parallel import run_tasks
from repro.experiments.runner import ExperimentResult, make_catalog
from repro.mobility.trace import ContactTrace
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries

TITLE = "Caching-node selection metric ablation (hdr)"

METRICS = ["contact", "degree", "betweenness", "random"]


@dataclass(frozen=True)
class _MetricJob:
    """One (seed, ncl-metric) HDR run with queries, picklable."""

    metric: str
    seed: int
    settings: Settings
    trace: ContactTrace
    rates: RateTable
    catalog: DataCatalog


def _metric_job(job: _MetricJob) -> tuple[float, float, float]:
    """Worker: one metric-ablation run, returns (freshness, answered,
    fresh-answer ratio)."""
    settings = job.settings
    runtime = build_simulation(
        job.trace, job.catalog, scheme="hdr",
        num_caching_nodes=settings.num_caching_nodes, rates=job.rates,
        seed=job.seed, with_queries=True, ncl_metric=job.metric,
        refresh_jitter=settings.refresh_jitter,
    )
    runtime.install_freshness_probe(
        interval=settings.probe_interval, until=settings.duration
    )
    schedule_queries(
        runtime,
        rate_per_node=settings.query_rate,
        duration=settings.duration,
        rng=np.random.default_rng(job.seed * 7919 + 17),
        popularity=ZipfPopularity(job.catalog.item_ids, s=settings.zipf_exponent),
    )
    runtime.run(until=settings.duration)
    fresh = freshness_summary(
        runtime, t0=settings.warmup_fraction * settings.duration
    )
    outcomes = judge_queries(runtime.query_records(), runtime.history, job.catalog)
    return fresh.freshness, outcomes.answer_ratio, outcomes.fresh_ratio


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    rows = []
    data: dict[str, dict] = {}
    collected: dict[str, dict[str, list[float]]] = {
        name: {"freshness": [], "answered": [], "fresh_answers": []}
        for name in METRICS
    }
    per_seed = {seed: seed_artifacts(settings, seed) for seed in settings.seeds}
    catalogs = {
        seed: make_catalog(settings, art.sources(settings.num_sources))
        for seed, art in per_seed.items()
    }
    specs = [
        _MetricJob(
            metric=metric, seed=seed, settings=settings,
            trace=per_seed[seed].trace, rates=per_seed[seed].rates,
            catalog=catalogs[seed],
        )
        for seed in settings.seeds
        for metric in METRICS
    ]
    for spec, outcome in zip(specs, run_tasks(_metric_job, specs, jobs=jobs)):
        collected[spec.metric]["freshness"].append(outcome[0])
        collected[spec.metric]["answered"].append(outcome[1])
        collected[spec.metric]["fresh_answers"].append(outcome[2])
    for metric in METRICS:
        bucket = collected[metric]
        row = {
            "metric": metric,
            "freshness": round(summarize(bucket["freshness"]).mean, 3),
            "answered": round(summarize(bucket["answered"]).mean, 3),
            "fresh_answers": round(summarize(bucket["fresh_answers"]).mean, 3),
        }
        rows.append(row)
        data[metric] = row
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E14",
        title=TITLE,
        text=text,
        data=data,
        notes="centrality-driven selection (contact/degree) should beat "
        "random; the query plane feels it most.",
    )
