"""E7 -- impact of the number of caching nodes.

Sweeps the caching-node count.  With few caching nodes the source can
refresh everyone directly and all active schemes look similar; as the
set grows, source-only degrades (one node cannot meet everyone inside
the window) while HDR stays roughly flat -- the hierarchy spreads
responsibility, which is the scalability argument of the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.tables import format_series
from repro.experiments.config import Settings
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.experiments.runner import ExperimentResult

TITLE = "Time-averaged cache freshness vs number of caching nodes"

SCHEMES = ["hdr", "flooding", "flat", "source"]
COUNTS = [4, 8, 12, 16, 20, 24]
FAST_COUNTS = [3, 5, 8]


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    counts = FAST_COUNTS if settings.profile == "small" else COUNTS
    freshness: dict[str, list[float]] = {name: [] for name in SCHEMES}
    overhead: dict[str, list[float]] = {name: [] for name in SCHEMES}
    points = [
        SweepPoint(settings=settings, schemes=tuple(SCHEMES),
                   num_caching_nodes=count)
        for count in counts
    ]
    for results in run_sweep(points, jobs=jobs):
        for name in SCHEMES:
            freshness[name].append(
                round(summarize([m.freshness for m in results[name]]).mean, 4)
            )
            overhead[name].append(
                round(summarize([m.messages for m in results[name]]).mean, 1)
            )
    text = "\n\n".join(
        [
            format_series("n_cache", counts, freshness,
                          title=f"{TITLE} -- freshness", precision=3),
            format_series(
                "n_cache",
                counts,
                overhead,
                title="refresh transmissions",
                precision=1,
            ),
        ]
    )
    return ExperimentResult(
        exp_id="E7",
        title=TITLE,
        text=text,
        data={"counts": counts, "freshness": freshness, "overhead": overhead},
        notes="source should degrade with n_cache; hdr should stay roughly flat.",
    )
