"""E15 -- scheme robustness under injected faults.

Sweeps a grid of message-loss rates crossed with node-crash rates (the
two fault axes that attack a refresh scheme from opposite sides: loss
starves propagation hop by hop, crashes wipe out accumulated state) and
reports freshness and access validity per scheme at every grid point.
Crashed caches restart **cold** here (``cache_persistence="wipe"``) --
the harsher of the two persistence models, and the one that separates
schemes by how quickly they re-populate a caching node.

The fault grid rides the ordinary sweep machinery: each
:class:`~repro.experiments.parallel.SweepPoint` carries its own
:class:`~repro.faults.plan.FaultPlan`, so the runs parallelise, cache
per-seed artifacts, and checkpoint/resume exactly like every other
experiment.  The (0, 0) corner runs with no plan installed at all and
doubles as the in-experiment baseline.

Expected shape: freshness decays smoothly with loss (each hop is an
independent Bernoulli, so deep relay trees pay a compounding toll) and
drops sharply with crash rate under cold restarts; flooding buys back
loss-robustness with its message overhead, while the hierarchical
scheme degrades more gracefully than flat relaying at equal budget.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.tables import format_table
from repro.experiments.config import Settings
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.experiments.runner import ExperimentResult
from repro.faults.plan import FaultPlan

TITLE = "Freshness and validity under message loss x node crashes"

SCHEMES = ("hdr", "flat", "flooding")

LOSS_RATES = [0.0, 0.1, 0.3]
CRASH_RATES = [0.0, 1.0, 4.0]  # crashes per node per day
FAST_LOSS_RATES = [0.0, 0.3]
FAST_CRASH_RATES = [0.0, 4.0]

MEAN_DOWNTIME_S = 2 * 3600.0


def _plan(loss: float, crash: float) -> Optional[FaultPlan]:
    if loss == 0.0 and crash == 0.0:
        return None  # the baseline corner runs without any fault layer
    return FaultPlan(
        loss_rate=loss,
        crash_rate_per_day=crash,
        mean_downtime_s=MEAN_DOWNTIME_S,
        cache_persistence="wipe",
    )


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    fast = settings.profile == "small"
    loss_rates = FAST_LOSS_RATES if fast else LOSS_RATES
    crash_rates = FAST_CRASH_RATES if fast else CRASH_RATES

    grid = [(loss, crash) for loss in loss_rates for crash in crash_rates]
    points = [
        SweepPoint(
            settings=settings,
            schemes=SCHEMES,
            fault_plan=_plan(loss, crash),
        )
        for loss, crash in grid
    ]
    results = run_sweep(points, jobs=jobs)

    rows = []
    freshness: dict[str, list[float]] = {name: [] for name in SCHEMES}
    validity: dict[str, list[float]] = {name: [] for name in SCHEMES}
    messages: dict[str, list[float]] = {name: [] for name in SCHEMES}
    for (loss, crash), point_results in zip(grid, results):
        row = {"loss": loss, "crash/day": crash}
        for name in SCHEMES:
            runs = point_results[name]
            fresh = round(summarize([m.freshness for m in runs]).mean, 4)
            valid = round(summarize([m.validity for m in runs]).mean, 4)
            msgs = round(summarize([m.messages for m in runs]).mean, 1)
            freshness[name].append(fresh)
            validity[name].append(valid)
            messages[name].append(msgs)
            row[f"{name}.fresh"] = fresh
            row[f"{name}.valid"] = valid
        rows.append(row)

    text = format_table(rows, title=f"{TITLE} (mean over seeds)")
    return ExperimentResult(
        exp_id="E15",
        title=TITLE,
        text=text,
        data={
            "loss_rates": loss_rates,
            "crash_rates": crash_rates,
            "grid": grid,
            "freshness": freshness,
            "validity": validity,
            "messages": messages,
        },
        notes=(
            "crashed caches restart cold (wipe); the (0,0) corner runs "
            "with no fault layer installed and is the exact baseline."
        ),
    )
