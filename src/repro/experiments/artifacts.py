"""Per-seed artifact cache shared across schemes and sweep points.

Every experiment pairs its schemes on the *same* trace realisation per
seed, and most sweep points reuse that realisation too (a sweep varies
protocol knobs, not the mobility).  Yet the seed's expensive derived
artifacts -- the trace itself, the whole-trace MLE contact rates, the
contact-centrality ranking, and the source selection -- used to be
recomputed for every single run.

:func:`seed_artifacts` computes them exactly once per
``(profile, duration, seed)`` and memoises the result in a small
process-local LRU, so:

* serial sweeps stop re-deriving the same trace dozens of times, and
* the parallel runner ships the precomputed artifacts to its workers
  instead of having each job regenerate them.

Everything cached here is a pure deterministic function of the key, so
cache hits are byte-identical to recomputation and the cache can never
change a result.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.contacts.centrality import contact_centrality, rank_nodes
from repro.contacts.rates import RateTable, mle_rates
from repro.mobility.calibration import get_profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import Settings
    from repro.mobility.trace import ContactTrace

#: centrality window used for the source ranking (matches
#: :func:`repro.experiments.runner.choose_sources`)
SOURCE_RANKING_WINDOW = 6 * 3600.0

#: maximum number of (profile, duration, seed) entries kept alive
CACHE_SIZE = 32


@dataclass(frozen=True)
class SeedArtifacts:
    """Everything derivable from ``(profile, duration, seed)`` alone."""

    profile: str
    duration: float
    seed: int
    trace: "ContactTrace"
    rates: RateTable
    #: node ids ranked by contact centrality, most central first
    ranking: tuple[int, ...]

    def sources(self, num_sources: int) -> list[int]:
        """Median-centrality source selection (see ``choose_sources``)."""
        return sources_from_ranking(self.ranking, num_sources)


def sources_from_ranking(ranking: tuple[int, ...], num_sources: int) -> list[int]:
    """Slice ``num_sources`` median-centrality nodes out of a ranking.

    Sources are ordinary members of the network -- neither the social
    hubs (those become caching nodes) nor isolated stragglers (a source
    nobody meets starves every scheme equally but mostly measures the
    trace, not the scheme).  Taking nodes from the middle of the
    centrality ranking is deterministic and portable across traces.
    """
    middle = len(ranking) // 2
    picked = ranking[middle : middle + num_sources]
    if len(picked) < num_sources:
        picked = ranking[-num_sources:]
    return sorted(picked)


_cache: "OrderedDict[tuple[str, float, int], SeedArtifacts]" = OrderedDict()


def seed_artifacts(settings: "Settings", seed: int) -> SeedArtifacts:
    """The cached artifacts of one ``(profile, duration, seed)`` triple."""
    key = (settings.profile, float(settings.duration), int(seed))
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        return cached
    artifacts = _compute(settings.profile, float(settings.duration), int(seed))
    _cache[key] = artifacts
    while len(_cache) > CACHE_SIZE:
        _cache.popitem(last=False)
    return artifacts


def cache_put(artifacts: SeedArtifacts) -> None:
    """Insert precomputed artifacts (a worker receiving them from the
    parent process seeds its local cache with this)."""
    key = (artifacts.profile, artifacts.duration, artifacts.seed)
    _cache[key] = artifacts
    _cache.move_to_end(key)
    while len(_cache) > CACHE_SIZE:
        _cache.popitem(last=False)


def artifacts_for_trace(trace: "ContactTrace") -> SeedArtifacts | None:
    """The cached entry whose trace *is* ``trace``, if any.

    Identity (not equality) is the test: a cached ranking may only be
    reused for the exact trace object it was derived from.
    """
    for artifacts in _cache.values():
        if artifacts.trace is trace:
            return artifacts
    return None


def cache_clear() -> None:
    """Drop every cached entry (tests)."""
    _cache.clear()


def cache_info() -> dict[str, int]:
    """Current cache occupancy (diagnostics and tests)."""
    return {"entries": len(_cache), "max_entries": CACHE_SIZE}


def _compute(profile: str, duration: float, seed: int) -> SeedArtifacts:
    rng = np.random.default_rng(seed)
    trace = get_profile(profile).generate(rng, duration=duration)
    rates = mle_rates(trace)
    scores = contact_centrality(rates, window=SOURCE_RANKING_WINDOW)
    ranking = tuple(rank_nodes(scores))
    return SeedArtifacts(
        profile=profile,
        duration=duration,
        seed=seed,
        trace=trace,
        rates=rates,
        ranking=ranking,
    )
