"""Fault-tolerant sweep execution: timeouts, retries, crash recovery.

:func:`run_tasks_resilient` is a drop-in executor for the same
``(fn, specs)`` contract as :func:`repro.experiments.parallel.run_tasks`
that survives the failure modes a plain ``ProcessPoolExecutor.map``
does not:

* **job failure** -- an exception in ``fn`` is retried up to
  ``max_retries`` times with exponential backoff and deterministic
  jitter (seeded from the job index, so pacing never makes a run
  irreproducible);
* **job hang** -- a per-job wall-clock ``job_timeout``; a pool worker
  cannot be interrupted mid-call, so an expired job tears the pool down,
  requeues the innocent in-flight jobs at no attempt cost, counts an
  attempt against the expired ones, and rebuilds the pool;
* **worker crash** -- a worker dying (OOM kill, segfault, ``os._exit``)
  breaks the whole pool; every in-flight job is requeued and the pool is
  rebuilt, with an attempt charged only to jobs that keep breaking it;
* **process death** -- with a :class:`~repro.experiments.checkpoint.SweepJournal`
  attached, each finished job is journaled immediately, so a killed run
  resumed with the same sweep skips straight to the missing jobs and
  merges byte-identically to an uninterrupted run.

Jobs that exhaust their retries raise :class:`SweepIncomplete` by
default; ``on_failure="partial"`` degrades gracefully instead -- failed
slots come back as ``None`` and the journal's ``manifest.json`` records
which jobs failed and why.

Activation is contextual, mirroring ``runner.trace_output``: the
:func:`resilient_execution` context manager installs a policy (and
optionally a journal) that ``run_tasks`` consults, so every experiment
built on ``run_tasks``/``run_sweep`` gains checkpoint/resume and retry
without signature changes.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.experiments.checkpoint import SweepJournal


class SweepIncomplete(RuntimeError):
    """Raised when jobs exhaust their retries and partial results were
    not requested.  Carries the per-job errors for diagnosis."""

    def __init__(self, failures: dict[int, str],
                 manifest: Optional[str] = None) -> None:
        self.failures = failures
        self.manifest = manifest
        detail = "; ".join(
            f"job {index}: {error}" for index, error in sorted(failures.items())
        )
        hint = f" (partial results manifest: {manifest})" if manifest else ""
        super().__init__(
            f"{len(failures)} job(s) failed after retries{hint}: {detail}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a job up."""

    #: retries after the first attempt (0 = fail fast)
    max_retries: int = 2
    #: per-job wall-clock budget in seconds; ``None`` disables timeouts.
    #: Only enforceable with a process pool (``jobs > 1``) -- an inline
    #: serial job cannot be interrupted, which :func:`run_tasks_resilient`
    #: warns about once.
    job_timeout: Optional[float] = None
    #: first backoff sleep in seconds
    backoff_base: float = 0.5
    #: multiplier per further retry
    backoff_factor: float = 2.0
    #: relative jitter amplitude (0.25 = up to +25%)
    backoff_jitter: float = 0.25
    #: ``"raise"`` -> :class:`SweepIncomplete` on permanent failure;
    #: ``"partial"`` -> failed slots become ``None`` in the result list
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base >= 0 and backoff_factor >= 1 required")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.on_failure not in ("raise", "partial"):
            raise ValueError("on_failure must be 'raise' or 'partial'")

    def backoff(self, index: int, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based) of job
        ``index``; jitter is a pure function of (index, attempt)."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter > 0.0:
            digest = hashlib.sha256(f"{index}:{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
            base *= 1.0 + self.backoff_jitter * unit
        return base


@dataclass
class ReliabilityContext:
    """The active policy/journal pair installed by
    :func:`resilient_execution`."""

    policy: RetryPolicy
    journal: Optional[SweepJournal] = None


_CONTEXT: Optional[ReliabilityContext] = None


def current_context() -> Optional[ReliabilityContext]:
    """The installed :class:`ReliabilityContext`, if any."""
    return _CONTEXT


@contextmanager
def resilient_execution(
    policy: Optional[RetryPolicy] = None,
    journal: Optional[SweepJournal] = None,
):
    """Run every ``run_tasks`` sweep in the with-block resiliently.

    Not reentrant, and the journal binds to the **first** sweep executed
    inside the block (checkpointing one multi-sweep experiment under a
    single journal would mix fingerprints).
    """
    global _CONTEXT
    if _CONTEXT is not None:
        raise RuntimeError("resilient_execution() is not reentrant")
    context = ReliabilityContext(policy=policy or RetryPolicy(),
                                 journal=journal)
    _CONTEXT = context
    try:
        yield context
    finally:
        _CONTEXT = None
        if journal is not None:
            journal.close()


def run_tasks_resilient(
    fn: Callable[[Any], Any],
    specs: Sequence[Any],
    jobs: Optional[int] = None,
    context: Optional[ReliabilityContext] = None,
) -> list[Any]:
    """Apply ``fn`` to every spec with retries, timeouts and checkpointing.

    Results come back in input order (``None`` for permanently failed
    jobs under ``on_failure="partial"``), exactly as
    :func:`~repro.experiments.parallel.run_tasks` would order them.
    """
    from repro.experiments.parallel import resolve_jobs

    if context is None:
        context = current_context() or ReliabilityContext(RetryPolicy())
    policy = context.policy
    journal = context.journal
    specs = list(specs)
    results: dict[int, Any] = {}
    failures: dict[int, str] = {}
    attempts: dict[int, int] = {i: 0 for i in range(len(specs))}

    if journal is not None:
        from repro.experiments.checkpoint import sweep_fingerprint

        if journal.fingerprint is None:
            journal.open(fn, specs)
        elif journal.fingerprint != sweep_fingerprint(fn, specs):
            # The journal bound to an earlier sweep in this context
            # (e.g. an experiment that fans out more than once); run
            # this one without checkpointing rather than mixing keys.
            journal = None
    if journal is not None:
        for index, result in journal.completed().items():
            if 0 <= index < len(specs):
                results[index] = result

    todo = [i for i in range(len(specs)) if i not in results]
    workers = resolve_jobs(jobs)
    if todo:
        if workers <= 1 or len(todo) <= 1:
            if policy.job_timeout is not None:
                warnings.warn(
                    "job_timeout requires a process pool (jobs > 1); "
                    "running serially without timeout enforcement",
                    stacklevel=2,
                )
            _run_serial(fn, specs, todo, policy, journal, results, failures,
                        attempts)
        else:
            _run_pool(fn, specs, todo, min(workers, len(todo)), policy,
                      journal, results, failures, attempts)

    manifest_path: Optional[str] = None
    if journal is not None:
        manifest_path = str(journal.write_manifest(failures))
    if failures and policy.on_failure == "raise":
        raise SweepIncomplete(failures, manifest=manifest_path)
    return [results.get(i) for i in range(len(specs))]


def _record_success(journal: Optional[SweepJournal], index: int, result: Any,
                    attempts: int, results: dict[int, Any]) -> None:
    results[index] = result
    if journal is not None:
        try:
            journal.record(index, result, attempts=attempts)
        except TypeError as exc:
            # Unjournalable result type: resume cannot help this sweep,
            # but the in-memory run is unaffected.
            warnings.warn(f"not journaling job {index}: {exc}", stacklevel=2)


def _run_serial(
    fn: Callable[[Any], Any],
    specs: list[Any],
    todo: Sequence[int],
    policy: RetryPolicy,
    journal: Optional[SweepJournal],
    results: dict[int, Any],
    failures: dict[int, str],
    attempts: dict[int, int],
) -> None:
    for index in todo:
        while True:
            attempts[index] += 1
            try:
                result = fn(specs[index])
            except Exception as exc:  # noqa: BLE001 - retry boundary
                if attempts[index] > policy.max_retries:
                    failures[index] = f"{type(exc).__name__}: {exc}"
                    break
                time.sleep(policy.backoff(index, attempts[index]))
                continue
            _record_success(journal, index, result, attempts[index], results)
            break


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard teardown: a hung worker never returns, so a graceful
    ``shutdown(wait=True)`` would block forever.  Terminate the worker
    processes first, then reap the executor."""
    # Capture the workers before shutdown() drops its reference to them.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - stuck in kernel
            process.kill()
            process.join(timeout=5.0)


def _run_pool(
    fn: Callable[[Any], Any],
    specs: list[Any],
    todo: Sequence[int],
    workers: int,
    policy: RetryPolicy,
    journal: Optional[SweepJournal],
    results: dict[int, Any],
    failures: dict[int, str],
    attempts: dict[int, int],
) -> None:
    """Pool executor with per-job deadlines and crash recovery.

    The pool runs in *epochs*: within an epoch jobs are submitted as
    slots free up; a timeout or a broken pool ends the epoch (in-flight
    jobs are requeued -- only the offender is charged an attempt) and a
    fresh pool starts the next one.  A job that has exhausted its
    retries is recorded as failed and never resubmitted.
    """
    queue: deque[int] = deque(todo)
    #: earliest monotonic time a job may be resubmitted (retry backoff)
    ready_at: dict[int, float] = {}

    def fail_or_requeue(index: int, error: str) -> None:
        """Charge an attempt; queue a retry or record the failure."""
        if attempts[index] > policy.max_retries:
            failures[index] = error
        else:
            ready_at[index] = (
                time.monotonic() + policy.backoff(index, attempts[index])
            )
            queue.append(index)

    while queue:
        pool = ProcessPoolExecutor(max_workers=workers)
        running: dict[Any, int] = {}
        deadline: dict[Any, float] = {}
        #: set when the epoch must end with a hard pool kill (timeout)
        forced = False
        try:
            while queue or running:
                # Fill free slots with jobs whose backoff has elapsed.
                now = time.monotonic()
                blocked: list[int] = []
                while queue and len(running) < workers:
                    index = queue.popleft()
                    if ready_at.get(index, 0.0) > now:
                        blocked.append(index)
                        continue
                    attempts[index] += 1
                    future = pool.submit(fn, specs[index])
                    running[future] = index
                    if policy.job_timeout is not None:
                        deadline[future] = now + policy.job_timeout
                queue.extend(blocked)
                if not running:
                    # Everything pending is backing off; sleep it out.
                    wake = min(ready_at.get(i, 0.0) for i in queue)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue
                timeout = None
                if deadline:
                    timeout = max(0.05, min(deadline.values()) - time.monotonic())
                done, _ = wait(set(running), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    index = running.pop(future)
                    deadline.pop(future, None)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # The worker died; every in-flight sibling is a
                        # casualty of the same pool. Requeue them at no
                        # attempt cost, charge only this job, rebuild.
                        fail_or_requeue(
                            index, "worker process died (BrokenProcessPool)"
                        )
                        broken = True
                        break
                    except Exception as exc:  # noqa: BLE001 - retry boundary
                        fail_or_requeue(index, f"{type(exc).__name__}: {exc}")
                    else:
                        _record_success(journal, index, result,
                                        attempts[index], results)
                if broken:
                    break
                # Expired deadlines: a pool worker cannot be interrupted,
                # so tear the pool down. In-flight innocents requeue free.
                now = time.monotonic()
                expired = [f for f, t in deadline.items() if t <= now]
                if expired:
                    for future in expired:
                        index = running.pop(future)
                        deadline.pop(future, None)
                        fail_or_requeue(
                            index,
                            f"timed out after {policy.job_timeout:.1f}s",
                        )
                    forced = True
                    break
            # Epoch over (all done, or rebuilding): requeue in-flight
            # innocents at no attempt cost.
            for sibling in running.values():
                attempts[sibling] -= 1
                queue.append(sibling)
            running.clear()
        finally:
            if forced:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
