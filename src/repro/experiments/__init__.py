"""Experiment harness: one module per reproduced table/figure.

Every experiment module exposes ``run(settings, jobs=None) ->
ExperimentResult``; :data:`EXPERIMENTS` maps the stable experiment ids
(E1..E8, see DESIGN.md) to those callables.  ``settings`` is an
:class:`~repro.experiments.config.Settings` instance; ``Settings.fast()``
gives the scaled-down variant the CI benchmarks run.  ``jobs`` selects
the process-pool worker count (``None`` consults ``$REPRO_JOBS``, then
runs serially); parallel output is identical to serial.
"""

from repro.experiments.artifacts import SeedArtifacts, seed_artifacts
from repro.experiments.config import Settings
from repro.experiments.parallel import (
    SweepPoint,
    resolve_jobs,
    run_sweep,
    run_tasks,
)
from repro.experiments.runner import (
    ExperimentResult,
    RunMetrics,
    make_trace,
    run_once,
    run_replicated,
)
from repro.experiments import (
    e1_traces,
    e2_intercontact,
    e3_freshness_time,
    e4_refresh_interval,
    e5_validity,
    e6_overhead,
    e7_caching_nodes,
    e8_ablation,
    e9_churn,
    e10_estimation,
    e11_cache_pressure,
    e12_delay_cdf,
    e13_invalidation,
    e14_ncl_metric,
    e15_fault_tolerance,
    e16_model_validation,
)

#: E1-E8 and E12 reproduce the paper's (reconstructed) tables and
#: figures; E9-E11 and E13-E16 are extensions exercising maintenance,
#: estimation, cache pressure, consistency-model, NCL-selection,
#: fault-tolerance and model-validation aspects (see DESIGN.md's
#: experiment index).
EXPERIMENTS = {
    "E1": e1_traces.run,
    "E2": e2_intercontact.run,
    "E3": e3_freshness_time.run,
    "E4": e4_refresh_interval.run,
    "E5": e5_validity.run,
    "E6": e6_overhead.run,
    "E7": e7_caching_nodes.run,
    "E8": e8_ablation.run,
    "E9": e9_churn.run,
    "E10": e10_estimation.run,
    "E11": e11_cache_pressure.run,
    "E12": e12_delay_cdf.run,
    "E13": e13_invalidation.run,
    "E14": e14_ncl_metric.run,
    "E15": e15_fault_tolerance.run,
    "E16": e16_model_validation.run,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "RunMetrics",
    "SeedArtifacts",
    "Settings",
    "SweepPoint",
    "make_trace",
    "resolve_jobs",
    "run_once",
    "run_replicated",
    "run_sweep",
    "run_tasks",
    "seed_artifacts",
]
