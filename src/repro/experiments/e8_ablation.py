"""E8 -- design ablations.

Four sub-studies isolating HDR's design choices (DESIGN.md section 4):

- **A: assignment** -- rate-aware vs random responsibility assignment at
  identical structure budgets.
- **B: hierarchy** -- tree vs flat (star) at the default caching set.
- **C: relay budget** -- sweep ``max_relays`` for HDR: achieved on-time
  refresh ratio and the analytical per-edge prediction, side by side.
  The analytical ``plan.achieved`` should upper-track the empirical
  ratio as the budget grows.
- **D: depth budget** -- sweep ``max_depth`` (depth 1 = flat).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.tables import format_table
from repro.core.scheme import build_simulation, scheme_variant
from repro.experiments.config import Settings
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.experiments.runner import (
    ExperimentResult,
    analytic_on_time,
    choose_sources,
    make_catalog,
    make_trace,
)

TITLE = "Ablations: assignment, hierarchy, relay budget, depth budget"

RELAY_BUDGETS = [0, 1, 2, 3, 5, 8]
FAST_RELAY_BUDGETS = [0, 2, 5]
DEPTHS = [1, 2, 3, 4]
FAST_DEPTHS = [1, 2, 3]


def _comparison_rows(results, names) -> list[dict]:
    rows = []
    for name in names:
        runs = results[name]
        rows.append(
            {
                "scheme": name,
                "freshness": round(summarize([m.freshness for m in runs]).mean, 3),
                "on_time": round(summarize([m.on_time_ratio for m in runs]).mean, 3),
                "messages": round(summarize([m.messages for m in runs]).mean, 1),
            }
        )
    return rows


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    fast = settings.profile == "small"
    budgets = FAST_RELAY_BUDGETS if fast else RELAY_BUDGETS
    depths = FAST_DEPTHS if fast else DEPTHS

    budget_variants = [
        scheme_variant("hdr", max_relays=budget, name=f"hdr-k{budget}")
        for budget in budgets
    ]
    depth_variants = [
        scheme_variant("hdr", structure="star", max_depth=1, name="hdr-d1")
        if depth == 1
        else scheme_variant("hdr", max_depth=depth, name=f"hdr-d{depth}")
        for depth in depths
    ]

    # All four sub-studies fan out as one batch of independent jobs:
    # point 0 is A (assignment), point 1 is B (hierarchy), then one
    # point per relay budget (C) and one per depth (D).
    points = [
        SweepPoint(settings=settings, schemes=("hdr", "random")),
        SweepPoint(settings=settings, schemes=("hdr", "flat")),
    ]
    points += [SweepPoint(settings=settings, schemes=(v,)) for v in budget_variants]
    points += [SweepPoint(settings=settings, schemes=(v,)) for v in depth_variants]
    swept = run_sweep(points, jobs=jobs)
    results_a, results_b = swept[0], swept[1]
    swept_c = swept[2 : 2 + len(budgets)]
    swept_d = swept[2 + len(budgets) :]

    table_a = format_table(
        _comparison_rows(results_a, ["hdr", "random"]),
        title="A. rate-aware vs random assignment",
        precision=3,
    )
    table_b = format_table(
        _comparison_rows(results_b, ["hdr", "flat"]),
        title="B. hierarchy (tree) vs flat (star)",
        precision=3,
    )

    # C: relay budget sweep, empirical vs analytical.
    rows_c = []
    data_c = {}
    for budget, variant, results in zip(budgets, budget_variants, swept_c):
        runs = results[variant.name]
        # Analytical prediction from one representative build.
        trace = make_trace(settings, settings.seeds[0])
        catalog = make_catalog(settings, choose_sources(trace, settings))
        runtime = build_simulation(
            trace, catalog, scheme=variant,
            num_caching_nodes=settings.num_caching_nodes, seed=settings.seeds[0],
        )
        predicted = analytic_on_time(runtime)
        empirical = summarize([m.on_time_ratio for m in runs]).mean
        rows_c.append(
            {
                "max_relays": budget,
                "on_time_empirical": round(empirical, 3),
                "end_to_end_analytical": round(predicted, 3),
                "messages": round(summarize([m.messages for m in runs]).mean, 1),
            }
        )
        data_c[budget] = {"empirical": empirical, "analytical": predicted}
    table_c = format_table(rows_c, title="C. relay budget sweep (hdr)", precision=3)

    # D: depth budget sweep.
    rows_d = []
    for depth, variant, results in zip(depths, depth_variants, swept_d):
        runs = results[variant.name]
        rows_d.append(
            {
                "max_depth": depth,
                "freshness": round(summarize([m.freshness for m in runs]).mean, 3),
                "on_time": round(summarize([m.on_time_ratio for m in runs]).mean, 3),
                "messages": round(summarize([m.messages for m in runs]).mean, 1),
            }
        )
    table_d = format_table(rows_d, title="D. depth budget sweep (hdr)", precision=3)

    text = "\n\n".join([table_a, table_b, table_c, table_d])
    return ExperimentResult(
        exp_id="E8",
        title=TITLE,
        text=text,
        data={
            "assignment": _comparison_rows(results_a, ["hdr", "random"]),
            "hierarchy": _comparison_rows(results_b, ["hdr", "flat"]),
            "relay_budget": data_c,
            "depth": rows_d,
        },
        notes="rate-aware > random; on-time ratio rises with relay budget.",
    )
