"""Shared machinery for running scheme-comparison experiments.

``run_once`` wires and runs one (trace, scheme) simulation and collects
every metric the tables need into a :class:`RunMetrics`.
``run_replicated`` repeats that across seeds -- each seed generates its
own trace realisation, and all schemes of a seed share that trace and
the same pre-scheduled query workload, the paper-style paired
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.metrics import freshness_summary, judge_queries, refresh_outcomes
from repro.caching.items import DataCatalog
from repro.contacts.centrality import contact_centrality, rank_nodes
from repro.contacts.rates import mle_rates
from repro.core.scheme import SchemeConfig, build_simulation
from repro.experiments.config import Settings
from repro.mobility.calibration import get_profile
from repro.mobility.trace import ContactTrace
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries


@dataclass
class RunMetrics:
    """Everything one simulation run reports."""

    scheme: str
    seed: int
    freshness: float
    validity: float
    messages: float
    messages_per_update: float
    on_time_ratio: float
    refresh_delay: float
    queries_issued: int = 0
    query_answer_ratio: float = float("nan")
    query_fresh_ratio: float = float("nan")
    query_valid_ratio: float = float("nan")
    query_validity_e2e: float = float("nan")
    query_delay: float = float("nan")


@dataclass
class ExperimentResult:
    """A reproduced table/figure: formatted text plus raw data."""

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    notes: str = ""

    def __str__(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} ==", self.text]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def analytic_on_time(runtime) -> float:
    """Analytical end-to-end on-time refresh prediction of a wired runtime.

    For every (item, caching node), multiplies the planned per-hop
    delivery probabilities along the node's path to the source -- hops
    are provisioned independently, so the product is the planned
    probability that a new version reaches the node within its freshness
    window.  Returns the mean over all (item, node) pairs.
    """
    import math

    products = []
    for item_id, tree in runtime.trees.items():
        for node in tree.members:
            prob = 1.0
            path = tree.path_to_root(node)
            for child, parent in zip(path, path[1:]):
                plan = runtime.plans.get((item_id, parent, child))
                prob *= plan.achieved if plan is not None else 0.0
            products.append(prob)
    return sum(products) / len(products) if products else math.nan


def make_trace(settings: Settings, seed: int) -> ContactTrace:
    """One trace realisation of the settings' profile."""
    rng = np.random.default_rng(seed)
    return get_profile(settings.profile).generate(rng, duration=settings.duration)


def choose_sources(trace: ContactTrace, settings: Settings) -> list[int]:
    """Pick the source nodes: median-centrality devices.

    Sources are ordinary members of the network -- neither the social
    hubs (those become caching nodes) nor isolated stragglers (a source
    nobody meets starves every scheme equally but mostly measures the
    trace, not the scheme).  Taking nodes from the middle of the
    centrality ranking is deterministic and portable across traces.
    """
    rates = mle_rates(trace)
    scores = contact_centrality(rates, window=6 * 3600.0)
    ranked = rank_nodes(scores)
    middle = len(ranked) // 2
    picked = ranked[middle : middle + settings.num_sources]
    if len(picked) < settings.num_sources:
        picked = ranked[-settings.num_sources :]
    return sorted(picked)


def make_catalog(settings: Settings, sources: Sequence[int]) -> DataCatalog:
    return DataCatalog.uniform(
        num_items=settings.num_items,
        sources=list(sources),
        refresh_interval=settings.refresh_interval,
        lifetime=settings.lifetime,
        size=settings.item_size,
        freshness_requirement=settings.freshness_requirement,
    )


def run_once(
    trace: ContactTrace,
    scheme: str | SchemeConfig,
    settings: Settings,
    seed: int,
    with_queries: bool = False,
    catalog: Optional[DataCatalog] = None,
    num_caching_nodes: Optional[int] = None,
) -> RunMetrics:
    """Wire, run and score one simulation."""
    if catalog is None:
        catalog = make_catalog(settings, choose_sources(trace, settings))
    runtime = build_simulation(
        trace,
        catalog,
        scheme=scheme,
        num_caching_nodes=num_caching_nodes or settings.num_caching_nodes,
        seed=seed,
        with_queries=with_queries,
        refresh_jitter=settings.refresh_jitter,
    )
    horizon = settings.duration
    runtime.install_freshness_probe(interval=settings.probe_interval, until=horizon)
    queries_scheduled = 0
    if with_queries:
        popularity = ZipfPopularity(catalog.item_ids, s=settings.zipf_exponent)
        queries_scheduled = schedule_queries(
            runtime,
            rate_per_node=settings.query_rate,
            duration=horizon,
            rng=np.random.default_rng(seed * 7919 + 17),
            popularity=popularity,
        )
    runtime.run(until=horizon)

    warmup = settings.warmup_fraction * horizon
    fresh = freshness_summary(runtime, t0=warmup, t1=horizon)
    refresh = refresh_outcomes(
        runtime.update_log,
        runtime.history,
        catalog,
        runtime.caching_nodes,
        horizon=horizon,
        messages=runtime.refresh_overhead(),
    )
    metrics = RunMetrics(
        scheme=runtime.config.name,
        seed=seed,
        freshness=fresh.freshness,
        validity=fresh.validity,
        messages=refresh.messages,
        messages_per_update=refresh.messages_per_update,
        on_time_ratio=refresh.on_time_ratio,
        refresh_delay=refresh.mean_delay,
    )
    if with_queries:
        outcomes = judge_queries(runtime.query_records(), runtime.history, catalog)
        metrics.queries_issued = outcomes.issued
        metrics.query_answer_ratio = outcomes.answer_ratio
        metrics.query_fresh_ratio = outcomes.fresh_ratio
        metrics.query_valid_ratio = outcomes.valid_ratio
        metrics.query_validity_e2e = outcomes.end_to_end_validity
        metrics.query_delay = outcomes.mean_delay
        if queries_scheduled and outcomes.issued != queries_scheduled:
            # issue_query may add local-hit records; they are included.
            pass
    return metrics


def run_replicated(
    schemes: Sequence[str | SchemeConfig],
    settings: Settings,
    with_queries: bool = False,
    num_caching_nodes: Optional[int] = None,
) -> dict[str, list[RunMetrics]]:
    """Run every scheme on every seed's trace; paired across schemes."""
    results: dict[str, list[RunMetrics]] = {}
    for seed in settings.seeds:
        trace = make_trace(settings, seed)
        catalog = make_catalog(settings, choose_sources(trace, settings))
        for scheme in schemes:
            metrics = run_once(
                trace,
                scheme,
                settings,
                seed=seed,
                with_queries=with_queries,
                catalog=catalog,
                num_caching_nodes=num_caching_nodes,
            )
            results.setdefault(metrics.scheme, []).append(metrics)
    return results
