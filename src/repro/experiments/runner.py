"""Shared machinery for running scheme-comparison experiments.

``run_once`` wires and runs one (trace, scheme) simulation and collects
every metric the tables need into a :class:`RunMetrics`.
``run_replicated`` repeats that across seeds -- each seed generates its
own trace realisation, and all schemes of a seed share that trace and
the same pre-scheduled query workload, the paper-style paired
comparison.

Replication fans out through :mod:`repro.experiments.parallel`: pass
``jobs`` (or set ``REPRO_JOBS``) to run the independent (seed, scheme)
simulations on a process pool; ``jobs=1`` is the serial fallback and
parallel output is identical to it.  The per-seed trace, MLE rates and
centrality ranking are computed once per seed and shared across all
schemes via :mod:`repro.experiments.artifacts`.
"""

from __future__ import annotations

import dataclasses
import math
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.analysis.metrics import freshness_summary, judge_queries, refresh_outcomes
from repro.caching.items import DataCatalog
from repro.contacts.centrality import contact_centrality, rank_nodes
from repro.contacts.rates import RateTable, mle_rates
from repro.core.scheme import SchemeConfig, build_simulation
from repro.experiments.artifacts import (
    SOURCE_RANKING_WINDOW,
    artifacts_for_trace,
    seed_artifacts,
    sources_from_ranking,
)
from repro.experiments.config import Settings
from repro.mobility.trace import ContactTrace
from repro.workloads.cycles import QueryCycle, schedule_cycle_queries
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries

if TYPE_CHECKING:  # pragma: no cover
    from repro.caching.onpath import OnPathConfig
    from repro.caching.placement import PlacementPolicy


@dataclass
class RunMetrics:
    """Everything one simulation run reports."""

    scheme: str
    seed: int
    freshness: float
    validity: float
    messages: float
    messages_per_update: float
    on_time_ratio: float
    refresh_delay: float
    queries_issued: int = 0
    query_answer_ratio: float = float("nan")
    query_fresh_ratio: float = float("nan")
    query_valid_ratio: float = float("nan")
    query_validity_e2e: float = float("nan")
    query_delay: float = float("nan")

    def same_as(self, other: "RunMetrics") -> bool:
        """Exact field-by-field equality, treating NaN == NaN as true.

        Plain dataclass ``==`` is always false for runs without queries
        (the ``query_*`` fields default to NaN); this is the comparison
        the parallel-vs-serial determinism guarantee is stated in.
        """
        if not isinstance(other, RunMetrics):
            return NotImplemented
        for mine, theirs in zip(dataclasses.astuple(self),
                                dataclasses.astuple(other)):
            if mine != theirs and not (
                isinstance(mine, float) and isinstance(theirs, float)
                and math.isnan(mine) and math.isnan(theirs)
            ):
                return False
        return True


@dataclass
class ExperimentResult:
    """A reproduced table/figure: formatted text plus raw data."""

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    notes: str = ""

    def __str__(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} ==", self.text]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def analytic_on_time(runtime) -> float:
    """Analytical end-to-end on-time refresh prediction of a wired runtime.

    For every (item, caching node), multiplies the planned per-hop
    delivery probabilities along the node's path to the source -- hops
    are provisioned independently, so the product is the planned
    probability that a new version reaches the node within its freshness
    window.  Returns the mean over all (item, node) pairs.
    """
    import math

    products = []
    for item_id, tree in runtime.trees.items():
        for node in tree.members:
            prob = 1.0
            path = tree.path_to_root(node)
            for child, parent in zip(path, path[1:]):
                plan = runtime.plans.get((item_id, parent, child))
                prob *= plan.achieved if plan is not None else 0.0
            products.append(prob)
    return sum(products) / len(products) if products else math.nan


def make_trace(settings: Settings, seed: int) -> ContactTrace:
    """One trace realisation of the settings' profile.

    Served from the per-seed artifact cache: repeated calls with the
    same ``(profile, duration, seed)`` return the same (deterministic)
    trace object without regenerating it.
    """
    return seed_artifacts(settings, seed).trace


def choose_sources(trace: ContactTrace, settings: Settings) -> list[int]:
    """Pick the source nodes: median-centrality devices.

    Sources are ordinary members of the network -- neither the social
    hubs (those become caching nodes) nor isolated stragglers (a source
    nobody meets starves every scheme equally but mostly measures the
    trace, not the scheme).  Taking nodes from the middle of the
    centrality ranking is deterministic and portable across traces.

    When ``trace`` came out of the artifact cache the cached centrality
    ranking is reused; otherwise the ranking is derived here.
    """
    artifacts = artifacts_for_trace(trace)
    if artifacts is not None:
        return artifacts.sources(settings.num_sources)
    rates = mle_rates(trace)
    scores = contact_centrality(rates, window=SOURCE_RANKING_WINDOW)
    return sources_from_ranking(tuple(rank_nodes(scores)), settings.num_sources)


def make_catalog(settings: Settings, sources: Sequence[int]) -> DataCatalog:
    return DataCatalog.uniform(
        num_items=settings.num_items,
        sources=list(sources),
        refresh_interval=settings.refresh_interval,
        lifetime=settings.lifetime,
        size=settings.item_size,
        freshness_requirement=settings.freshness_requirement,
    )


class TraceSink:
    """Allocates per-job trace files under one user-requested path.

    ``repro run E4 --trace out.jsonl`` may execute many (point, seed,
    scheme) jobs; each gets its own JSONL file next to ``out.jsonl``
    (``out-p0-s1-hdr.jsonl`` ...), and :meth:`finalize` either renames a
    single file to the requested path or writes ``out.manifest.json``
    indexing them all (:func:`repro.obs.export.load_trace` merges a
    manifest transparently).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.entries: list[dict] = []
        #: the path ``finalize`` produced: the single trace file or the
        #: manifest (``None`` until finalized, or if nothing was traced)
        self.output: Optional[Path] = None

    def allocate(self, point: int, seed: int, scheme: "str | SchemeConfig") -> Path:
        """Reserve the trace file for one (point, seed, scheme) job."""
        name = scheme if isinstance(scheme, str) else scheme.name
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-") or "scheme"
        stem = self.path.stem or "trace"
        taken = {entry["path"] for entry in self.entries}
        base = f"{stem}-p{point}-s{seed}-{safe}"
        file_name = f"{base}.jsonl"
        suffix = 2
        while file_name in taken:
            file_name = f"{base}-{suffix}.jsonl"
            suffix += 1
        self.entries.append(
            {"point": point, "seed": seed, "scheme": name, "path": file_name}
        )
        return self.path.parent / file_name

    def finalize(self) -> Optional[Path]:
        """Rename a lone trace to the requested path, or write the manifest."""
        from repro.obs.export import write_manifest

        if not self.entries:
            return None
        if len(self.entries) == 1:
            only = self.path.parent / self.entries[0]["path"]
            if only.exists() and only != self.path:
                os.replace(only, self.path)
            self.output = self.path
            return self.output
        for entry in self.entries:
            file_path = self.path.parent / entry["path"]
            if file_path.exists():
                with open(file_path, "r", encoding="utf-8") as handle:
                    entry["records"] = sum(1 for line in handle if line.strip())
        manifest = self.path.with_name(f"{self.path.stem}.manifest.json")
        write_manifest(manifest, self.entries)
        self.output = manifest
        return self.output


#: The active sink, set by :func:`trace_output`.  ``run_once`` (serial)
#: and ``build_jobs`` (parallel) allocate their per-job trace files from
#: it, which is how ``--trace`` reaches every experiment without
#: threading a parameter through each experiment's signature.
_TRACE_SINK: Optional[TraceSink] = None

#: The active fault plan, set by :func:`fault_injection`.  Resolved by
#: ``run_once`` (serial) and ``build_jobs`` (parallel jobs carry the
#: resolved plan in their spec) -- the same pattern as ``_TRACE_SINK``,
#: and how ``--faults plan.toml`` reaches every experiment.
_FAULT_PLAN = None


@contextmanager
def fault_injection(plan):
    """Inject the :class:`~repro.faults.plan.FaultPlan` into every
    simulation run in the with-block.

    Baseline guarantee: a ``None`` (or null) plan installs nothing, so
    runs inside the block are bit-identical to runs outside it.  Not
    reentrant; an explicit ``fault_plan=`` argument (or a sweep point's
    own plan) takes precedence over the ambient one.
    """
    global _FAULT_PLAN
    if _FAULT_PLAN is not None:
        raise RuntimeError("fault_injection() is not reentrant")
    if plan is not None:
        plan.validate()
    _FAULT_PLAN = plan
    try:
        yield plan
    finally:
        _FAULT_PLAN = None


@contextmanager
def trace_output(path: str | Path):
    """Trace every simulation run in the with-block to JSONL files.

    Yields the :class:`TraceSink`; on exit the sink finalizes (single
    file renamed to ``path``, or a ``*.manifest.json`` written next to
    it).  Not reentrant; worker processes never see the parent's sink
    (jobs carry explicit paths instead).
    """
    global _TRACE_SINK
    if _TRACE_SINK is not None:
        raise RuntimeError("trace_output() is not reentrant")
    sink = TraceSink(path)
    _TRACE_SINK = sink
    try:
        yield sink
    finally:
        _TRACE_SINK = None
        sink.finalize()


def run_once(
    trace: ContactTrace,
    scheme: str | SchemeConfig,
    settings: Settings,
    seed: int,
    with_queries: bool = False,
    catalog: Optional[DataCatalog] = None,
    num_caching_nodes: Optional[int] = None,
    rates: Optional[RateTable] = None,
    trace_path: Optional[str | Path] = None,
    fault_plan=None,
    backend: str = "object",
    placement: "Optional[PlacementPolicy]" = None,
    onpath: "Optional[OnPathConfig]" = None,
    cycle: Optional[QueryCycle] = None,
) -> RunMetrics:
    """Wire, run and score one simulation.

    ``rates`` short-circuits the whole-trace MLE estimation inside
    :func:`build_simulation`; pass the cached per-seed estimate when the
    same trace is run under several schemes.

    ``trace_path`` writes the run's full event trace (JSONL) there; when
    omitted but a :func:`trace_output` sink is active, a per-job file is
    allocated from the sink.  Tracing is passive -- the returned metrics
    are identical to an untraced run's.

    ``fault_plan`` installs a :class:`~repro.faults.plan.FaultPlan`
    before the run (falling back to an active :func:`fault_injection`
    context); ``None``/null plans install nothing and leave the run
    bit-identical.

    ``backend="soa"`` runs the vectorised struct-of-arrays engine --
    metric-identical to the object graph but without queries, tracing
    or fault injection (those raise).

    ``placement`` restricts replication via a
    :class:`~repro.caching.placement.PlacementPolicy`; ``onpath``
    enables LCE/LCD response caching; ``cycle`` replaces the flat
    Poisson query process with an inhomogeneous one (diurnal and/or
    flash-crowd).  All three default off and leave default runs
    bit-identical; ``onpath`` and ``cycle`` require
    ``with_queries=True``.
    """
    if cycle is not None and not with_queries:
        raise ValueError("a query cycle requires with_queries=True")
    if catalog is None:
        catalog = make_catalog(settings, choose_sources(trace, settings))
    if trace_path is None and _TRACE_SINK is not None:
        trace_path = _TRACE_SINK.allocate(0, seed, scheme)
    if fault_plan is None:
        fault_plan = _FAULT_PLAN
    if backend == "soa":
        unsupported = []
        if with_queries:
            unsupported.append("queries")
        if trace_path is not None:
            unsupported.append("tracing")
        if fault_plan is not None:
            unsupported.append("fault injection")
        if placement is not None:
            unsupported.append("placement")
        if onpath is not None:
            unsupported.append("onpath caching")
        if unsupported:
            raise ValueError(
                f"the soa backend does not support {', '.join(unsupported)}; "
                "use backend='object'"
            )
    bus = None
    if trace_path is not None:
        from repro.obs.bus import EventBus
        from repro.sim.messages import set_message_trace

        bus = EventBus()
        # The msg.create hook is process-global (Message construction
        # sites are spread across every protocol); scope it to this run.
        set_message_trace(bus)
    try:
        runtime = build_simulation(
            trace,
            catalog,
            scheme=scheme,
            num_caching_nodes=num_caching_nodes or settings.num_caching_nodes,
            rates=rates,
            seed=seed,
            with_queries=with_queries,
            refresh_jitter=settings.refresh_jitter,
            bus=bus,
            backend=backend,
            placement=placement,
            onpath=onpath,
        )
        horizon = settings.duration
        if fault_plan is not None:
            from repro.faults.injectors import install_faults

            install_faults(runtime, fault_plan, seed=seed, until=horizon)
        runtime.install_freshness_probe(interval=settings.probe_interval, until=horizon)
        if with_queries:
            popularity = ZipfPopularity(catalog.item_ids, s=settings.zipf_exponent)
            if cycle is not None:
                schedule_cycle_queries(
                    runtime,
                    rate_per_node=settings.query_rate,
                    duration=horizon,
                    rng=np.random.default_rng(seed * 7919 + 17),
                    cycle=cycle,
                    popularity=popularity,
                )
            else:
                schedule_queries(
                    runtime,
                    rate_per_node=settings.query_rate,
                    duration=horizon,
                    rng=np.random.default_rng(seed * 7919 + 17),
                    popularity=popularity,
                )
        runtime.run(until=horizon)
    finally:
        if bus is not None:
            from repro.sim.messages import set_message_trace

            set_message_trace(None)
    if bus is not None:
        from repro.obs.export import write_jsonl

        write_jsonl(bus.records, trace_path)

    warmup = settings.warmup_fraction * horizon
    fresh = freshness_summary(runtime, t0=warmup, t1=horizon)
    refresh = refresh_outcomes(
        runtime.update_log,
        runtime.history,
        catalog,
        runtime.caching_nodes,
        horizon=horizon,
        messages=runtime.refresh_overhead(),
    )
    metrics = RunMetrics(
        scheme=runtime.config.name,
        seed=seed,
        freshness=fresh.freshness,
        validity=fresh.validity,
        messages=refresh.messages,
        messages_per_update=refresh.messages_per_update,
        on_time_ratio=refresh.on_time_ratio,
        refresh_delay=refresh.mean_delay,
    )
    if with_queries:
        outcomes = judge_queries(runtime.query_records(), runtime.history, catalog)
        metrics.queries_issued = outcomes.issued
        metrics.query_answer_ratio = outcomes.answer_ratio
        metrics.query_fresh_ratio = outcomes.fresh_ratio
        metrics.query_valid_ratio = outcomes.valid_ratio
        metrics.query_validity_e2e = outcomes.end_to_end_validity
        metrics.query_delay = outcomes.mean_delay
    return metrics


def run_replicated(
    schemes: Sequence[str | SchemeConfig],
    settings: Settings,
    with_queries: bool = False,
    num_caching_nodes: Optional[int] = None,
    jobs: Optional[int] = None,
) -> dict[str, list[RunMetrics]]:
    """Run every scheme on every seed's trace; paired across schemes.

    ``jobs`` selects the worker count (``None`` falls back to
    ``$REPRO_JOBS``, then serial); any parallel run merges to exactly
    the structure the serial loop builds.
    """
    from repro.experiments.parallel import SweepPoint, run_sweep

    point = SweepPoint(
        settings=settings,
        schemes=tuple(schemes),
        with_queries=with_queries,
        num_caching_nodes=num_caching_nodes,
    )
    return run_sweep([point], jobs=jobs)[0]
