"""Shared machinery for running scheme-comparison experiments.

``run_once`` wires and runs one (trace, scheme) simulation and collects
every metric the tables need into a :class:`RunMetrics`.
``run_replicated`` repeats that across seeds -- each seed generates its
own trace realisation, and all schemes of a seed share that trace and
the same pre-scheduled query workload, the paper-style paired
comparison.

Replication fans out through :mod:`repro.experiments.parallel`: pass
``jobs`` (or set ``REPRO_JOBS``) to run the independent (seed, scheme)
simulations on a process pool; ``jobs=1`` is the serial fallback and
parallel output is identical to it.  The per-seed trace, MLE rates and
centrality ranking are computed once per seed and shared across all
schemes via :mod:`repro.experiments.artifacts`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.metrics import freshness_summary, judge_queries, refresh_outcomes
from repro.caching.items import DataCatalog
from repro.contacts.centrality import contact_centrality, rank_nodes
from repro.contacts.rates import RateTable, mle_rates
from repro.core.scheme import SchemeConfig, build_simulation
from repro.experiments.artifacts import (
    SOURCE_RANKING_WINDOW,
    artifacts_for_trace,
    seed_artifacts,
    sources_from_ranking,
)
from repro.experiments.config import Settings
from repro.mobility.trace import ContactTrace
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries


@dataclass
class RunMetrics:
    """Everything one simulation run reports."""

    scheme: str
    seed: int
    freshness: float
    validity: float
    messages: float
    messages_per_update: float
    on_time_ratio: float
    refresh_delay: float
    queries_issued: int = 0
    query_answer_ratio: float = float("nan")
    query_fresh_ratio: float = float("nan")
    query_valid_ratio: float = float("nan")
    query_validity_e2e: float = float("nan")
    query_delay: float = float("nan")

    def same_as(self, other: "RunMetrics") -> bool:
        """Exact field-by-field equality, treating NaN == NaN as true.

        Plain dataclass ``==`` is always false for runs without queries
        (the ``query_*`` fields default to NaN); this is the comparison
        the parallel-vs-serial determinism guarantee is stated in.
        """
        if not isinstance(other, RunMetrics):
            return NotImplemented
        for mine, theirs in zip(dataclasses.astuple(self),
                                dataclasses.astuple(other)):
            if mine != theirs and not (
                isinstance(mine, float) and isinstance(theirs, float)
                and math.isnan(mine) and math.isnan(theirs)
            ):
                return False
        return True


@dataclass
class ExperimentResult:
    """A reproduced table/figure: formatted text plus raw data."""

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    notes: str = ""

    def __str__(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} ==", self.text]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def analytic_on_time(runtime) -> float:
    """Analytical end-to-end on-time refresh prediction of a wired runtime.

    For every (item, caching node), multiplies the planned per-hop
    delivery probabilities along the node's path to the source -- hops
    are provisioned independently, so the product is the planned
    probability that a new version reaches the node within its freshness
    window.  Returns the mean over all (item, node) pairs.
    """
    import math

    products = []
    for item_id, tree in runtime.trees.items():
        for node in tree.members:
            prob = 1.0
            path = tree.path_to_root(node)
            for child, parent in zip(path, path[1:]):
                plan = runtime.plans.get((item_id, parent, child))
                prob *= plan.achieved if plan is not None else 0.0
            products.append(prob)
    return sum(products) / len(products) if products else math.nan


def make_trace(settings: Settings, seed: int) -> ContactTrace:
    """One trace realisation of the settings' profile.

    Served from the per-seed artifact cache: repeated calls with the
    same ``(profile, duration, seed)`` return the same (deterministic)
    trace object without regenerating it.
    """
    return seed_artifacts(settings, seed).trace


def choose_sources(trace: ContactTrace, settings: Settings) -> list[int]:
    """Pick the source nodes: median-centrality devices.

    Sources are ordinary members of the network -- neither the social
    hubs (those become caching nodes) nor isolated stragglers (a source
    nobody meets starves every scheme equally but mostly measures the
    trace, not the scheme).  Taking nodes from the middle of the
    centrality ranking is deterministic and portable across traces.

    When ``trace`` came out of the artifact cache the cached centrality
    ranking is reused; otherwise the ranking is derived here.
    """
    artifacts = artifacts_for_trace(trace)
    if artifacts is not None:
        return artifacts.sources(settings.num_sources)
    rates = mle_rates(trace)
    scores = contact_centrality(rates, window=SOURCE_RANKING_WINDOW)
    return sources_from_ranking(tuple(rank_nodes(scores)), settings.num_sources)


def make_catalog(settings: Settings, sources: Sequence[int]) -> DataCatalog:
    return DataCatalog.uniform(
        num_items=settings.num_items,
        sources=list(sources),
        refresh_interval=settings.refresh_interval,
        lifetime=settings.lifetime,
        size=settings.item_size,
        freshness_requirement=settings.freshness_requirement,
    )


def run_once(
    trace: ContactTrace,
    scheme: str | SchemeConfig,
    settings: Settings,
    seed: int,
    with_queries: bool = False,
    catalog: Optional[DataCatalog] = None,
    num_caching_nodes: Optional[int] = None,
    rates: Optional[RateTable] = None,
) -> RunMetrics:
    """Wire, run and score one simulation.

    ``rates`` short-circuits the whole-trace MLE estimation inside
    :func:`build_simulation`; pass the cached per-seed estimate when the
    same trace is run under several schemes.
    """
    if catalog is None:
        catalog = make_catalog(settings, choose_sources(trace, settings))
    runtime = build_simulation(
        trace,
        catalog,
        scheme=scheme,
        num_caching_nodes=num_caching_nodes or settings.num_caching_nodes,
        rates=rates,
        seed=seed,
        with_queries=with_queries,
        refresh_jitter=settings.refresh_jitter,
    )
    horizon = settings.duration
    runtime.install_freshness_probe(interval=settings.probe_interval, until=horizon)
    if with_queries:
        popularity = ZipfPopularity(catalog.item_ids, s=settings.zipf_exponent)
        schedule_queries(
            runtime,
            rate_per_node=settings.query_rate,
            duration=horizon,
            rng=np.random.default_rng(seed * 7919 + 17),
            popularity=popularity,
        )
    runtime.run(until=horizon)

    warmup = settings.warmup_fraction * horizon
    fresh = freshness_summary(runtime, t0=warmup, t1=horizon)
    refresh = refresh_outcomes(
        runtime.update_log,
        runtime.history,
        catalog,
        runtime.caching_nodes,
        horizon=horizon,
        messages=runtime.refresh_overhead(),
    )
    metrics = RunMetrics(
        scheme=runtime.config.name,
        seed=seed,
        freshness=fresh.freshness,
        validity=fresh.validity,
        messages=refresh.messages,
        messages_per_update=refresh.messages_per_update,
        on_time_ratio=refresh.on_time_ratio,
        refresh_delay=refresh.mean_delay,
    )
    if with_queries:
        outcomes = judge_queries(runtime.query_records(), runtime.history, catalog)
        metrics.queries_issued = outcomes.issued
        metrics.query_answer_ratio = outcomes.answer_ratio
        metrics.query_fresh_ratio = outcomes.fresh_ratio
        metrics.query_valid_ratio = outcomes.valid_ratio
        metrics.query_validity_e2e = outcomes.end_to_end_validity
        metrics.query_delay = outcomes.mean_delay
    return metrics


def run_replicated(
    schemes: Sequence[str | SchemeConfig],
    settings: Settings,
    with_queries: bool = False,
    num_caching_nodes: Optional[int] = None,
    jobs: Optional[int] = None,
) -> dict[str, list[RunMetrics]]:
    """Run every scheme on every seed's trace; paired across schemes.

    ``jobs`` selects the worker count (``None`` falls back to
    ``$REPRO_JOBS``, then serial); any parallel run merges to exactly
    the structure the serial loop builds.
    """
    from repro.experiments.parallel import SweepPoint, run_sweep

    point = SweepPoint(
        settings=settings,
        schemes=tuple(schemes),
        with_queries=with_queries,
        num_caching_nodes=num_caching_nodes,
    )
    return run_sweep([point], jobs=jobs)[0]
