"""E16 -- model-vs-simulation validation of the analytical freshness model.

Sweeps the refresh interval and the replication factor (``max_relays``)
under the paper's scheme, and at every sweep point diffs the
:mod:`repro.theory` closed-form predictions (freshness, validity,
on-time ratio) against the simulated measurements.

The agreement target is anchored in E2: the model is exact under the
pairwise-Poisson assumption, so its error budget on a given trace is
that trace's Kolmogorov-Smirnov deviation from exponential
inter-contacts.  Each seed's trace gets the band
:func:`~repro.theory.validate.agreement_band` ``= floor + scale * KS``
(E2 method: pair-normalised gaps, ``min_gaps_per_pair=3``), and a sweep
point *agrees* when every metric's mean absolute error is inside the
mean band.

Expected shape: the simulation tracks the model within the band at
every point.  The direct-only column exercises the closed forms with
no recruitment dynamics and tracks near-exactly; replicated columns
lean on the pooled-recruitment relay model and carry their largest
residual in validity at short refresh intervals, where the
supersession-censored lag terms are a lower bound on relay remnants
delivering old-but-valid versions (see docs/MODEL.md).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary, refresh_outcomes
from repro.analysis.tables import format_table
from repro.contacts.intercontact import (
    aggregate_intercontact_samples,
    fit_exponential,
    ks_distance,
)
from repro.core.scheme import build_simulation, scheme_variant
from repro.experiments.config import HOUR, Settings
from repro.experiments.runner import (
    ExperimentResult,
    choose_sources,
    make_catalog,
    make_trace,
)
from repro.theory import BAND_FLOOR, BAND_SCALE, FreshnessModel, agreement_band

TITLE = "Model-vs-simulation validation (analytical freshness model)"

#: metrics diffed at every sweep point, in report order
METRICS = ("freshness", "validity", "on_time_ratio")


def _grid(settings: Settings) -> tuple[list[float], list[int]]:
    """(refresh intervals, replication factors) swept at this scale."""
    if settings.profile == "small":
        return [settings.refresh_interval, 2 * settings.refresh_interval], [0, 5]
    return [12 * HOUR, 24 * HOUR, 48 * HOUR], [0, 2, 5]


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data.

    ``jobs`` is accepted for harness uniformity but unused: every run
    here needs its wired runtime (trees, plans, rates) for prediction,
    which the sweep workers do not return.
    """
    settings = settings or Settings()
    intervals, relay_factors = _grid(settings)

    # Per-seed trace deviation from exponentiality -> agreement band.
    bands = []
    for seed in settings.seeds:
        samples = aggregate_intercontact_samples(
            make_trace(settings, seed), normalise=True, min_gaps_per_pair=3
        )
        ks = ks_distance(samples, fit_exponential(samples))
        bands.append(agreement_band(ks))
    band = sum(bands) / len(bands)

    rows = []
    agreeing = 0
    for interval in intervals:
        point_settings = settings.with_(refresh_interval=interval)
        for relays in relay_factors:
            config = scheme_variant("hdr", max_relays=relays)
            predicted = {name: [] for name in METRICS}
            measured = {name: [] for name in METRICS}
            for seed in settings.seeds:
                trace = make_trace(point_settings, seed)
                catalog = make_catalog(
                    point_settings, choose_sources(trace, point_settings)
                )
                runtime = build_simulation(
                    trace,
                    catalog,
                    scheme=config,
                    num_caching_nodes=point_settings.num_caching_nodes,
                    seed=seed,
                    refresh_jitter=point_settings.refresh_jitter,
                )
                prediction = FreshnessModel.from_runtime(runtime).predict()
                horizon = point_settings.duration
                runtime.install_freshness_probe(
                    interval=point_settings.probe_interval, until=horizon
                )
                runtime.run(until=horizon)
                fresh = freshness_summary(
                    runtime,
                    t0=point_settings.warmup_fraction * horizon,
                    t1=horizon,
                )
                refresh = refresh_outcomes(
                    runtime.update_log,
                    runtime.history,
                    catalog,
                    runtime.caching_nodes,
                    horizon=horizon,
                    messages=runtime.refresh_overhead(),
                )
                observed = {
                    "freshness": fresh.freshness,
                    "validity": fresh.validity,
                    "on_time_ratio": refresh.on_time_ratio,
                }
                for name in METRICS:
                    predicted[name].append(prediction.summary()[name])
                    measured[name].append(observed[name])
            row: dict = {
                "interval_h": interval / HOUR,
                "relays": relays,
            }
            max_err = 0.0
            for name in METRICS:
                pred = summarize(predicted[name]).mean
                meas = summarize(measured[name]).mean
                err = abs(pred - meas)
                max_err = max(max_err, err)
                short = {"freshness": "fresh", "validity": "valid",
                         "on_time_ratio": "on_time"}[name]
                row[f"{short}(model)"] = pred
                row[f"{short}(sim)"] = meas
                row[f"{short}|err|"] = err
            row["within"] = "yes" if max_err <= band else "NO"
            agreeing += max_err <= band
            rows.append(row)

    total = len(rows)
    text = format_table(
        rows,
        title=f"{TITLE}\nagreement band {band:.3f} "
        f"(= {BAND_FLOOR:g} + {BAND_SCALE:g} x KS deviation from "
        "exponential, E2 method)",
        precision=3,
    )
    notes = (
        f"{agreeing}/{total} sweep points agree: every metric within "
        f"{band:.3f} of the closed-form prediction.  Freshness and "
        "on-time track tightest (the pooled-recruitment relay model, "
        "docs/MODEL.md); validity carries the largest residual at short "
        "intervals, where the supersession-censored lag terms bound the "
        "relay remnants' late deliveries from below."
    )
    return ExperimentResult(
        exp_id="E16",
        title=TITLE,
        text=text,
        data={"rows": rows, "band": band, "bands_per_seed": bands,
              "agreeing": agreeing, "points": total},
        notes=notes,
    )
