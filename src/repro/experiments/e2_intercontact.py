"""E2 -- inter-contact time distribution (motivation figure).

Pools the pair-normalised inter-contact gaps of each trace and compares
the empirical CCDF against Exp(1) -- the pairwise-exponential hypothesis
the scheme's replication analysis rests on.  Reports the CCDF at a grid
of normalised gaps plus the Kolmogorov-Smirnov distance.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.analysis.tables import format_series
from repro.contacts.intercontact import (
    aggregate_intercontact_samples,
    fit_exponential,
    ks_distance,
)
from repro.experiments.config import Settings
from repro.experiments.runner import ExperimentResult
from repro.mobility.calibration import get_profile

TITLE = "Inter-contact time CCDF (pair-normalised) vs exponential fit"

#: Normalised-gap grid the CCDF is reported at.
GRID = [0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0]


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    profiles = ["reality", "infocom06"] if settings.profile != "small" else ["small"]
    series: dict[str, list[float]] = {}
    ks: dict[str, float] = {}
    for name in profiles:
        rng = np.random.default_rng(settings.seeds[0])
        trace = get_profile(name).generate(rng)
        samples = aggregate_intercontact_samples(trace, normalise=True, min_gaps_per_pair=3)
        if len(samples) == 0:
            continue
        sorted_samples = np.sort(samples)
        n = len(sorted_samples)
        ccdf_at = [
            float(1.0 - np.searchsorted(sorted_samples, x, side="right") / n)
            for x in GRID
        ]
        series[name] = ccdf_at
        rate = fit_exponential(samples)
        ks[name] = ks_distance(samples, rate)
    series["Exp(1)"] = [math.exp(-x) for x in GRID]
    text = format_series("gap/mean", GRID, series, title=TITLE)
    ks_text = "  ".join(f"KS({name})={value:.3f}" for name, value in ks.items())
    return ExperimentResult(
        exp_id="E2",
        title=TITLE,
        text=text,
        data={"grid": GRID, "series": series, "ks": ks},
        notes=f"Kolmogorov-Smirnov distance to the fitted exponential: {ks_text}",
    )
