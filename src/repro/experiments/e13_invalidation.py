"""E13 -- refreshing vs invalidation (consistency-model comparison).

The classic alternative to keeping caches fresh is keeping them
*honest*: gossip tiny invalidation notices so stale copies are dropped
the moment their successor version is announced, and re-fetch data only
from the source.  This experiment pits HDR against that model (and the
source-only floor) on the axes where they genuinely differ:

- **slot freshness / validity** -- invalidation empties caches, so both
  collapse toward source-only levels;
- **query outcomes** -- invalidation's *answered* ratio drops (fewer
  copies to answer from) but the answers it does give are almost never
  stale; HDR answers far more queries and keeps most of them fresh;
- **overhead** -- invalidation is cheap in bytes (64 B notices) but not
  in message count (they flood everywhere).

The paper argues for refreshing over invalidation in this setting
because data *access* is the goal -- an honest empty cache serves
nobody; this experiment is that argument, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary, judge_queries
from repro.analysis.tables import format_table
from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable
from repro.core.scheme import build_simulation
from repro.experiments.artifacts import seed_artifacts
from repro.experiments.config import Settings
from repro.experiments.parallel import run_tasks
from repro.experiments.runner import ExperimentResult, make_catalog
from repro.mobility.trace import ContactTrace
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries

TITLE = "Refreshing (hdr) vs invalidation vs source-only"

SCHEMES = ["hdr", "invalidate", "source"]


@dataclass(frozen=True)
class _ConsistencyJob:
    """One (seed, scheme) consistency-model run, picklable."""

    scheme: str
    seed: int
    settings: Settings
    trace: ContactTrace
    rates: RateTable
    catalog: DataCatalog


def _consistency_job(job: _ConsistencyJob) -> dict[str, float]:
    """Worker: one run, returns every metric column of the E13 table."""
    settings = job.settings
    runtime = build_simulation(
        job.trace, job.catalog, scheme=job.scheme,
        num_caching_nodes=settings.num_caching_nodes, rates=job.rates,
        seed=job.seed, with_queries=True, record_transfers=True,
        refresh_jitter=settings.refresh_jitter,
    )
    runtime.install_freshness_probe(
        interval=settings.probe_interval, until=settings.duration
    )
    schedule_queries(
        runtime,
        rate_per_node=settings.query_rate,
        duration=settings.duration,
        rng=np.random.default_rng(job.seed * 7919 + 17),
        popularity=ZipfPopularity(job.catalog.item_ids, s=settings.zipf_exponent),
    )
    runtime.run(until=settings.duration)
    fresh = freshness_summary(
        runtime, t0=settings.warmup_fraction * settings.duration
    )
    outcomes = judge_queries(runtime.query_records(), runtime.history, job.catalog)
    return {
        "freshness": fresh.freshness,
        "validity": fresh.validity,
        "answered": outcomes.answer_ratio,
        "fresh_answers": outcomes.fresh_ratio,
        "valid_answers": outcomes.valid_ratio,
        "messages": runtime.refresh_overhead(),
        "bytes": runtime.refresh_bytes(),
    }


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    rows = []
    data: dict[str, dict] = {}
    collected: dict[str, dict[str, list[float]]] = {
        name: {"freshness": [], "validity": [], "answered": [],
               "fresh_answers": [], "valid_answers": [], "messages": [],
               "bytes": []}
        for name in SCHEMES
    }
    per_seed = {seed: seed_artifacts(settings, seed) for seed in settings.seeds}
    catalogs = {
        seed: make_catalog(settings, art.sources(settings.num_sources))
        for seed, art in per_seed.items()
    }
    specs = [
        _ConsistencyJob(
            scheme=name, seed=seed, settings=settings,
            trace=per_seed[seed].trace, rates=per_seed[seed].rates,
            catalog=catalogs[seed],
        )
        for seed in settings.seeds
        for name in SCHEMES
    ]
    for spec, outcome in zip(specs, run_tasks(_consistency_job, specs, jobs=jobs)):
        bucket = collected[spec.scheme]
        for key, value in outcome.items():
            bucket[key].append(value)
    for name in SCHEMES:
        bucket = collected[name]
        row = {
            "scheme": name,
            "slot_fresh": round(summarize(bucket["freshness"]).mean, 3),
            "answered": round(summarize(bucket["answered"]).mean, 3),
            "fresh_answers": round(summarize(bucket["fresh_answers"]).mean, 3),
            "valid_answers": round(summarize(bucket["valid_answers"]).mean, 3),
            "messages": round(summarize(bucket["messages"]).mean, 0),
            "kilobytes": round(summarize(bucket["bytes"]).mean / 1024.0, 0),
        }
        rows.append(row)
        data[name] = row
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E13",
        title=TITLE,
        text=text,
        data=data,
        notes="invalidation serves (almost) no stale data but answers far "
        "fewer queries; hdr keeps both access and freshness high.",
    )
