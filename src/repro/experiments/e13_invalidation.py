"""E13 -- refreshing vs invalidation (consistency-model comparison).

The classic alternative to keeping caches fresh is keeping them
*honest*: gossip tiny invalidation notices so stale copies are dropped
the moment their successor version is announced, and re-fetch data only
from the source.  This experiment pits HDR against that model (and the
source-only floor) on the axes where they genuinely differ:

- **slot freshness / validity** -- invalidation empties caches, so both
  collapse toward source-only levels;
- **query outcomes** -- invalidation's *answered* ratio drops (fewer
  copies to answer from) but the answers it does give are almost never
  stale; HDR answers far more queries and keeps most of them fresh;
- **overhead** -- invalidation is cheap in bytes (64 B notices) but not
  in message count (they flood everywhere).

The paper argues for refreshing over invalidation in this setting
because data *access* is the goal -- an honest empty cache serves
nobody; this experiment is that argument, quantified.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary, judge_queries
from repro.analysis.tables import format_table
from repro.core.scheme import build_simulation
from repro.experiments.config import Settings
from repro.experiments.runner import (
    ExperimentResult,
    choose_sources,
    make_catalog,
    make_trace,
)
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.queries import schedule_queries

TITLE = "Refreshing (hdr) vs invalidation vs source-only"

SCHEMES = ["hdr", "invalidate", "source"]


def run(settings: Optional[Settings] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    rows = []
    data: dict[str, dict] = {}
    collected: dict[str, dict[str, list[float]]] = {
        name: {"freshness": [], "validity": [], "answered": [],
               "fresh_answers": [], "valid_answers": [], "messages": [],
               "bytes": []}
        for name in SCHEMES
    }
    for seed in settings.seeds:
        trace = make_trace(settings, seed)
        catalog = make_catalog(settings, choose_sources(trace, settings))
        for name in SCHEMES:
            runtime = build_simulation(
                trace, catalog, scheme=name,
                num_caching_nodes=settings.num_caching_nodes, seed=seed,
                with_queries=True, record_transfers=True,
                refresh_jitter=settings.refresh_jitter,
            )
            runtime.install_freshness_probe(
                interval=settings.probe_interval, until=settings.duration
            )
            schedule_queries(
                runtime,
                rate_per_node=settings.query_rate,
                duration=settings.duration,
                rng=np.random.default_rng(seed * 7919 + 17),
                popularity=ZipfPopularity(catalog.item_ids,
                                          s=settings.zipf_exponent),
            )
            runtime.run(until=settings.duration)
            fresh = freshness_summary(
                runtime, t0=settings.warmup_fraction * settings.duration
            )
            outcomes = judge_queries(
                runtime.query_records(), runtime.history, catalog
            )
            bucket = collected[name]
            bucket["freshness"].append(fresh.freshness)
            bucket["validity"].append(fresh.validity)
            bucket["answered"].append(outcomes.answer_ratio)
            bucket["fresh_answers"].append(outcomes.fresh_ratio)
            bucket["valid_answers"].append(outcomes.valid_ratio)
            bucket["messages"].append(runtime.refresh_overhead())
            bucket["bytes"].append(runtime.refresh_bytes())
    for name in SCHEMES:
        bucket = collected[name]
        row = {
            "scheme": name,
            "slot_fresh": round(summarize(bucket["freshness"]).mean, 3),
            "answered": round(summarize(bucket["answered"]).mean, 3),
            "fresh_answers": round(summarize(bucket["fresh_answers"]).mean, 3),
            "valid_answers": round(summarize(bucket["valid_answers"]).mean, 3),
            "messages": round(summarize(bucket["messages"]).mean, 0),
            "kilobytes": round(summarize(bucket["bytes"]).mean / 1024.0, 0),
        }
        rows.append(row)
        data[name] = row
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E13",
        title=TITLE,
        text=text,
        data=data,
        notes="invalidation serves (almost) no stale data but answers far "
        "fewer queries; hdr keeps both access and freshness high.",
    )
