"""E10 -- sensitivity to contact-rate estimation quality (extension).

The scheme is *distributed*: in deployment each node estimates contact
rates from its own history, so the hierarchy and the relay plans are
built from imperfect knowledge.  This ablation rebuilds HDR from four
knowledge levels, holding the caching-node set fixed so only assignment
and provisioning quality vary:

- **oracle**   -- whole-trace MLE rates (what the other experiments use);
- **warmup**   -- MLE over only the first quarter of the trace;
- **ewma**     -- recency-weighted estimates over the same warmup prefix;
- **uniform**  -- no knowledge at all: every observed pair gets the same
  rate (assignment degenerates to arbitrary, plans to arbitrary relays).

Expected shape: warmup/ewma sit close to the oracle (rate *rankings*
converge quickly, and only rankings matter to the greedy builder);
uniform pays a visible penalty, bounding the value of estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.aggregate import summarize
from repro.analysis.metrics import freshness_summary, refresh_outcomes
from repro.analysis.tables import format_table
from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable, ewma_rates, mle_rates
from repro.core.scheme import build_simulation
from repro.experiments.artifacts import seed_artifacts
from repro.experiments.config import Settings
from repro.experiments.parallel import run_tasks
from repro.experiments.runner import ExperimentResult, make_catalog
from repro.mobility.trace import ContactTrace

TITLE = "HDR vs quality of the distributed rate estimates"

ESTIMATORS = ["oracle", "warmup", "ewma", "uniform"]
WARMUP_FRACTION = 0.25


def _estimate(name: str, trace, oracle: Optional[RateTable] = None) -> RateTable:
    if name == "oracle":
        return oracle if oracle is not None else mle_rates(trace)
    cutoff = trace.start_time + WARMUP_FRACTION * trace.duration
    prefix = trace.window(trace.start_time, cutoff)
    if name == "warmup":
        return mle_rates(prefix)
    if name == "ewma":
        return ewma_rates(prefix, alpha=0.3, t1=cutoff)
    if name == "uniform":
        observed = mle_rates(prefix)
        positive = [rate for _, rate in observed.pairs() if rate > 0]
        level = sum(positive) / len(positive) if positive else 1.0
        flat = RateTable()
        for (a, b), rate in observed.pairs():
            if rate > 0:
                flat.set(a, b, level)
        return flat
    raise ValueError(f"unknown estimator {name!r}")


@dataclass(frozen=True)
class _EstimatorJob:
    """One (seed, estimator) HDR build-and-run, picklable."""

    estimator: str
    seed: int
    settings: Settings
    trace: ContactTrace
    oracle_rates: RateTable
    catalog: DataCatalog
    caching_nodes: tuple[int, ...]


def _estimator_job(job: _EstimatorJob) -> tuple[float, float]:
    """Worker: run one estimator variant, return (freshness, on_time)."""
    settings = job.settings
    runtime = build_simulation(
        job.trace, job.catalog, scheme="hdr",
        caching_nodes=list(job.caching_nodes),
        rates=_estimate(job.estimator, job.trace, oracle=job.oracle_rates),
        seed=job.seed,
        refresh_jitter=settings.refresh_jitter,
    )
    runtime.install_freshness_probe(
        interval=settings.probe_interval, until=settings.duration
    )
    runtime.run(until=settings.duration)
    fresh = freshness_summary(
        runtime, t0=settings.warmup_fraction * settings.duration
    )
    outcome = refresh_outcomes(
        runtime.update_log, runtime.history, job.catalog,
        runtime.caching_nodes, horizon=settings.duration,
        messages=runtime.refresh_overhead(),
    )
    return fresh.freshness, outcome.on_time_ratio


def run(settings: Optional[Settings] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Run the experiment and return its formatted table + raw data."""
    settings = settings or Settings()
    rows = []
    data: dict[str, dict[str, float]] = {}
    results: dict[str, list] = {name: [] for name in ESTIMATORS}
    from repro.caching.ncl import select_caching_nodes

    specs = []
    for seed in settings.seeds:
        artifacts = seed_artifacts(settings, seed)
        catalog = make_catalog(settings, artifacts.sources(settings.num_sources))
        # Fix the caching set across estimators (selected from the oracle)
        # so only hierarchy/provisioning quality varies.
        caching_nodes = select_caching_nodes(
            artifacts.rates,
            settings.num_caching_nodes,
            exclude={item.source for item in catalog},
        )
        for name in ESTIMATORS:
            specs.append(
                _EstimatorJob(
                    estimator=name, seed=seed, settings=settings,
                    trace=artifacts.trace, oracle_rates=artifacts.rates,
                    catalog=catalog, caching_nodes=tuple(caching_nodes),
                )
            )
    for spec, outcome in zip(specs, run_tasks(_estimator_job, specs, jobs=jobs)):
        results[spec.estimator].append(outcome)
    for name in ESTIMATORS:
        freshness = summarize([f for f, _ in results[name]])
        on_time = summarize([o for _, o in results[name]])
        rows.append(
            {
                "estimator": name,
                "freshness": round(freshness.mean, 3),
                "on_time": round(on_time.mean, 3),
            }
        )
        data[name] = {"freshness": freshness.mean, "on_time": on_time.mean}
    text = format_table(rows, title=TITLE, precision=3)
    return ExperimentResult(
        exp_id="E10",
        title=TITLE,
        text=text,
        data=data,
        notes="warmup/ewma should track the oracle; uniform pays a penalty.",
    )
