"""Simulation nodes and the protocol-handler stack they host.

A :class:`Node` is a mobile device.  It owns no protocol logic itself;
instead protocols (routing agents, the cooperative-caching protocol, a
refresh scheme...) register as :class:`ProtocolHandler` instances and the
node dispatches contact and message events to each of them in
registration order.

Handlers talk back to the world through ``node.network`` (to transfer
messages to the peer currently in contact) and ``node.sim`` (to schedule
timers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import ContactNetwork
    from repro.sim.engine import Simulator


class ProtocolHandler:
    """Base class for per-node protocol logic.

    Subclasses override any subset of the hooks.  ``handled_kinds``
    limits which message kinds are delivered to :meth:`on_message`;
    ``None`` means all kinds.
    """

    #: Message kinds this handler consumes, or ``None`` for all.
    handled_kinds: Optional[frozenset[str]] = None

    def __init__(self) -> None:
        self.node: Optional["Node"] = None

    def attach(self, node: "Node") -> None:
        """Called when the handler is registered on ``node``."""
        self.node = node

    def on_start(self) -> None:
        """Called once when the network starts the simulation."""

    def on_contact_start(self, peer: "Node") -> None:
        """Called when a contact with ``peer`` begins."""

    def on_contact_end(self, peer: "Node") -> None:
        """Called when a contact with ``peer`` ends."""

    def on_message(self, message: Message, sender: "Node") -> None:
        """Called when a message of a handled kind arrives from ``sender``."""


class Node:
    """A mobile device hosting a stack of protocol handlers."""

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.network: Optional["ContactNetwork"] = None
        self.handlers: list[ProtocolHandler] = []
        self._neighbors: set[int] = set()
        #: an offline node (device powered down) takes part in no contacts
        self.online = True

    @property
    def sim(self) -> "Simulator":
        """The simulator driving this node's network."""
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        return self.network.sim

    @property
    def neighbors(self) -> frozenset[int]:
        """Ids of nodes currently in contact with this node."""
        return frozenset(self._neighbors)

    def add_handler(self, handler: ProtocolHandler) -> ProtocolHandler:
        """Register ``handler`` at the bottom of the stack and return it."""
        handler.attach(self)
        self.handlers.append(handler)
        return handler

    def find_handler(self, cls: type) -> Optional[ProtocolHandler]:
        """First registered handler that is an instance of ``cls``."""
        for handler in self.handlers:
            if isinstance(handler, cls):
                return handler
        return None

    def in_contact_with(self, peer_id: int) -> bool:
        """True while a contact with ``peer_id`` is open."""
        return peer_id in self._neighbors

    def send(self, message: Message, peer: "Node") -> bool:
        """Hand ``message`` to the network for transfer to ``peer``.

        Returns ``True`` if the link model accepted the transfer.  The
        nodes must currently be in contact.
        """
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        return self.network.transfer(message, self, peer)

    # -- hooks invoked by ContactNetwork ---------------------------------

    def start(self) -> None:
        for handler in self.handlers:
            handler.on_start()

    def contact_started(self, peer: "Node") -> None:
        self._neighbors.add(peer.node_id)
        for handler in list(self.handlers):
            handler.on_contact_start(peer)

    def contact_ended(self, peer: "Node") -> None:
        self._neighbors.discard(peer.node_id)
        for handler in list(self.handlers):
            handler.on_contact_end(peer)

    def receive(self, message: Message, sender: "Node") -> None:
        for handler in list(self.handlers):
            kinds = handler.handled_kinds
            if kinds is None or message.kind in kinds:
                handler.on_message(message, sender)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id})"


def make_nodes(node_ids: Iterable[int]) -> dict[int, Node]:
    """Convenience constructor: one bare :class:`Node` per id."""
    return {nid: Node(nid) for nid in node_ids}
