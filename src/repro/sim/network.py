"""Contact-driven network: replays a contact trace over a node set.

The network schedules a ``contact_started`` / ``contact_ended`` pair for
every contact in the trace and brokers message transfers between nodes
that are currently in contact.  Transfers are subject to a pluggable
:class:`LinkModel`; the default is an unlimited link (the model used by
the paper-style evaluation, where contacts are long relative to message
sizes), and :class:`BandwidthLimitedLink` enforces a per-contact byte
budget derived from contact duration.

Deliveries are flattened through the event heap (scheduled at the current
time) so protocol ping-pong during a contact cannot recurse unboundedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.obs.records import (
    ContactClose,
    ContactOpen,
    MessageDrop,
    MessageRx,
    MessageTx,
)
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import Counter, StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mobility.trace import Contact

#: Event priorities: deliveries at a timestamp run before contact ends.
_PRIORITY_CONTACT_START = 0
_PRIORITY_DELIVERY = 5
_PRIORITY_CONTACT_END = 10


class LinkModel:
    """Decides whether a transfer is admitted and how it is charged.

    The default admits everything.
    """

    def contact_opened(self, a: int, b: int, duration: float) -> None:
        """Hook: a contact between ``a`` and ``b`` opened."""

    def contact_closed(self, a: int, b: int) -> None:
        """Hook: the contact between ``a`` and ``b`` closed.

        May be invoked for contacts that never opened (e.g. an endpoint
        was offline) and more than once per contact; implementations
        must tolerate both.
        """

    def admits(self, message: Message, a: int, b: int) -> bool:
        """True if ``message`` may be transferred on the (a, b) contact."""
        return True

    def charge(self, message: Message, a: int, b: int) -> None:
        """Account for a transfer that was admitted."""


class BandwidthLimitedLink(LinkModel):
    """Per-contact byte budget: ``bandwidth_bps * duration`` bytes.

    Models short contacts that cannot carry unbounded data.  Budgets are
    tracked per unordered node pair while a contact is open and released
    when it closes, so long traces do not grow the table unboundedly and
    a stale budget can never leak into the pair's next contact.
    """

    def __init__(self, bandwidth_bps: float) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = float(bandwidth_bps)
        self._budget: dict[tuple[int, int], float] = {}

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    @property
    def open_budgets(self) -> int:
        """Number of pairs currently holding a budget entry."""
        return len(self._budget)

    def contact_opened(self, a: int, b: int, duration: float) -> None:
        self._budget[self._key(a, b)] = self.bandwidth_bps * duration / 8.0

    def contact_closed(self, a: int, b: int) -> None:
        self._budget.pop(self._key(a, b), None)

    def admits(self, message: Message, a: int, b: int) -> bool:
        return self._budget.get(self._key(a, b), 0.0) >= message.size

    def charge(self, message: Message, a: int, b: int) -> None:
        self._budget[self._key(a, b)] -= message.size


@dataclass
class TransferRecord:
    """One admitted transfer, for post-hoc overhead analysis."""

    time: float
    kind: str
    sender: int
    receiver: int
    size: int
    msg_id: int


class ContactNetwork:
    """Replays a contact trace and brokers transfers between nodes."""

    def __init__(
        self,
        sim: Simulator,
        nodes: dict[int, Node],
        contacts: Iterable["Contact"],
        link_model: Optional[LinkModel] = None,
        stats: Optional[StatsRegistry] = None,
        record_transfers: bool = False,
    ) -> None:
        self.sim = sim
        self.nodes = dict(nodes)
        self.link_model = link_model or LinkModel()
        self.stats = stats or StatsRegistry()
        self.record_transfers = record_transfers
        self.transfers: list[TransferRecord] = []
        self._started = False
        # Cached counter handles for the transfer hot path: one registry
        # lookup at wiring time instead of a dict lookup (plus an f-string
        # format for the per-kind counter) on every transfer.
        self._c_rejected_no_contact = self.stats.counter(
            "net.transfer_rejected_no_contact"
        )
        self._c_rejected_expired = self.stats.counter("net.transfer_rejected_expired")
        self._c_rejected_bandwidth = self.stats.counter(
            "net.transfer_rejected_bandwidth"
        )
        self._c_transfers = self.stats.counter("net.transfers")
        self._c_bytes = self.stats.counter("net.bytes")
        self._c_contacts = self.stats.counter("net.contacts")
        self._c_contacts_skipped = self.stats.counter("net.contacts_skipped_offline")
        self._kind_counters: dict[str, Counter] = {}
        #: Hooks fired after a node's online state flips, as
        #: ``listener(node_id, online, now)``.  Churn drives all state
        #: flips through :meth:`set_online`, so listeners see every one.
        self._online_listeners: list = []
        #: optional :class:`repro.obs.bus.EventBus`; every emission site
        #: is behind a single ``is not None`` check, so an untraced
        #: network runs the pre-instrumentation transfer path.
        self.trace = None
        #: optional :class:`repro.faults.injectors.FaultController`; like
        #: ``trace``, every hook is behind one ``is not None`` check so a
        #: fault-free network runs the exact pre-fault code path.
        self.faults = None
        #: unordered pairs whose current contact was force-closed early
        #: (link flap / fault injection); the pending trace-scheduled
        #: ``_contact_end`` for such a pair must become a no-op, so the
        #: link budget is released exactly once and a subsequent contact
        #: of the same pair is never closed by the stale end event.
        self._forced_closed: set[tuple[int, int]] = set()
        for node in self.nodes.values():
            node.network = self
        self._schedule_trace(contacts)

    def add_online_listener(self, listener) -> None:
        """Register ``listener(node_id, online, now)`` for churn events."""
        self._online_listeners.append(listener)

    def _schedule_trace(self, contacts: Iterable["Contact"]) -> None:
        # Batched: build the (start, end) entry pairs in contact order --
        # the same sequence-number assignment as per-contact schedule_at
        # calls -- and heapify once.  A large trace front-loads hundreds
        # of thousands of events here before the run starts.
        start_cb, end_cb = self._contact_start, self._contact_end
        entries: list[tuple[float, int, Callable[..., None], tuple]] = []
        for contact in contacts:
            if contact.a not in self.nodes or contact.b not in self.nodes:
                continue
            entries.append((
                contact.start, _PRIORITY_CONTACT_START, start_cb,
                (contact.a, contact.b, contact.end - contact.start),
            ))
            entries.append((
                contact.end, _PRIORITY_CONTACT_END, end_cb,
                (contact.a, contact.b),
            ))
        self.sim.schedule_batch(entries)
        self.stats.counter("net.contacts_scheduled").add(len(entries) // 2)

    def schedule_contact(self, a: int, b: int, start: float, end: float) -> bool:
        """Schedule one future contact at runtime (streaming ingestion).

        The live-service pipeline feeds contacts one at a time as they
        arrive from a stream, instead of front-loading the whole trace
        at construction.  The two events use the same callbacks and
        priorities as :meth:`_schedule_trace`, so a streamed contact is
        indistinguishable from a pre-scheduled one once it is on the
        heap.  Contacts touching unknown nodes are skipped (returns
        ``False``), mirroring the batch path's filter.

        The caller must not have advanced the clock past ``start``
        (``schedule_at`` raises otherwise) -- the service runtime's
        watermark discipline guarantees that.
        """
        if a not in self.nodes or b not in self.nodes:
            return False
        if end < start:
            raise ValueError(f"contact ends before it starts: [{start}, {end}]")
        self.sim.schedule_at(
            float(start), self._contact_start, a, b, float(end) - float(start),
            priority=_PRIORITY_CONTACT_START,
        )
        self.sim.schedule_at(
            float(end), self._contact_end, a, b,
            priority=_PRIORITY_CONTACT_END,
        )
        self.stats.counter("net.contacts_scheduled").add(1)
        return True

    def start(self) -> None:
        """Fire every node's ``on_start`` hooks (idempotent)."""
        if self._started:
            return
        self._started = True
        for node_id in sorted(self.nodes):
            self.nodes[node_id].start()

    def run(self, until: Optional[float] = None) -> float:
        """Start the nodes and run the simulation to ``until``."""
        self.start()
        return self.sim.run(until=until)

    # -- trace event handlers ---------------------------------------------

    def _contact_start(self, a: int, b: int, duration: float) -> None:
        node_a, node_b = self.nodes[a], self.nodes[b]
        if not (node_a.online and node_b.online):
            self._c_contacts_skipped.add(1)
            return
        link_duration = duration
        if self.faults is not None:
            # May degrade the duration the link budget is derived from
            # and/or schedule a forced early close (link flap).
            link_duration = self.faults.on_contact_open(a, b, duration)
        self.link_model.contact_opened(a, b, link_duration)
        self._c_contacts.add(1)
        if self.trace is not None:
            self.trace.emit(ContactOpen(self.sim.now, a, b, duration))
        node_a.contact_started(node_b)
        node_b.contact_started(node_a)

    def _contact_end(self, a: int, b: int) -> None:
        if self._forced_closed:
            key = (a, b) if a <= b else (b, a)
            if key in self._forced_closed:
                # This contact was already closed early by a fault; its
                # budget was released then.  Consuming the marker (rather
                # than closing again) guards against double-release and
                # against tearing down a *new* contact the pair may have
                # opened at exactly this timestamp.
                self._forced_closed.discard(key)
                return
        node_a, node_b = self.nodes[a], self.nodes[b]
        # Only close contacts that actually opened (both ends were online).
        opened = node_a.in_contact_with(b) or node_b.in_contact_with(a)
        if node_a.in_contact_with(b):
            node_a.contact_ended(node_b)
        if node_b.in_contact_with(a):
            node_b.contact_ended(node_a)
        self.link_model.contact_closed(a, b)
        if opened and self.trace is not None:
            self.trace.emit(ContactClose(self.sim.now, a, b))

    def force_contact_close(self, a: int, b: int) -> bool:
        """Close the pair's open contact *now* (fault-driven early close).

        Used by the link-flap injector to truncate a contact before its
        trace end time.  The nodes' handlers see a normal contact end,
        the link budget is released exactly once, and the pair is marked
        so the still-pending trace-scheduled end becomes a no-op.
        Returns ``True`` if a contact was actually open.
        """
        node_a, node_b = self.nodes[a], self.nodes[b]
        opened = node_a.in_contact_with(b) or node_b.in_contact_with(a)
        if not opened:
            return False
        if node_a.in_contact_with(b):
            node_a.contact_ended(node_b)
        if node_b.in_contact_with(a):
            node_b.contact_ended(node_a)
        self.link_model.contact_closed(a, b)
        self._forced_closed.add((a, b) if a <= b else (b, a))
        if self.trace is not None:
            self.trace.emit(ContactClose(self.sim.now, a, b))
        return True

    def set_online(self, node_id: int, online: bool) -> None:
        """Take a node offline (closing its open contacts) or bring it back."""
        node = self.nodes[node_id]
        if node.online == online:
            return
        node.online = online
        if not online:
            for peer_id in list(node.neighbors):
                peer = self.nodes[peer_id]
                node.contact_ended(peer)
                peer.contact_ended(node)
                self.link_model.contact_closed(node_id, peer_id)
            self.stats.counter("net.nodes_went_offline").add(1)
        else:
            self.stats.counter("net.nodes_came_online").add(1)
        for listener in self._online_listeners:
            listener(node_id, online, self.sim.now)

    # -- transfer path ------------------------------------------------------

    def transfer(self, message: Message, sender: Node, receiver: Node) -> bool:
        """Transfer ``message`` from ``sender`` to ``receiver``.

        Returns ``True`` when the transfer was admitted; delivery happens
        through the event heap at the current simulation time.  Rejected
        transfers (nodes not in contact, link budget exhausted, message
        TTL expired) are counted and dropped.
        """
        if not sender.in_contact_with(receiver.node_id):
            self._c_rejected_no_contact.add(1)
            if self.trace is not None:
                self._emit_drop(message, sender, receiver, "no_contact")
            return False
        if message.expired(self.sim.now):
            self._c_rejected_expired.add(1)
            if self.trace is not None:
                self._emit_drop(message, sender, receiver, "expired")
            return False
        if not self.link_model.admits(message, sender.node_id, receiver.node_id):
            self._c_rejected_bandwidth.add(1)
            if self.trace is not None:
                self._emit_drop(message, sender, receiver, "bandwidth")
            return False
        self.link_model.charge(message, sender.node_id, receiver.node_id)
        message.hop_count += 1
        self._c_transfers.add(1)
        kind_counter = self._kind_counters.get(message.kind)
        if kind_counter is None:
            kind_counter = self.stats.counter(f"net.transfers.{message.kind}")
            self._kind_counters[message.kind] = kind_counter
        kind_counter.add(1)
        self._c_bytes.add(message.size)
        if self.record_transfers:
            self.transfers.append(
                TransferRecord(
                    time=self.sim.now,
                    kind=message.kind,
                    sender=sender.node_id,
                    receiver=receiver.node_id,
                    size=message.size,
                    msg_id=message.msg_id,
                )
            )
        if self.trace is not None:
            self.trace.emit(
                MessageTx(
                    self.sim.now,
                    message.kind,
                    sender.node_id,
                    receiver.node_id,
                    message.size,
                    message.msg_id,
                    message.copy_id,
                    message.hop_count,
                )
            )
        if self.faults is not None and self.faults.intercept_delivery(
            message, sender, receiver
        ):
            # The fault layer took over: the transfer was admitted (and
            # charged, so the sender believes it succeeded) but is either
            # lost in flight or delivered later with truncation exposure.
            return True
        if self.trace is not None:
            # Deliver through a wrapper that emits msg.rx just before the
            # receiver runs.  Scheduled at the same (time, priority) as the
            # untraced path, so heap ordering -- and hence the metrics of a
            # traced run -- are unchanged.
            self.sim.schedule_at(
                self.sim.now,
                self._traced_delivery,
                message,
                sender,
                receiver,
                priority=_PRIORITY_DELIVERY,
            )
            return True
        self.sim.schedule_at(
            self.sim.now,
            receiver.receive,
            message,
            sender,
            priority=_PRIORITY_DELIVERY,
        )
        return True

    def _emit_drop(self, message: Message, sender: Node, receiver: Node,
                   reason: str) -> None:
        self.trace.emit(
            MessageDrop(
                self.sim.now,
                message.kind,
                sender.node_id,
                receiver.node_id,
                message.size,
                message.msg_id,
                reason,
            )
        )

    def _traced_delivery(self, message: Message, sender: Node,
                         receiver: Node) -> None:
        """Delivery wrapper used only when tracing: emit ``msg.rx`` then
        run the normal :meth:`Node.receive`."""
        if self.trace is not None:
            self.trace.emit(
                MessageRx(
                    self.sim.now,
                    message.kind,
                    sender.node_id,
                    receiver.node_id,
                    message.size,
                    message.msg_id,
                    message.copy_id,
                )
            )
        receiver.receive(message, sender)
