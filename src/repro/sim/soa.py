"""Struct-of-arrays contact schedule for the vectorised backend.

The object backend schedules two heap events per contact and pays a
Python callback for each, whether or not the contact can move any data.
:class:`ContactEventStream` flattens the same schedule into parallel
NumPy arrays sorted by the *identical* ``(time, priority, seq)`` key the
event heap uses, so the vectorised executor (:mod:`repro.core.soa`) can

* slice the schedule into slabs and mask out, in one vector operation,
  every contact whose endpoints are both protocol-inactive, and
* walk the surviving events in exactly the order the heap would have
  popped them.

Ordering contract (mirrors ``ContactNetwork._schedule_trace``): contact
``i`` of the trace gets sequence ``2i`` for its start (priority 0) and
``2i + 1`` for its end (priority 10); all dynamically scheduled events
(probes, source bumps, deliveries) receive later sequence numbers, so at
an equal timestamp the static starts always precede them.  Priority is a
function of the event kind here (start=0, end=10), so sorting by
``(time, kind, seq)`` reproduces the heap order exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mobility.trace import Contact

#: ``kind`` codes in the event arrays.
KIND_START = 0
KIND_END = 1


class ContactEventStream:
    """The full contact schedule as sorted parallel arrays.

    Parameters
    ----------
    contacts:
        Iterable of :class:`~repro.mobility.trace.Contact` (a
        :class:`~repro.mobility.trace.ContactTrace` works as-is).
        Contacts touching unknown nodes are dropped, matching
        ``ContactNetwork._schedule_trace``.
    node_ids:
        The node population.  Node *indices* (positions in the sorted id
        tuple) index the executor's vectorised per-node state.
    """

    def __init__(self, contacts: Iterable["Contact"],
                 node_ids: Iterable[int]) -> None:
        ids = sorted(int(n) for n in node_ids)
        self.node_ids: tuple[int, ...] = tuple(ids)
        self.num_nodes = len(ids)
        self._id_arr = np.asarray(ids, dtype=np.int64)
        self.index_of: dict[int, int] = {nid: i for i, nid in enumerate(ids)}

        known = self.index_of
        start_l: list[float] = []
        end_l: list[float] = []
        a_l: list[int] = []
        b_l: list[int] = []
        for contact in contacts:
            if contact.a not in known or contact.b not in known:
                continue
            start_l.append(contact.start)
            end_l.append(contact.end)
            a_l.append(contact.a)
            b_l.append(contact.b)
        n = len(start_l)
        self.num_contacts = n
        self.num_events = 2 * n

        start_t = np.asarray(start_l, dtype=np.float64)
        end_t = np.asarray(end_l, dtype=np.float64)
        a_arr = np.asarray(a_l, dtype=np.int64)
        b_arr = np.asarray(b_l, dtype=np.int64)

        ev_time = np.concatenate([start_t, end_t])
        ev_kind = np.concatenate(
            [np.zeros(n, dtype=np.int8), np.ones(n, dtype=np.int8)]
        )
        ev_seq = np.concatenate(
            [np.arange(0, 2 * n, 2, dtype=np.int64),
             np.arange(1, 2 * n, 2, dtype=np.int64)]
        )
        ev_a = np.concatenate([a_arr, a_arr])
        ev_b = np.concatenate([b_arr, b_arr])
        # Heap pop order: (time, priority, seq).  kind orders like
        # priority (start=0 < end=10) and seq breaks the remaining ties.
        order = np.lexsort((ev_seq, ev_kind, ev_time))
        #: event arrays, in exact heap pop order
        self.time = ev_time[order]
        self.kind = ev_kind[order]
        self.a = ev_a[order]
        self.b = ev_b[order]
        #: node indices (positions in ``node_ids``) for mask arithmetic
        self.a_idx = np.searchsorted(self._id_arr, self.a)
        self.b_idx = np.searchsorted(self._id_arr, self.b)
        #: contact start times in schedule order (a sorted subsequence of
        #: ``time``), for O(log n) contacts-opened-by-t queries
        self.start_times = np.sort(start_t) if n else start_t

    def slab_end(self, pos: int, slab_size: int) -> int:
        """End of the slab beginning at ``pos``: at least ``slab_size``
        events, extended so a timestamp is never split across slabs.

        Splitting a timestamp would let the executor run controls (which
        fire between a timestamp's contact starts and its deliveries)
        before static events of the *same* timestamp in a later slab --
        an ordering the event heap can never produce.
        """
        n = self.num_events
        if pos >= n:
            return n
        hi = min(pos + slab_size, n)
        if hi < n:
            hi = int(np.searchsorted(self.time, self.time[hi - 1],
                                     side="right"))
        return hi

    def events_until(self, t: float) -> int:
        """Number of events with time <= ``t`` (how many the object
        backend's heap would have popped by then)."""
        return int(np.searchsorted(self.time, t, side="right"))

    def contacts_opened_until(self, t: float) -> int:
        """Number of contacts whose start time is <= ``t``."""
        return int(np.searchsorted(self.start_times, t, side="right"))

    def __len__(self) -> int:
        return self.num_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContactEventStream({self.num_contacts} contacts, "
            f"{self.num_nodes} nodes)"
        )
