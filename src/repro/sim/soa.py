"""Struct-of-arrays contact schedule for the vectorised backend.

The object backend schedules two heap events per contact and pays a
Python callback for each, whether or not the contact can move any data.
:class:`ContactEventStream` flattens the same schedule into parallel
NumPy arrays sorted by the *identical* ``(time, priority, seq)`` key the
event heap uses, so the vectorised executor (:mod:`repro.core.soa`) can

* slice the schedule into slabs and mask out, in one vector operation,
  every contact whose endpoints are both protocol-inactive, and
* walk the surviving events in exactly the order the heap would have
  popped them.

Ordering contract (mirrors ``ContactNetwork._schedule_trace``): contact
``i`` of the trace gets sequence ``2i`` for its start (priority 0) and
``2i + 1`` for its end (priority 10); all dynamically scheduled events
(probes, source bumps, deliveries) receive later sequence numbers, so at
an equal timestamp the static starts always precede them.  Priority is a
function of the event kind here (start=0, end=10), so sorting by
``(time, kind, seq)`` reproduces the heap order exactly.

Construction is array-native: when the contact starts are already
non-decreasing (every :class:`~repro.mobility.trace.ContactTrace` and
:class:`~repro.mobility.arrays.ContactArrays` is), the event order is a
*merge* of two sorted runs -- the starts as given and the ends stably
sorted by time -- computed with two ``searchsorted`` calls instead of a
full three-key lexsort over ``2n`` events.  Build from a
:class:`~repro.mobility.arrays.ContactArrays` via :meth:`from_arrays`
to skip ``Contact`` objects entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mobility.arrays import ContactArrays
    from repro.mobility.trace import Contact

#: ``kind`` codes in the event arrays.
KIND_START = 0
KIND_END = 1


class _NodeIndex:
    """Read-only ``node id -> node index`` mapping over the sorted id
    array.

    Lookups binary-search the id array instead of hashing, so the
    mapping costs nothing beyond the array the stream already holds
    (a dict is ~100 bytes per node -- real money at 10^6 nodes).  The
    executor only queries it a handful of times per run (sources,
    caching nodes, recruited relays), never per event.
    """

    __slots__ = ("_ids",)

    def __init__(self, ids: np.ndarray) -> None:
        self._ids = ids

    def __getitem__(self, nid: int) -> int:
        pos = int(np.searchsorted(self._ids, nid))
        if pos == len(self._ids) or self._ids[pos] != nid:
            raise KeyError(nid)
        return pos

    def __contains__(self, nid: object) -> bool:
        pos = int(np.searchsorted(self._ids, nid))
        return pos < len(self._ids) and self._ids[pos] == nid

    def __len__(self) -> int:
        return len(self._ids)

    def get(self, nid: int, default=None):
        pos = int(np.searchsorted(self._ids, nid))
        if pos == len(self._ids) or self._ids[pos] != nid:
            return default
        return pos


class ContactEventStream:
    """The full contact schedule as sorted parallel arrays.

    Parameters
    ----------
    contacts:
        Iterable of :class:`~repro.mobility.trace.Contact` (a
        :class:`~repro.mobility.trace.ContactTrace` works as-is).
        Contacts touching unknown nodes are dropped, matching
        ``ContactNetwork._schedule_trace``.
    node_ids:
        The node population.  Node *indices* (positions in the sorted id
        tuple) index the executor's vectorised per-node state.

    Attributes
    ----------
    time, kind, a_idx, b_idx:
        Event arrays in exact heap pop order: timestamp (float64), kind
        code (int8), and the two endpoint node indices (int32 --
        :data:`~repro.mobility.arrays.MAX_NODE_ID` bounds ids, and
        populations stay far below 2**31 indices).  Endpoint node *ids*
        are not stored per event; gather them on demand as
        ``stream._id_arr[stream.a_idx]`` (the :attr:`a` / :attr:`b`
        properties do exactly that).
    """

    def __init__(self, contacts: Iterable["Contact"],
                 node_ids: Iterable[int]) -> None:
        ids = sorted(int(n) for n in node_ids)
        self.node_ids: tuple[int, ...] = tuple(ids)
        self.num_nodes = len(ids)
        self._id_arr = np.asarray(ids, dtype=np.int64)
        self.index_of = _NodeIndex(self._id_arr)

        known = set(ids)
        start_l: list[float] = []
        end_l: list[float] = []
        a_l: list[int] = []
        b_l: list[int] = []
        for contact in contacts:
            if contact.a not in known or contact.b not in known:
                continue
            start_l.append(contact.start)
            end_l.append(contact.end)
            a_l.append(contact.a)
            b_l.append(contact.b)

        start_t = np.asarray(start_l, dtype=np.float64)
        end_t = np.asarray(end_l, dtype=np.float64)
        a_idx = np.searchsorted(self._id_arr, a_l).astype(np.int32)
        b_idx = np.searchsorted(self._id_arr, b_l).astype(np.int32)
        self._assemble(start_t, end_t, a_idx, b_idx)

    @classmethod
    def from_arrays(cls, arrays: "ContactArrays") -> "ContactEventStream":
        """Build the stream straight from a
        :class:`~repro.mobility.arrays.ContactArrays` trace.

        No ``Contact`` objects, no per-contact Python loop: the trace's
        columns feed the event assembly directly (the ``ContactArrays``
        constructor already guarantees lexsorted contacts over known
        node ids).  Produces arrays identical to
        ``ContactEventStream(arrays.to_trace(), arrays.node_ids)``.
        """
        self = cls.__new__(cls)
        self._id_arr = arrays.node_id_array
        self.node_ids = arrays.node_ids
        self.num_nodes = len(self._id_arr)
        self.index_of = _NodeIndex(self._id_arr)
        a_idx = np.searchsorted(self._id_arr, arrays.a).astype(np.int32)
        b_idx = np.searchsorted(self._id_arr, arrays.b).astype(np.int32)
        self._assemble(arrays.start, arrays.end, a_idx, b_idx)
        return self

    def _assemble(self, start_t: np.ndarray, end_t: np.ndarray,
                  a_idx: np.ndarray, b_idx: np.ndarray) -> None:
        """Lay out the ``2n`` events in heap pop order.

        Sorted-start fast path: the start events (seq ``2i``) are
        already in heap order among themselves, and a stable time-sort
        puts the end events (seq ``2j + 1``) in theirs.  Merging two
        sorted runs only needs each event's final rank: a start at
        ``t`` is preceded by every earlier start plus the ends strictly
        before ``t`` (at a shared timestamp starts win -- kind 0 < 10),
        and an end at ``t`` by every earlier end plus the starts at or
        before ``t``.  Both counts are ``searchsorted`` calls, and the
        resulting order equals the full ``(time, kind, seq)`` lexsort
        because that key is unique per event.
        """
        n = len(start_t)
        self.num_contacts = n
        self.num_events = 2 * n

        if n and bool(np.all(start_t[1:] >= start_t[:-1])):
            arange = np.arange(n, dtype=np.int64)
            end_order = np.argsort(end_t, kind="stable")
            end_sorted = end_t[end_order]
            pos_start = arange + np.searchsorted(end_sorted, start_t,
                                                 side="left")
            pos_end = arange + np.searchsorted(start_t, end_sorted,
                                               side="right")
            self.time = np.empty(2 * n, dtype=np.float64)
            self.time[pos_start] = start_t
            self.time[pos_end] = end_sorted
            self.kind = np.empty(2 * n, dtype=np.int8)
            self.kind[pos_start] = KIND_START
            self.kind[pos_end] = KIND_END
            self.a_idx = np.empty(2 * n, dtype=np.int32)
            self.a_idx[pos_start] = a_idx
            self.a_idx[pos_end] = a_idx[end_order]
            self.b_idx = np.empty(2 * n, dtype=np.int32)
            self.b_idx[pos_start] = b_idx
            self.b_idx[pos_end] = b_idx[end_order]
            #: contact start times in schedule order (a sorted
            #: subsequence of ``time``), for O(log n) opened-by-t queries
            self.start_times = start_t
            return

        # General path (unsorted input): the original three-key lexsort.
        ev_time = np.concatenate([start_t, end_t])
        ev_kind = np.concatenate(
            [np.zeros(n, dtype=np.int8), np.ones(n, dtype=np.int8)]
        )
        ev_seq = np.concatenate(
            [np.arange(0, 2 * n, 2, dtype=np.int64),
             np.arange(1, 2 * n, 2, dtype=np.int64)]
        )
        ev_aidx = np.concatenate([a_idx, a_idx])
        ev_bidx = np.concatenate([b_idx, b_idx])
        order = np.lexsort((ev_seq, ev_kind, ev_time))
        self.time = ev_time[order]
        self.kind = ev_kind[order]
        self.a_idx = ev_aidx[order]
        self.b_idx = ev_bidx[order]
        self.start_times = np.sort(start_t) if n else start_t

    @property
    def a(self) -> np.ndarray:
        """Per-event first-endpoint node ids (materialised on demand)."""
        return self._id_arr[self.a_idx]

    @property
    def b(self) -> np.ndarray:
        """Per-event second-endpoint node ids (materialised on demand)."""
        return self._id_arr[self.b_idx]

    def slab_end(self, pos: int, slab_size: int) -> int:
        """End of the slab beginning at ``pos``: at least ``slab_size``
        events, extended so a timestamp is never split across slabs.

        Splitting a timestamp would let the executor run controls (which
        fire between a timestamp's contact starts and its deliveries)
        before static events of the *same* timestamp in a later slab --
        an ordering the event heap can never produce.
        """
        n = self.num_events
        if pos >= n:
            return n
        hi = min(pos + slab_size, n)
        if hi < n:
            hi = int(np.searchsorted(self.time, self.time[hi - 1],
                                     side="right"))
        return hi

    def events_until(self, t: float) -> int:
        """Number of events with time <= ``t`` (how many the object
        backend's heap would have popped by then)."""
        return int(np.searchsorted(self.time, t, side="right"))

    def contacts_opened_until(self, t: float) -> int:
        """Number of contacts whose start time is <= ``t``."""
        return int(np.searchsorted(self.start_times, t, side="right"))

    def __len__(self) -> int:
        return self.num_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContactEventStream({self.num_contacts} contacts, "
            f"{self.num_nodes} nodes)"
        )
