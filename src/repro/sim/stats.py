"""Counters and time-series recorders shared across the stack.

A :class:`StatsRegistry` is a flat namespace of named :class:`Counter`,
:class:`TimeSeries` and :class:`Tally` instruments.  Protocols record
into it during a run; :mod:`repro.analysis` reads it afterwards.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Iterator, Optional

#: When True, newly created :class:`Tally` instruments keep a bounded
#: uniform reservoir instead of every sample, making tally memory O(1)
#: per instrument -- the difference between ~8 bytes and ~0 bytes per
#: event at 10k+ node scale.  Percentiles become estimates; count, mean,
#: variance, min and max stay exact (Welford runs either way).  Exact
#: mode remains the default; the scale benchmarks flip this flag.
STREAMING_TALLIES = False

#: Reservoir size for streaming tallies.  4096 samples bound the p99
#: standard error under ~0.2 percentage points, plenty for benchmark
#: reporting.
RESERVOIR_SIZE = 4096


class Counter:
    """A monotonically adjustable scalar (usually a count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A current-value instrument: goes up and down, reads instantly.

    Unlike :class:`Counter` (an accumulating total), a gauge tracks a
    level -- e.g. the number of currently-fresh cache slots maintained by
    the incremental freshness accountant.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name}={self.value})"


class Tally:
    """Streaming mean/variance/min/max over observed samples (Welford).

    In the default exact mode every sample is retained (8 bytes each) so
    exact quantiles are available after the run via :meth:`percentile`;
    the sorted copy is cached and invalidated on the next
    :meth:`observe`.

    With ``streaming=True`` (or the module-level
    :data:`STREAMING_TALLIES` flag) only a fixed-size uniform reservoir
    (Vitter's Algorithm R, :data:`RESERVOIR_SIZE` samples) is kept:
    memory is bounded regardless of run length and :meth:`percentile`
    returns an unbiased estimate.  The reservoir's RNG is seeded from
    the tally name, so runs are reproducible.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max",
                 "_samples", "_sorted", "_streaming", "_rng")

    def __init__(self, name: str, streaming: Optional[bool] = None) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._sorted: Optional[list[float]] = None
        if streaming is None:
            streaming = STREAMING_TALLIES
        self._streaming = bool(streaming)
        # Seeded from the (stable) name, not the default entropy source,
        # so a streaming run is exactly reproducible.
        self._rng = (
            random.Random(zlib.crc32(name.encode())) if self._streaming
            else None
        )

    @property
    def streaming(self) -> bool:
        """True when this tally keeps a bounded reservoir (estimated
        percentiles) instead of every sample (exact percentiles)."""
        return self._streaming

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        samples = self._samples
        if not self._streaming or len(samples) < RESERVOIR_SIZE:
            samples.append(value)
            self._sorted = None
        else:
            # Algorithm R: the i-th observation replaces a reservoir slot
            # with probability k/i, keeping every sample equally likely
            # to be retained.
            j = self._rng.randrange(self.count)
            if j < RESERVOIR_SIZE:
                samples[j] = value
                self._sorted = None

    def percentile(self, q: float) -> float:
        """q-th percentile (0 <= q <= 100), linearly interpolated between
        order statistics (numpy's default convention); NaN when no
        samples have been observed.  Exact in the default mode, estimated
        from the reservoir in streaming mode."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return math.nan
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._samples)
        rank = (len(ordered) - 1) * (q / 100.0)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); NaN with fewer than 2 samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan


class TimeSeries:
    """(time, value) samples recorded over a run."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def mean(self) -> float:
        """Unweighted mean of the recorded values."""
        return sum(self.values) / len(self.values) if self.values else math.nan

    def time_average(self, horizon: Optional[float] = None) -> float:
        """Piecewise-constant time average of the series.

        Each value is held until the next sample; the final value is held
        until ``horizon`` (defaults to the last sample time, i.e. the
        final value gets zero weight).
        """
        if not self.times:
            return math.nan
        end = self.times[-1] if horizon is None else horizon
        if end <= self.times[0]:
            return self.values[0]
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else end
            t_next = min(t_next, end)
            if t_next > t:
                total += v * (t_next - t)
        return total / (end - self.times[0])


class StatsRegistry:
    """Flat namespace of instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}
        self._tallies: dict[str, Tally] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def series(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        return series

    def tally(self, name: str) -> Tally:
        tally = self._tallies.get(name)
        if tally is None:
            tally = self._tallies[name] = Tally(name)
        return tally

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """Read a counter without creating it."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Read a gauge without creating it."""
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else default

    def gauges(self) -> dict[str, float]:
        """Snapshot of all gauge values."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def counters(self) -> dict[str, float]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def all_series(self) -> dict[str, TimeSeries]:
        return dict(self._series)

    def all_tallies(self) -> dict[str, Tally]:
        return dict(self._tallies)
