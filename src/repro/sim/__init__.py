"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event engine that every
trace-driven experiment in this repository runs on:

- :mod:`repro.sim.engine` -- the event heap and simulation clock.
- :mod:`repro.sim.rng` -- named, reproducible random-number substreams.
- :mod:`repro.sim.messages` -- message data model exchanged over contacts.
- :mod:`repro.sim.node` -- protocol-hosting simulation nodes.
- :mod:`repro.sim.network` -- contact-driven network that replays a trace.
- :mod:`repro.sim.stats` -- counters and time-series recorders.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.messages import Message
from repro.sim.network import BandwidthLimitedLink, ContactNetwork, LinkModel
from repro.sim.node import Node, ProtocolHandler
from repro.sim.rng import RngRegistry
from repro.sim.stats import Counter, StatsRegistry, TimeSeries

__all__ = [
    "BandwidthLimitedLink",
    "ContactNetwork",
    "Counter",
    "Event",
    "LinkModel",
    "Message",
    "Node",
    "ProtocolHandler",
    "RngRegistry",
    "Simulator",
    "StatsRegistry",
    "TimeSeries",
]
