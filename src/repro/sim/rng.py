"""Named, reproducible random-number substreams.

Every stochastic component in a simulation (trace generator, query
workload, refresh process, each protocol instance...) draws from its own
named substream derived from one master seed.  This keeps components
statistically independent and means adding a new consumer of randomness
does not perturb the draws seen by existing ones -- a property the
regression benchmarks rely on.

Substreams are derived with :class:`numpy.random.SeedSequence` spawning
keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key.

    ``hash()`` is salted per-process for strings, so CRC32 is used to
    keep derivations identical across runs and interpreters.
    """
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Factory of named :class:`numpy.random.Generator` substreams.

    Example::

        rngs = RngRegistry(seed=42)
        trace_rng = rngs.get("trace")
        query_rng = rngs.get("queries")

    Repeated ``get`` with the same name returns the *same* generator
    instance, so a component can re-fetch its stream by name.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry derives all streams from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(_stable_key(name),))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry, e.g. one per simulation replication."""
        return RngRegistry(seed=(self._seed * 1_000_003 + _stable_key(name)) % (2**63))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
