"""Deterministic discrete-event simulation engine.

The engine is a classic event-heap design: callbacks are scheduled at
absolute simulation times, and :meth:`Simulator.run` pops them in
(time, priority, insertion-order) order.  Ties on time are broken first
by an explicit integer priority (lower runs first) and then by insertion
order, so a simulation with a fixed seed replays event-for-event.

Times are plain floats in seconds.  The engine knows nothing about
networks or traces; :mod:`repro.sim.network` builds on it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

from repro.obs.records import EngineEvent, EngineRun

#: Compaction kicks in only past this many cancelled entries, so small
#: simulations never pay the rebuild.
_COMPACT_MIN_CANCELLED = 64

_INF = math.inf


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so the heap pops them
    deterministically.  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion).

    The heap itself stores ``(time, priority, seq, event)`` tuples so
    the run loop's comparisons are C-level tuple compares; the ordering
    methods here exist for API compatibility and match the tuple order
    exactly (``seq`` is unique, so the comparison never goes past it).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self.sim = sim

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Event") -> bool:
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Event") -> bool:
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Event") -> bool:
        return self.sort_key() >= other.sort_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Event(t={self.time}, priority={self.priority}, seq={self.seq}, "
            f"cancelled={self.cancelled})"
        )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancelled()


class Simulator:
    """Event heap plus simulation clock.

    Example::

        sim = Simulator()
        sim.schedule_at(5.0, print, "hello at t=5")
        sim.run(until=10.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: heap of (time, priority, seq, Event) -- tuple entries keep the
        #: hottest comparison in the run loop a single C-level compare
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_executed = 0
        #: upper bound on cancelled events still sitting in the heap
        #: (an event cancelled after it was popped is counted but never
        #: found in the heap, so this may over-estimate -- compaction
        #: resets it to the truth)
        self._cancelled = 0
        #: optional :class:`repro.obs.bus.EventBus`.  Checked once per
        #: :meth:`run` call -- never inside the event loop -- so a run
        #: without a bus executes the exact pre-instrumentation loop.
        self.trace = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (skipped events excluded)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Scheduling strictly in the past raises :class:`SimulationError`;
        scheduling exactly at ``now`` is allowed (the event runs after
        the current callback returns).
        """
        # Single chained comparison covers the hot path: it is False for
        # times in the past, for +/-inf and for NaN, so the expensive
        # diagnostics only run on the error branch.
        if not (self._now <= time < _INF):
            if not math.isfinite(time):
                raise SimulationError(
                    f"cannot schedule at non-finite time {time!r}"
                )
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, now is t={self._now:.6f}"
            )
        seq = next(self._seq)
        event = Event(float(time), priority, seq, callback, args, False, self)
        heapq.heappush(self._heap, (event.time, priority, seq, event))
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` seconds."""
        if not (0.0 <= delay < _INF):
            if not math.isfinite(delay):
                raise SimulationError(f"non-finite delay {delay!r}")
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_batch(
        self,
        entries: "list[tuple[float, int, Callable[..., None], tuple]]",
    ) -> int:
        """Bulk-schedule ``(time, priority, callback, args)`` entries.

        Appends every entry and re-heapifies once -- O(n + heap) instead
        of n ``heappush`` calls, which matters when a contact trace
        front-loads hundreds of thousands of events before the run.
        Sequence numbers are assigned in list order, so the pop order is
        *identical* to calling :meth:`schedule_at` once per entry (pops
        compare the full ``(time, priority, seq)`` key; the heap's
        internal layout is irrelevant).  Returns the number scheduled.
        """
        heap = self._heap
        append = heap.append
        next_seq = self._seq.__next__
        now = self._now
        for time, priority, callback, args in entries:
            if not (now <= time < _INF):
                if not math.isfinite(time):
                    raise SimulationError(
                        f"cannot schedule at non-finite time {time!r}"
                    )
                raise SimulationError(
                    f"cannot schedule at t={time:.6f}, now is t={now:.6f}"
                )
            time = float(time)
            seq = next_seq()
            append((time, priority, seq,
                    Event(time, priority, seq, callback, args, False, self)))
        heapq.heapify(heap)
        return len(entries)

    def _note_cancelled(self) -> None:
        """Account one cancellation; compact the heap when cancelled
        entries outnumber live ones.

        Lazy deletion alone lets churn-heavy runs (periodic probes and
        timers cancelled en masse) grow the heap without bound.  The
        rebuild filters live entries and re-heapifies in place -- pops
        compare the full ``(time, priority, seq)`` key, so the pop order
        after compaction is identical.
        """
        self._cancelled += 1
        heap = self._heap
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(heap)
        ):
            heap[:] = [entry for entry in heap if not entry[3].cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events in order until the heap drains or limits hit.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        Returns the simulation time when the run stopped.  The clock
        advances to ``until`` even when the heap drains earlier, so a
        subsequent ``run`` continues from there.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        trace = self.trace
        if trace is not None:
            trace.emit(EngineRun(self._now, "begin", self._events_executed))
        # Hoisted once per run() call: the loop below only pays a local
        # boolean test, not an attribute walk, when tracing is off.
        engine_events = trace is not None and trace.engine_events
        try:
            executed = 0
            while heap:
                time = heap[0][0]
                if until is not None and time > until:
                    break
                event = heappop(heap)[3]
                if event.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                self._now = time
                if engine_events:
                    self._emit_engine_event(trace, event)
                event.callback(*event.args)
                self._events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False
            if trace is not None:
                trace.emit(EngineRun(self._now, "end", self._events_executed))

    @staticmethod
    def _emit_engine_event(trace, event: Event) -> None:
        """Per-executed-event record (``EventBus(engine_events=True)``
        opt-in -- this is *per simulation event*, easily the highest
        volume record in a trace)."""
        callback = event.callback
        name = getattr(callback, "__qualname__", None) or repr(callback)
        bound = getattr(callback, "__self__", None)
        owner = getattr(bound, "node_id", None) if bound is not None else None
        trace.emit(EngineEvent(event.time, name, event.priority, owner))

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_executed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if drained."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            if self._cancelled > 0:
                self._cancelled -= 1
        return self._heap[0][0] if self._heap else None
