"""Message data model.

Messages are the unit of exchange during a contact.  A message carries an
application ``kind`` (e.g. ``"refresh"``, ``"query"``), source and
destination node ids, a size in bytes (used by bandwidth-limited link
models), an optional hop budget, and an opaque ``payload`` dict owned by
the protocol that created it.

Replication-style protocols duplicate messages with :meth:`Message.copy`;
copies share the logical ``msg_id`` (so duplicate suppression works) but
get distinct ``copy_id`` values for bookkeeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.records import MessageCreate


_MSG_IDS = itertools.count(1)
_COPY_IDS = itertools.count(1)

#: Optional :class:`repro.obs.bus.EventBus` receiving a ``msg.create``
#: record for every constructed Message.  Module-level because Message
#: construction sites are spread across every protocol; runs scope it
#: with :func:`set_message_trace` inside try/finally so a bus never
#: leaks across runs.
_TRACE = None


def set_message_trace(bus) -> None:
    """Install (or, with ``None``, remove) the message-creation bus."""
    global _TRACE
    _TRACE = bus


def reset_message_ids() -> None:
    """Reset the global id counters (used by tests for determinism)."""
    global _MSG_IDS, _COPY_IDS
    _MSG_IDS = itertools.count(1)
    _COPY_IDS = itertools.count(1)


@dataclass
class Message:
    """A protocol message exchanged over opportunistic contacts."""

    kind: str
    src: int
    dst: Optional[int]
    created_at: float
    size: int = 256
    ttl: Optional[float] = None
    hops_left: Optional[int] = None
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_MSG_IDS))
    copy_id: int = field(default_factory=lambda: next(_COPY_IDS))
    hop_count: int = 0

    def __post_init__(self) -> None:
        if _TRACE is not None:
            _TRACE.emit(
                MessageCreate(self.created_at, self.kind, self.src, self.dst,
                              self.size, self.msg_id, self.copy_id)
            )

    def copy(self) -> "Message":
        """A replica of this message: same ``msg_id``, new ``copy_id``."""
        return Message(
            kind=self.kind,
            src=self.src,
            dst=self.dst,
            created_at=self.created_at,
            size=self.size,
            ttl=self.ttl,
            hops_left=self.hops_left,
            payload=dict(self.payload),
            msg_id=self.msg_id,
            hop_count=self.hop_count,
        )

    def expired(self, now: float) -> bool:
        """True if the message's TTL has elapsed at simulation time ``now``."""
        return self.ttl is not None and now - self.created_at > self.ttl

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.kind} #{self.msg_id}.{self.copy_id} "
            f"{self.src}->{self.dst} t={self.created_at:.1f})"
        )
