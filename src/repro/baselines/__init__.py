"""Baseline refresh schemes the paper compares against.

Every baseline shares HDR's runtime machinery and differs only in
structure and provisioning, so each is expressed as a
:class:`~repro.core.scheme.SchemeConfig` (see the table in
:mod:`repro.core.scheme`):

- :data:`SOURCE_ONLY` -- caching nodes are refreshed only when they meet
  the data source directly.  No cooperation: the overhead floor and the
  freshness floor among active schemes.
- :data:`FLOODING` -- epidemic version gossip through every node.  The
  freshness ceiling and the overhead ceiling.
- :data:`FLAT_REPLICATION` -- the source is directly responsible for all
  caching nodes, with probabilistic relay replication but no hierarchy
  (ablates the hierarchy).
- :data:`RANDOM_ASSIGNMENT` -- the tree structure is kept but children
  pick random parents (ablates rate-aware assignment).
- :data:`NO_REFRESH` -- cached entries only expire (the floor all
  schemes are measured against).
- :data:`INVALIDATION` -- epidemic invalidation notices plus direct
  source re-fetch: the classic cache-consistency alternative (compared
  separately in E13; it trades availability for served-data validity,
  so it is not part of the freshness comparison order).
"""

from repro.core.scheme import SCHEMES, SchemeConfig

SOURCE_ONLY: SchemeConfig = SCHEMES["source"]
FLOODING: SchemeConfig = SCHEMES["flooding"]
FLAT_REPLICATION: SchemeConfig = SCHEMES["flat"]
RANDOM_ASSIGNMENT: SchemeConfig = SCHEMES["random"]
NO_REFRESH: SchemeConfig = SCHEMES["none"]
INVALIDATION: SchemeConfig = SCHEMES["invalidate"]

#: Scheme names in the order the freshness-comparison tables report them.
COMPARISON_ORDER = ["hdr", "flooding", "flat", "random", "source", "none"]

__all__ = [
    "COMPARISON_ORDER",
    "FLAT_REPLICATION",
    "FLOODING",
    "INVALIDATION",
    "NO_REFRESH",
    "RANDOM_ASSIGNMENT",
    "SOURCE_ONLY",
]
