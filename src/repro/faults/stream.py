"""Deterministic fault injection for the live service's ingest feed.

:class:`StreamFaultInjector` wraps any async batch source
(:mod:`repro.service.sources`) and perturbs the stream the way a real
opportunistic feed misbehaves:

- **malformed** -- a line is replaced with garbage bytes (exercises the
  quarantine path);
- **duplicate** -- an event is delivered twice (the watermark
  discipline sheds the copy as late);
- **reorder** -- an event is swapped with its successor (the earlier
  one then arrives behind the watermark);
- **skew** -- an event's timestamps are shifted by a bounded uniform
  clock error;
- **disconnect** -- the feed pauses for a window: events inside it are
  buffered and arrive in one late burst, like a peer reconnecting and
  flushing its backlog.

Same determinism contract as the batch injectors: every decision comes
from ``default_rng([plan.seed_salt ^ _STREAM_SALT_MIX, seed])``, so a
``(plan, seed)`` pair perturbs the stream identically on every run.
The injector sits *upstream* of the durability layer's journal, so a
checkpointed run journals the post-fault stream -- recovery replays
exactly what the service actually saw, and kill/resume equivalence
holds even under stream faults.

Note the faulted stream is a different input than the clean trace, so a
faulted run's scores legitimately differ from the batch baseline; what
must (and does) stay invariant is crash/resume equivalence *given* the
faulted stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.obs.records import FaultStream
from repro.service.events import ContactEvent, MalformedEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

#: mixed into ``plan.seed_salt`` so the stream RNG never collides with
#: the batch fault stream of the same plan + seed
_STREAM_SALT_MIX = 0x57EA

DAY = 86400.0

_ACTIONS = ("malformed", "duplicate", "reorder", "skew", "disconnect")


class StreamFaultInjector:
    """Async-iterable wrapper perturbing batches from an inner source.

    Yields batches of :class:`ContactEvent` / raw-line items, the same
    shapes the pipeline's planner accepts.  Per-action tallies live in
    :attr:`counts` and (when a registry is given) in
    ``service.faults.<action>`` counters; each batch that was perturbed
    emits one ``fault.stream`` record per action when a bus is wired.
    """

    def __init__(self, inner, plan: "FaultPlan", seed: int,
                 registry=None, bus=None) -> None:
        if not plan.has_stream_faults():
            raise ValueError(
                "plan has no stream faults; wrap nothing instead "
                "(has_stream_faults() is false)"
            )
        self.inner = inner
        self.plan = plan
        self.bus = bus
        self.rng = np.random.default_rng(
            [(plan.seed_salt ^ _STREAM_SALT_MIX) & 0xFFFFFFFF, int(seed)]
        )
        self.counts = {action: 0 for action in _ACTIONS}
        self._counters = (
            {action: registry.counter(f"service.faults.{action}")
             for action in _ACTIONS}
            if registry is not None else None
        )
        # next disconnect window, in stream (event-timestamp) time
        rate = plan.stream_disconnect_rate_per_day / DAY
        self._next_disconnect = (
            float(self.rng.exponential(1.0 / rate)) if rate > 0
            else float("inf")
        )
        self._window_end: Optional[float] = None
        self._held: list = []

    def cursor(self):
        """Pass the inner source's cursor through (resume still works)."""
        inner_cursor = getattr(self.inner, "cursor", None)
        return inner_cursor() if inner_cursor is not None else None

    def _tally(self, action: str, count: int, at: float) -> None:
        if not count:
            return
        self.counts[action] += count
        if self._counters is not None:
            self._counters[action].add(count)
        if self.bus is not None:
            self.bus.emit(FaultStream(at, action, count))

    @staticmethod
    def _event_of(item):
        if isinstance(item, ContactEvent):
            return item
        try:
            return ContactEvent.from_line(item)
        except MalformedEvent:
            return None

    def _skewed(self, item):
        event = self._event_of(item)
        if event is None:
            return item
        skew = float(self.rng.uniform(-self.plan.stream_skew_max_s,
                                      self.plan.stream_skew_max_s))
        start = max(0.0, event.start + skew)
        return ContactEvent(a=event.a, b=event.b, start=start,
                            end=max(start, event.end + skew))

    def _disconnect_pass(self, items: list, tally: dict) -> list:
        """Hold items inside a disconnect window; flush when it ends."""
        plan = self.plan
        rate = plan.stream_disconnect_rate_per_day / DAY
        out: list = []

        def flush() -> None:
            if self._held:
                out.extend(self._held)
                tally["disconnect"] += len(self._held)
                self._held = []

        for item in items:
            event = self._event_of(item)
            at = event.start if event is not None else None
            reconnected = False
            if self._window_end is not None:
                if at is None or at < self._window_end:
                    self._held.append(item)
                    continue
                # reconnect: the first live event goes through, then the
                # backlog follows in one burst *behind* it -- arriving
                # below the watermark, which is what makes a disconnect
                # observable downstream
                reconnected = True
                self._window_end = None
            if at is not None and at >= self._next_disconnect:
                self._window_end = at + float(
                    self.rng.exponential(plan.stream_mean_disconnect_s)
                )
                self._next_disconnect = self._window_end + float(
                    self.rng.exponential(1.0 / rate)
                )
                if reconnected:
                    flush()
                self._held.append(item)
                continue
            out.append(item)
            if reconnected:
                flush()
        return out

    def _perturb(self, batch: list) -> list:
        plan = self.plan
        rng = self.rng
        tally = {action: 0 for action in _ACTIONS}
        items: list = []
        for item in batch:
            if (plan.stream_skew_rate
                    and rng.random() < plan.stream_skew_rate):
                item = self._skewed(item)
                tally["skew"] += 1
            if (plan.stream_malformed_rate
                    and rng.random() < plan.stream_malformed_rate):
                raw = (item.to_line() if isinstance(item, ContactEvent)
                       else str(item))
                items.append("\x00garbage " + raw[: max(0, len(raw) // 2)])
                tally["malformed"] += 1
                continue
            items.append(item)
            if (plan.stream_duplicate_rate
                    and rng.random() < plan.stream_duplicate_rate):
                items.append(item)
                tally["duplicate"] += 1
        if plan.stream_reorder_rate:
            for index in range(len(items) - 1):
                if rng.random() < plan.stream_reorder_rate:
                    items[index], items[index + 1] = (
                        items[index + 1], items[index]
                    )
                    tally["reorder"] += 1
        if plan.stream_disconnect_rate_per_day > 0:
            items = self._disconnect_pass(items, tally)
        last = self._event_of(items[-1]) if items else None
        at = last.start if last is not None else 0.0
        for action, count in tally.items():
            self._tally(action, count, at)
        return items

    async def __aiter__(self):
        async for batch in self.inner:
            items = self._perturb(list(batch))
            if items:
                yield items
        if self._held:
            # stream ended mid-window: the backlog still arrives
            held, self._held = self._held, []
            self._tally("disconnect", len(held),
                        self._window_end or 0.0)
            yield held
