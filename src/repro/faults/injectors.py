"""Live fault injectors: a :class:`FaultPlan` wired to one runtime.

:func:`install_faults` is the only entry point.  Given a wired
:class:`~repro.core.scheme.SchemeRuntime`, it installs:

* a :class:`FaultController` on the network's ``faults`` hook -- per-hop
  message loss, finite-bandwidth transmission with
  truncation-on-contact-close, link flaps (forced early contact closes
  through :meth:`~repro.sim.network.ContactNetwork.force_contact_close`,
  which releases link budgets exactly once), and bandwidth degradation;
* a :class:`CrashProcess` -- memoryless node crash/recover over the
  configured scope, with warm or wiped caches.  Crashes flow through
  :meth:`~repro.sim.network.ContactNetwork.set_online`, so the freshness
  accountant and every online listener observe them like any churn, and
  a wipe flows through :meth:`~repro.caching.store.CacheStore.clear`,
  so incremental accounting never diverges from the store;
* an :class:`OutageProcess` -- data-source outage windows during which
  version generation stalls (:meth:`SourceHandler.suspend`).

All fault decisions draw from one dedicated
``default_rng([plan.seed_salt, seed])`` stream: the simulation's own
randomness is untouched, a given ``(plan, seed)`` pair replays the exact
same fault sequence, and a null/absent plan wires nothing at all --
the run is bit-identical to a build predating this module.

Every injected event is counted in the runtime's stats registry under
``fault.*`` and, when a trace bus is attached, emitted as a typed
``fault.*`` record (see :mod:`repro.obs.records`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.sim.messages import Message
from repro.sim.network import _PRIORITY_CONTACT_END, _PRIORITY_DELIVERY
from repro.sim.node import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scheme import SchemeRuntime


class FaultController:
    """Message-plane and link-plane fault injection for one network.

    Installed as ``network.faults``; the network calls
    :meth:`on_contact_open` for every opened contact and
    :meth:`intercept_delivery` for every admitted transfer.  Both are
    no-ops (and draw no randomness) for sub-features the plan leaves
    disabled, so e.g. a loss-only plan is unaffected by flap code paths.
    """

    def __init__(self, plan: FaultPlan, runtime: "SchemeRuntime",
                 rng: np.random.Generator) -> None:
        self.plan = plan
        self.runtime = runtime
        self.network = runtime.network
        self.sim = runtime.sim
        self.rng = rng
        stats = runtime.stats
        self._c_lost = stats.counter("fault.msg_lost")
        self._c_truncated = stats.counter("fault.msg_truncated")
        self._c_flaps = stats.counter("fault.link_flaps")
        self._c_delayed = stats.counter("fault.msg_delayed")

    # -- link plane -------------------------------------------------------

    def on_contact_open(self, a: int, b: int, duration: float) -> float:
        """Flap/degrade hook; returns the duration the link model sees."""
        plan = self.plan
        effective = duration
        if plan.flap_rate > 0.0 and self.rng.random() < plan.flap_rate:
            fraction = float(
                self.rng.uniform(plan.min_cut_fraction, 1.0)
            )
            cut = duration * fraction
            if cut < duration:
                self.sim.schedule_at(
                    self.sim.now + cut,
                    self.network.force_contact_close,
                    a,
                    b,
                    priority=_PRIORITY_CONTACT_END,
                )
                self._c_flaps.add(1)
                effective = cut
                trace = self.network.trace
                if trace is not None:
                    from repro.obs.records import FaultLinkFlap

                    trace.emit(
                        FaultLinkFlap(self.sim.now, a, b, duration, cut)
                    )
        if plan.degrade_factor < 1.0:
            effective *= plan.degrade_factor
        return effective

    # -- message plane ----------------------------------------------------

    def intercept_delivery(self, message: Message, sender: Node,
                           receiver: Node) -> bool:
        """Post-admission hook: lose, delay, or decline to intervene.

        Returns ``True`` when the fault layer owns the delivery from
        here (loss, or a delayed finite-bandwidth delivery); ``False``
        falls through to the network's instantaneous path.
        """
        plan = self.plan
        if plan.loss_rate > 0.0 and self.rng.random() < plan.loss_rate:
            self._c_lost.add(1)
            trace = self.network.trace
            if trace is not None:
                from repro.obs.records import FaultMessageLoss

                trace.emit(
                    FaultMessageLoss(self.sim.now, message.kind,
                                     sender.node_id, receiver.node_id,
                                     message.msg_id)
                )
            return True
        if plan.bandwidth_bps is not None:
            delay = message.size * 8.0 / plan.bandwidth_bps
            self._c_delayed.add(1)
            self.sim.schedule_at(
                self.sim.now + delay,
                self._deliver_after_transmission,
                message,
                sender,
                receiver,
                priority=_PRIORITY_DELIVERY,
            )
            return True
        return False

    def _deliver_after_transmission(self, message: Message, sender: Node,
                                    receiver: Node) -> None:
        """Finite-bandwidth delivery: the contact must have survived the
        transmission time, else the transfer is truncated."""
        if not sender.in_contact_with(receiver.node_id):
            self._c_truncated.add(1)
            trace = self.network.trace
            if trace is not None:
                from repro.obs.records import FaultTruncation

                trace.emit(
                    FaultTruncation(self.sim.now, message.kind,
                                    sender.node_id, receiver.node_id,
                                    message.msg_id)
                )
            return
        # _traced_delivery emits msg.rx when tracing and is a plain
        # receiver.receive otherwise.
        self.network._traced_delivery(message, sender, receiver)


class CrashProcess:
    """Memoryless crash/recover over the plan's node scope.

    Crashes are network-level (the device vanishes from every contact);
    cache persistence decides whether a caching node restarts warm or
    cold.  Mirrors :class:`repro.core.maintenance.ChurnProcess` pacing:
    a recovery scheduled past ``until`` never fires, so a late crash
    keeps the node down for the rest of the run.
    """

    def __init__(self, plan: FaultPlan, runtime: "SchemeRuntime",
                 rng: np.random.Generator, until: float) -> None:
        self.plan = plan
        self.runtime = runtime
        self.rng = rng
        self.until = until
        self.crashed: set[int] = set()
        stats = runtime.stats
        self._c_crashes = stats.counter("fault.crashes")
        self._c_recoveries = stats.counter("fault.recoveries")
        self._c_wiped = stats.counter("fault.cache_entries_wiped")
        if plan.crash_scope == "caching":
            self.scope = list(runtime.caching_nodes)
        else:
            self.scope = sorted(runtime.nodes)

    def install(self) -> None:
        if self.plan.crash_rate <= 0.0:
            return
        for node_id in self.scope:
            self._schedule_crash(node_id)

    def _schedule_crash(self, node_id: int) -> None:
        delay = float(self.rng.exponential(1.0 / self.plan.crash_rate))
        when = self.runtime.sim.now + delay
        if when <= self.until:
            self.runtime.sim.schedule_at(when, self._crash, node_id)

    def _crash(self, node_id: int) -> None:
        node = self.runtime.nodes[node_id]
        if not node.online:
            # Already down (overlapping churn process); try again later.
            self._schedule_crash(node_id)
            return
        now = self.runtime.sim.now
        self.runtime.network.set_online(node_id, False)
        self.crashed.add(node_id)
        entries_lost = 0
        wiped = self.plan.cache_persistence == "wipe"
        store = self.runtime.stores.get(node_id)
        if wiped and store is not None:
            entries_lost = store.clear(now)
            self._c_wiped.add(entries_lost)
        self._c_crashes.add(1)
        trace = self.runtime.network.trace
        if trace is not None:
            from repro.obs.records import FaultCrash

            trace.emit(FaultCrash(now, node_id, wiped, entries_lost))
        downtime = float(self.rng.exponential(self.plan.mean_downtime_s))
        when = now + downtime
        if when <= self.until:
            self.runtime.sim.schedule_at(when, self._recover, node_id)

    def _recover(self, node_id: int) -> None:
        if node_id not in self.crashed:
            return
        self.crashed.discard(node_id)
        if not self.runtime.nodes[node_id].online:
            self.runtime.network.set_online(node_id, True)
        self._c_recoveries.add(1)
        trace = self.runtime.network.trace
        if trace is not None:
            from repro.obs.records import FaultRecover

            trace.emit(FaultRecover(self.runtime.sim.now, node_id))
        self._schedule_crash(node_id)


class OutageProcess:
    """Data-source outage windows stalling version generation."""

    def __init__(self, plan: FaultPlan, runtime: "SchemeRuntime",
                 rng: np.random.Generator, until: float) -> None:
        from repro.core.refresh import SourceHandler

        self.plan = plan
        self.runtime = runtime
        self.rng = rng
        self.until = until
        self._c_outages = runtime.stats.counter("fault.source_outages")
        self.handlers: dict[int, SourceHandler] = {}
        for source in runtime.sources:
            handler = runtime.nodes[source].find_handler(SourceHandler)
            if handler is not None:
                self.handlers[source] = handler

    def install(self) -> None:
        if self.plan.outage_rate <= 0.0:
            return
        for source in sorted(self.handlers):
            self._schedule_outage(source)

    def _schedule_outage(self, source: int) -> None:
        delay = float(self.rng.exponential(1.0 / self.plan.outage_rate))
        when = self.runtime.sim.now + delay
        if when <= self.until:
            self.runtime.sim.schedule_at(when, self._begin, source)

    def _begin(self, source: int) -> None:
        handler = self.handlers[source]
        duration = float(self.rng.exponential(self.plan.mean_outage_s))
        handler.suspend()
        self._c_outages.add(1)
        now = self.runtime.sim.now
        trace = self.runtime.network.trace
        if trace is not None:
            from repro.obs.records import FaultOutage

            trace.emit(FaultOutage(now, source, "begin", duration))
        self.runtime.sim.schedule_at(now + duration, self._end, source,
                                     duration)

    def _end(self, source: int, duration: float) -> None:
        self.handlers[source].resume()
        trace = self.runtime.network.trace
        if trace is not None:
            from repro.obs.records import FaultOutage

            trace.emit(
                FaultOutage(self.runtime.sim.now, source, "end", duration)
            )
        self._schedule_outage(source)


class InstalledFaults:
    """Handle on everything :func:`install_faults` wired to a runtime."""

    def __init__(self, plan: FaultPlan, controller: FaultController,
                 crashes: CrashProcess, outages: OutageProcess) -> None:
        self.plan = plan
        self.controller = controller
        self.crashes = crashes
        self.outages = outages

    def counters(self) -> dict[str, float]:
        """Every ``fault.*`` counter value (diagnostics/tests)."""
        stats = self.controller.runtime.stats
        return {
            name: stats.counter_value(name)
            for name in (
                "fault.msg_lost", "fault.msg_truncated", "fault.msg_delayed",
                "fault.link_flaps", "fault.crashes", "fault.recoveries",
                "fault.cache_entries_wiped", "fault.source_outages",
            )
        }


def install_faults(
    runtime: "SchemeRuntime",
    plan: Optional[FaultPlan],
    seed: int,
    until: float,
) -> Optional[InstalledFaults]:
    """Wire ``plan`` to ``runtime``; must run before ``runtime.run``.

    A ``None`` or null plan installs nothing and returns ``None`` -- the
    run stays bit-identical to one without the fault subsystem.  The
    fault RNG stream is ``default_rng([plan.seed_salt, seed])``, fully
    independent of the simulation's own seeded randomness.
    """
    if plan is None or plan.is_null():
        return None
    plan.validate()
    rng = np.random.default_rng([plan.seed_salt & 0xFFFFFFFF, int(seed)])
    controller = FaultController(plan, runtime, rng)
    runtime.network.faults = controller
    crashes = CrashProcess(plan, runtime, rng, until)
    crashes.install()
    outages = OutageProcess(plan, runtime, rng, until)
    outages.install()
    return InstalledFaults(plan, controller, crashes, outages)
