"""Seeded, deterministic fault injection for repro simulations.

The subsystem is declarative: a :class:`~repro.faults.plan.FaultPlan`
(built in code or loaded from TOML via
:func:`~repro.faults.plan.load_plan`) names the faults; a single call to
:func:`~repro.faults.injectors.install_faults` wires them into a built
:class:`~repro.core.scheme.SchemeRuntime` before it runs.  With no plan
(or a null plan) nothing is installed and runs are bit-identical to a
faultless build; with a plan, all fault randomness comes from one
dedicated RNG stream keyed by ``(plan.seed_salt, seed)`` so a run is
reproducible regardless of worker count.

See ``docs/ROBUSTNESS.md`` for the full model.
"""

from repro.faults.injectors import (
    CrashProcess,
    FaultController,
    InstalledFaults,
    OutageProcess,
    install_faults,
)
from repro.faults.plan import (
    DEFAULT_SEED_SALT,
    FaultPlan,
    load_plan,
    plan_from_dict,
)


def __getattr__(name: str):
    # Lazy: the stream injector pulls in the whole service package,
    # which batch-only users of repro.faults never need.
    if name == "StreamFaultInjector":
        from repro.faults.stream import StreamFaultInjector

        return StreamFaultInjector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_SEED_SALT",
    "CrashProcess",
    "FaultController",
    "FaultPlan",
    "InstalledFaults",
    "OutageProcess",
    "StreamFaultInjector",
    "install_faults",
    "load_plan",
    "plan_from_dict",
]
