"""Declarative fault plans.

A :class:`FaultPlan` describes every adversarial condition a simulation
run should be subjected to: per-hop message loss, finite-bandwidth
transmission (which makes contact closes able to truncate in-flight
transfers), node crash/recover cycles with configurable cache
persistence, link flaps and bandwidth degradation, and data-source
outage windows that stall version generation.

Plans are plain frozen dataclasses so they pickle into pool workers
unchanged, and they are *pure configuration*: nothing here touches a
simulation.  :func:`repro.faults.injectors.install_faults` turns a plan
into live injectors wired to one :class:`~repro.core.scheme.SchemeRuntime`.

Determinism contract:

* a run with **no plan** (or :meth:`FaultPlan.is_null` true) consumes no
  extra randomness and schedules no extra events -- its output is
  bit-identical to a build without the fault subsystem;
* a run **with** a plan draws every fault decision from a dedicated RNG
  stream seeded by ``(seed_salt, run seed)``, so the same
  ``(plan, seed)`` pair replays the exact same faults regardless of
  worker count or scheduling.

Plans load from TOML (:func:`load_plan`)::

    # faults.toml
    [messages]
    loss_rate = 0.05            # per-hop loss probability
    bandwidth_bps = 250_000     # finite transmission -> truncation possible

    [crashes]
    rate_per_day = 0.5          # per-node crash rate
    mean_downtime_s = 3600.0
    cache = "wipe"              # or "warm"

    [links]
    flap_rate = 0.1             # fraction of contacts cut short
    min_cut_fraction = 0.2      # a flapped contact keeps >= 20% of its span
    degrade_factor = 0.8        # link budgets see 80% of the real duration

    [sources]
    outage_rate_per_day = 0.25  # per-source outage rate
    mean_outage_s = 7200.0

    [stream]                    # live-service ingest faults only
    malformed_rate = 0.01       # lines replaced with garbage
    duplicate_rate = 0.01       # events delivered twice
    reorder_rate = 0.01         # events swapped with a neighbour
    skew_rate = 0.01            # events with skewed timestamps
    skew_max_s = 120.0
    disconnect_rate_per_day = 2.0   # feed-pause windows
    mean_disconnect_s = 600.0

The ``[stream]`` section only affects the live service's ingest path
(:class:`repro.faults.stream.StreamFaultInjector`); batch runs ignore it
entirely, so a plan carrying only stream faults keeps batch output
bit-identical (:meth:`FaultPlan.is_null` stays true).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any

DAY = 86400.0

#: default salt mixed with the run seed for the fault RNG stream, so the
#: fault draws never collide with the scheme's own ``default_rng(seed)``
DEFAULT_SEED_SALT = 0xFA17


@dataclass(frozen=True)
class FaultPlan:
    """Every knob of the fault-injection subsystem (all off by default)."""

    # -- message plane ----------------------------------------------------
    #: probability an admitted transfer is lost in flight (per hop); the
    #: sender is charged and believes the send succeeded
    loss_rate: float = 0.0
    #: finite link bandwidth in bits/s; transfers then take
    #: ``size * 8 / bandwidth`` seconds and a contact close (trace-driven
    #: or flap-forced) mid-flight truncates them.  ``None`` keeps the
    #: instantaneous-delivery model.
    bandwidth_bps: float | None = None

    # -- node crashes -----------------------------------------------------
    #: per-node crash rate in 1/day (0 disables crashes)
    crash_rate_per_day: float = 0.0
    #: mean downtime after a crash, seconds
    mean_downtime_s: float = 3600.0
    #: ``"caching"`` crashes only caching nodes, ``"all"`` every node
    crash_scope: str = "caching"
    #: ``"warm"`` keeps the cache across a crash (battery pull, flash
    #: survives); ``"wipe"`` clears it (cold restart)
    cache_persistence: str = "warm"

    # -- link faults ------------------------------------------------------
    #: probability a contact is cut short (flaps) before its trace end
    flap_rate: float = 0.0
    #: a flapped contact keeps at least this fraction of its duration
    min_cut_fraction: float = 0.1
    #: multiply the duration the link model sees (bandwidth degradation
    #: for budget-based links); 1.0 = no degradation
    degrade_factor: float = 1.0

    # -- data-source outages ---------------------------------------------
    #: per-source outage rate in 1/day (0 disables outages)
    outage_rate_per_day: float = 0.0
    #: mean outage window length, seconds
    mean_outage_s: float = 7200.0

    # -- streaming ingest faults (live service only) ----------------------
    #: probability a stream line is replaced with garbage bytes
    stream_malformed_rate: float = 0.0
    #: probability a stream event is delivered twice
    stream_duplicate_rate: float = 0.0
    #: probability a stream event is swapped with its successor
    stream_reorder_rate: float = 0.0
    #: probability a stream event's timestamps are skewed
    stream_skew_rate: float = 0.0
    #: maximum clock skew applied to a skewed event, seconds
    stream_skew_max_s: float = 60.0
    #: feed-disconnect window rate in 1/day of stream (sim) time
    stream_disconnect_rate_per_day: float = 0.0
    #: mean disconnect window length, seconds (events inside a window
    #: are buffered and arrive in a late burst, like a reconnect)
    stream_mean_disconnect_s: float = 600.0

    #: salt mixed with the run seed for the dedicated fault RNG stream
    seed_salt: int = DEFAULT_SEED_SALT

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-range or unknown field value."""
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.bandwidth_bps is not None and not self.bandwidth_bps > 0:
            raise ValueError(
                f"bandwidth_bps must be positive, got {self.bandwidth_bps}"
            )
        if self.crash_rate_per_day < 0 or not math.isfinite(self.crash_rate_per_day):
            raise ValueError(
                f"crash_rate_per_day must be a finite non-negative number, "
                f"got {self.crash_rate_per_day}"
            )
        if not self.mean_downtime_s > 0:
            raise ValueError(
                f"mean_downtime_s must be positive, got {self.mean_downtime_s}"
            )
        if self.crash_scope not in ("caching", "all"):
            raise ValueError(
                f"crash_scope must be 'caching' or 'all', got {self.crash_scope!r}"
            )
        if self.cache_persistence not in ("warm", "wipe"):
            raise ValueError(
                f"cache_persistence must be 'warm' or 'wipe', "
                f"got {self.cache_persistence!r}"
            )
        if not 0.0 <= self.flap_rate <= 1.0:
            raise ValueError(f"flap_rate must be in [0, 1], got {self.flap_rate}")
        if not 0.0 <= self.min_cut_fraction <= 1.0:
            raise ValueError(
                f"min_cut_fraction must be in [0, 1], got {self.min_cut_fraction}"
            )
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError(
                f"degrade_factor must be in (0, 1], got {self.degrade_factor}"
            )
        if self.outage_rate_per_day < 0 or not math.isfinite(self.outage_rate_per_day):
            raise ValueError(
                f"outage_rate_per_day must be a finite non-negative number, "
                f"got {self.outage_rate_per_day}"
            )
        if not self.mean_outage_s > 0:
            raise ValueError(
                f"mean_outage_s must be positive, got {self.mean_outage_s}"
            )
        for name in ("stream_malformed_rate", "stream_duplicate_rate",
                     "stream_reorder_rate", "stream_skew_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not self.stream_skew_max_s >= 0:
            raise ValueError(
                f"stream_skew_max_s must be >= 0, got {self.stream_skew_max_s}"
            )
        if self.stream_disconnect_rate_per_day < 0 or not math.isfinite(
            self.stream_disconnect_rate_per_day
        ):
            raise ValueError(
                f"stream_disconnect_rate_per_day must be a finite "
                f"non-negative number, got {self.stream_disconnect_rate_per_day}"
            )
        if not self.stream_mean_disconnect_s > 0:
            raise ValueError(
                f"stream_mean_disconnect_s must be positive, "
                f"got {self.stream_mean_disconnect_s}"
            )

    def is_null(self) -> bool:
        """True when the plan injects nothing into a *batch* run
        (baseline stays bit-identical).  Stream-only faults do not
        count: they never touch the batch path.
        """
        return (
            self.loss_rate == 0.0
            and self.bandwidth_bps is None
            and self.crash_rate_per_day == 0.0
            and self.flap_rate == 0.0
            and self.degrade_factor == 1.0
            and self.outage_rate_per_day == 0.0
        )

    def has_stream_faults(self) -> bool:
        """Whether the live service's ingest path should be perturbed."""
        return (
            self.stream_malformed_rate > 0.0
            or self.stream_duplicate_rate > 0.0
            or self.stream_reorder_rate > 0.0
            or self.stream_skew_rate > 0.0
            or self.stream_disconnect_rate_per_day > 0.0
        )

    @property
    def crash_rate(self) -> float:
        """Per-node crash rate in 1/s."""
        return self.crash_rate_per_day / DAY

    @property
    def outage_rate(self) -> float:
        """Per-source outage rate in 1/s."""
        return self.outage_rate_per_day / DAY

    def with_(self, **overrides: Any) -> "FaultPlan":
        """A copy with some fields replaced (re-validated)."""
        return replace(self, **overrides)


#: TOML section/key -> FaultPlan field
_TOML_KEYS: dict[tuple[str, str], str] = {
    ("messages", "loss_rate"): "loss_rate",
    ("messages", "bandwidth_bps"): "bandwidth_bps",
    ("crashes", "rate_per_day"): "crash_rate_per_day",
    ("crashes", "mean_downtime_s"): "mean_downtime_s",
    ("crashes", "scope"): "crash_scope",
    ("crashes", "cache"): "cache_persistence",
    ("links", "flap_rate"): "flap_rate",
    ("links", "min_cut_fraction"): "min_cut_fraction",
    ("links", "degrade_factor"): "degrade_factor",
    ("sources", "outage_rate_per_day"): "outage_rate_per_day",
    ("sources", "mean_outage_s"): "mean_outage_s",
    ("stream", "malformed_rate"): "stream_malformed_rate",
    ("stream", "duplicate_rate"): "stream_duplicate_rate",
    ("stream", "reorder_rate"): "stream_reorder_rate",
    ("stream", "skew_rate"): "stream_skew_rate",
    ("stream", "skew_max_s"): "stream_skew_max_s",
    ("stream", "disconnect_rate_per_day"): "stream_disconnect_rate_per_day",
    ("stream", "mean_disconnect_s"): "stream_mean_disconnect_s",
    ("plan", "seed_salt"): "seed_salt",
}


def plan_from_dict(data: dict[str, Any]) -> FaultPlan:
    """Build a validated plan from a (TOML-shaped) nested dict.

    Accepts both the sectioned TOML layout and a flat dict of field
    names.  Unknown sections or keys raise ``ValueError`` eagerly so a
    typo in a plan file fails before any worker spawns.
    """
    field_names = {f.name for f in fields(FaultPlan)}
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, dict):
            for sub_key, sub_value in value.items():
                target = _TOML_KEYS.get((key, sub_key))
                if target is None:
                    raise ValueError(
                        f"unknown fault-plan key [{key}] {sub_key!r}"
                    )
                kwargs[target] = sub_value
        elif key in field_names:
            kwargs[key] = value
        else:
            raise ValueError(f"unknown fault-plan key {key!r}")
    return FaultPlan(**kwargs)


def load_plan(path: str | Path) -> FaultPlan:
    """Load and validate a fault plan from a TOML file."""
    import tomllib

    raw = Path(path).read_bytes()
    try:
        data = tomllib.loads(raw.decode("utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"invalid fault plan {path}: {exc}") from None
    try:
        return plan_from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"invalid fault plan {path}: {exc}") from None
