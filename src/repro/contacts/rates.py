"""Pairwise contact-rate estimation.

Under the pairwise-Poisson model the maximum-likelihood estimate of a
pair's contact rate over an observation window is simply
``count / window``.  :func:`mle_rates` computes that offline from a
trace; :func:`ewma_rates` is the recency-weighted variant; and
:class:`ContactRateEstimator` is the *online, node-local* estimator each
device runs over its own contact history -- the distributed source of
rate knowledge the scheme actually uses.

All estimators produce a :class:`RateTable`, the symmetric pair->rate
mapping consumed by hierarchy construction and the replication analysis.

Both offline estimators accept either a :class:`ContactTrace` (object
path) or a :class:`repro.mobility.arrays.ContactArrays` (array path).
On arrays they run fully vectorised -- pairs keyed by packing
``(a, b)`` into one int64 and grouped with ``np.unique``, EWMA gaps
reduced round-by-round -- and produce bit-identical tables to the
scalar path, which stays available as a cross-check behind
:data:`VECTORISED_RATES` (flipped by ``repro bench``'s legacy mode).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Union

import numpy as np

from repro.sim.node import Node, ProtocolHandler

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.arrays import ContactArrays
    from repro.mobility.trace import ContactTrace

#: When True (default), estimation on :class:`ContactArrays` inputs and
#: :meth:`RateTable.matrix` use the vectorised implementations.  The
#: scalar paths are kept as the cross-check reference; ``repro bench``
#: flips this flag in legacy mode and the bit-identity tests compare the
#: two directly.
VECTORISED_RATES = True

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


def _norm_pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


def _is_arrays(trace) -> bool:
    from repro.mobility.arrays import ContactArrays

    return isinstance(trace, ContactArrays)


class RateTable:
    """Symmetric mapping of node pairs to contact rates (1/s).

    Backed either by a plain dict (mutable, built pair by pair) or by
    sorted pair/rate arrays (:meth:`from_arrays`, what the vectorised
    estimators emit) -- lookups work the same either way, and the dict
    is only materialised on demand, so a million-pair table built at
    scale never pays for per-pair Python objects.

    >>> table = RateTable({(1, 2): 0.5})
    >>> table.rate(2, 1)            # symmetric lookup
    0.5
    >>> table.rate(1, 3)            # never observed -> 0
    0.0
    >>> table.set(3, 1, 0.25)
    >>> sorted(table.neighbors(1).items())
    [(2, 0.5), (3, 0.25)]
    """

    def __init__(self, rates: Optional[Mapping[tuple[int, int], float]] = None) -> None:
        self._rates: Optional[dict[tuple[int, int], float]] = {}
        self._arr_a: Optional[np.ndarray] = None
        self._arr_b: Optional[np.ndarray] = None
        self._arr_rate: Optional[np.ndarray] = None
        self._packed: Optional[np.ndarray] = None
        self._csr = None
        if rates:
            for (a, b), rate in rates.items():
                self.set(a, b, rate)

    @classmethod
    def from_arrays(cls, a, b, rates) -> "RateTable":
        """Build a table straight from parallel pair/rate arrays.

        ``a``/``b`` must be normalised (``a < b`` per row), unique as
        pairs and sorted by ``(a, b)``; ``rates`` non-negative.  This is
        the trusted constructor used by the vectorised estimators.
        """
        table = cls()
        table._rates = None
        table._arr_a = np.ascontiguousarray(a, dtype=np.int64)
        table._arr_b = np.ascontiguousarray(b, dtype=np.int64)
        table._arr_rate = np.ascontiguousarray(rates, dtype=np.float64)
        return table

    # -- backing management --------------------------------------------------

    @property
    def is_array_backed(self) -> bool:
        """True while the table lives in arrays only (no dict built)."""
        return self._rates is None

    def _ensure_dict(self) -> dict[tuple[int, int], float]:
        if self._rates is None:
            self._rates = {
                (a, b): r
                for a, b, r in zip(
                    self._arr_a.tolist(), self._arr_b.tolist(), self._arr_rate.tolist()
                )
            }
        return self._rates

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(a, b, rate)`` arrays sorted by ``(a, b)`` (cached)."""
        if self._arr_a is None:
            items = sorted(self._rates.items())
            self._arr_a = np.fromiter(
                (p[0] for p, _ in items), dtype=np.int64, count=len(items)
            )
            self._arr_b = np.fromiter(
                (p[1] for p, _ in items), dtype=np.int64, count=len(items)
            )
            self._arr_rate = np.fromiter(
                (r for _, r in items), dtype=np.float64, count=len(items)
            )
        return self._arr_a, self._arr_b, self._arr_rate

    def _packed_keys(self) -> np.ndarray:
        if self._packed is None:
            a, b, _ = self.as_arrays()
            self._packed = (a << 32) | b
        return self._packed

    def _neighbor_csr(self):
        """CSR view over positive-rate edges, both directions (cached).

        Built with one packed-key argsort (ids fit 31 bits, so
        ``(node << 32) | peer`` orders like ``(node, peer)``) and
        difference-based group boundaries -- measurably cheaper than a
        two-key lexsort plus ``np.unique`` at millions of edges.
        """
        if self._csr is None:
            a, b, r = self.as_arrays()
            na = np.concatenate([a, b])
            nb = np.concatenate([b, a])
            nr = np.concatenate([r, r])
            pos = nr > 0
            if not pos.all():
                na, nb, nr = na[pos], nb[pos], nr[pos]
            order = np.argsort((na << 32) | nb)
            na, nb, nr = na[order], nb[order], nr[order]
            if len(na):
                first = np.empty(len(na), dtype=bool)
                first[0] = True
                np.not_equal(na[1:], na[:-1], out=first[1:])
                starts = np.nonzero(first)[0]
            else:
                starts = np.empty(0, dtype=np.int64)
            node_list = na[starts]
            indptr = np.append(starts, len(na))
            self._csr = (node_list, indptr, nb, nr)
        return self._csr

    def _invalidate(self) -> None:
        self._arr_a = self._arr_b = self._arr_rate = None
        self._packed = None
        self._csr = None

    # -- mutation ------------------------------------------------------------

    def set(self, a: int, b: int, rate: float) -> None:
        if a == b:
            raise ValueError(f"self-rate for node {a}")
        if rate < 0:
            raise ValueError(f"negative rate for pair ({a}, {b})")
        self._ensure_dict()[_norm_pair(a, b)] = float(rate)
        self._invalidate()

    # -- lookups -------------------------------------------------------------

    def rate(self, a: int, b: int, default: float = 0.0) -> float:
        """Contact rate between ``a`` and ``b`` (0 when never observed)."""
        if self._rates is not None:
            return self._rates.get(_norm_pair(a, b), default)
        lo, hi = (a, b) if a <= b else (b, a)
        key = (lo << 32) | hi
        packed = self._packed_keys()
        i = int(np.searchsorted(packed, key))
        if i < len(packed) and packed[i] == key:
            return float(self._arr_rate[i])
        return default

    def pairs(self) -> Iterable[tuple[tuple[int, int], float]]:
        if self._rates is not None:
            return self._rates.items()
        a, b, r = self.as_arrays()
        return (
            ((ai, bi), ri)
            for ai, bi, ri in zip(a.tolist(), b.tolist(), r.tolist())
        )

    def neighbor_view(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Positive-rate peers of ``node_id`` as ``(ids, rates)`` arrays.

        Ids ascend; backed by the cached CSR structure, so repeated
        calls (tree/replica planning) are O(log N) each.
        """
        node_list, indptr, nb, nr = self._neighbor_csr()
        i = int(np.searchsorted(node_list, node_id))
        if i == len(node_list) or node_list[i] != node_id:
            return _EMPTY_I, _EMPTY_F
        return nb[indptr[i]:indptr[i + 1]], nr[indptr[i]:indptr[i + 1]]

    def neighbors(self, node_id: int) -> dict[int, float]:
        """Peers of ``node_id`` with a positive rate."""
        if self._rates is not None:
            out = {}
            for (a, b), rate in self._rates.items():
                if rate <= 0:
                    continue
                if a == node_id:
                    out[b] = rate
                elif b == node_id:
                    out[a] = rate
            return out
        ids, rs = self.neighbor_view(node_id)
        return dict(zip(ids.tolist(), rs.tolist()))

    def nodes(self) -> set[int]:
        if self._rates is not None:
            seen: set[int] = set()
            for a, b in self._rates:
                seen.add(a)
                seen.add(b)
            return seen
        a, b, _ = self.as_arrays()
        return set(np.unique(np.concatenate([a, b])).tolist())

    def node_array(self) -> np.ndarray:
        """Sorted array of all nodes appearing in the table."""
        a, b, _ = self.as_arrays()
        return np.unique(np.concatenate([a, b]))

    def matrix(self, node_ids: list[int]) -> np.ndarray:
        """Dense rate matrix in the order of ``node_ids``."""
        if not VECTORISED_RATES:
            return self._matrix_scalar(node_ids)
        ids = np.asarray(list(node_ids), dtype=np.int64)
        out = np.zeros((len(ids), len(ids)))
        if len(self) == 0 or len(ids) == 0:
            return out
        a, b, r = self.as_arrays()
        order = np.argsort(ids, kind="stable")
        sids = ids[order]
        ai = np.searchsorted(sids, a).clip(0, len(sids) - 1)
        bi = np.searchsorted(sids, b).clip(0, len(sids) - 1)
        valid = (sids[ai] == a) & (sids[bi] == b)
        rows = order[ai[valid]]
        cols = order[bi[valid]]
        out[rows, cols] = r[valid]
        out[cols, rows] = r[valid]
        return out

    def _matrix_scalar(self, node_ids: list[int]) -> np.ndarray:
        """Reference dict-loop implementation (cross-check path)."""
        index = {nid: k for k, nid in enumerate(node_ids)}
        out = np.zeros((len(node_ids), len(node_ids)))
        for (a, b), rate in self.pairs():
            if a in index and b in index:
                out[index[a], index[b]] = rate
                out[index[b], index[a]] = rate
        return out

    def __len__(self) -> int:
        if self._rates is not None:
            return len(self._rates)
        return len(self._arr_rate)


def mle_rates(
    trace: Union["ContactTrace", "ContactArrays"],
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> RateTable:
    """Whole-window MLE: rate = contact count / window length.

    ``[t0, t1)`` defaults to the trace's own span.  Contacts are counted
    by their start time; the window is half-open so tiled windows (as
    produced by chunked generation) count a boundary contact exactly
    once.

    Two contacts of pair (0, 1) over a 100 s window:

    >>> from repro.mobility.trace import Contact, ContactTrace
    >>> trace = ContactTrace([Contact.make(0, 1, 10, 20),
    ...                       Contact.make(0, 1, 60, 70)])
    >>> mle_rates(trace, t0=0.0, t1=100.0).rate(0, 1)
    0.02
    """
    start = trace.start_time if t0 is None else t0
    end = trace.end_time if t1 is None else t1
    window = end - start
    if window <= 0:
        raise ValueError(f"empty estimation window [{start}, {end}]")
    if _is_arrays(trace):
        if VECTORISED_RATES:
            return _mle_rates_arrays(trace, start, end, window)
        return mle_rates(trace.to_trace(), t0=start, t1=end)
    counts: dict[tuple[int, int], int] = {}
    for c in trace:
        if start <= c.start < end:
            counts[c.pair] = counts.get(c.pair, 0) + 1
    return RateTable({pair: n / window for pair, n in counts.items()})


def _mle_rates_arrays(trace: "ContactArrays", start: float, end: float,
                      window: float) -> RateTable:
    mask = (trace.start >= start) & (trace.start < end)
    packed = trace.pair_keys()[mask]
    keys, counts = np.unique(packed, return_counts=True)
    rates = counts / window
    return RateTable.from_arrays(keys >> 32, keys & 0xFFFFFFFF, rates)


def ewma_rates(
    trace: Union["ContactTrace", "ContactArrays"],
    alpha: float = 0.3,
    t1: Optional[float] = None,
) -> RateTable:
    """Recency-weighted rates from per-pair inter-contact gaps.

    For each pair the EWMA of inter-contact gaps is maintained
    (``est = alpha * gap + (1 - alpha) * est``) and the rate is its
    inverse.  Pairs with a single contact fall back to
    ``1 / time-since-that-contact`` measured at ``t1``.

    One 40 s gap (between contact end and next start) gives rate 1/40:

    >>> from repro.mobility.trace import Contact, ContactTrace
    >>> trace = ContactTrace([Contact.make(0, 1, 10, 20),
    ...                       Contact.make(0, 1, 60, 70)])
    >>> ewma_rates(trace, t1=100.0).rate(0, 1)
    0.025
    """
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    horizon = trace.end_time if t1 is None else t1
    if _is_arrays(trace):
        if VECTORISED_RATES:
            return _ewma_rates_arrays(trace, alpha, horizon)
        return ewma_rates(trace.to_trace(), alpha=alpha, t1=horizon)
    table = RateTable()
    for pair, contacts in trace.pair_contacts().items():
        gaps = [n.start - p.end for p, n in zip(contacts, contacts[1:]) if n.start > p.end]
        if gaps:
            est = gaps[0]
            for gap in gaps[1:]:
                est = alpha * gap + (1 - alpha) * est
            if est > 0:
                table.set(pair[0], pair[1], 1.0 / est)
        else:
            age = horizon - contacts[0].start
            if age > 0:
                table.set(pair[0], pair[1], 1.0 / age)
    return table


def _ewma_rates_arrays(trace: "ContactArrays", alpha: float,
                       horizon: float) -> RateTable:
    n = len(trace)
    if n == 0:
        return RateTable()
    # Pair-grouped, time-ordered view: within a pair, (start, end) order
    # matches the trace iteration order the scalar path consumes.
    order = np.lexsort((trace.end, trace.start, trace.b, trace.a))
    s = trace.start[order]
    e = trace.end[order]
    a = trace.a[order].astype(np.int64)
    b = trace.b[order].astype(np.int64)
    new_pair = np.empty(n, dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
    pid = np.cumsum(new_pair) - 1
    num_pairs = int(pid[-1]) + 1
    first_idx = np.nonzero(new_pair)[0]
    pair_a = a[first_idx]
    pair_b = b[first_idx]
    # Positive inter-contact gaps, grouped per pair in time order.
    gap_row = np.zeros(n, dtype=bool)
    gap_row[1:] = ~new_pair[1:] & (s[1:] > e[:-1])
    gvals = (s[1:] - e[:-1])[gap_row[1:]]
    gpid = pid[gap_row]
    gcount = np.bincount(gpid, minlength=num_pairs)
    goff = np.concatenate(([0], np.cumsum(gcount)))[:-1]
    has_gaps = gcount > 0
    est = np.zeros(num_pairs)
    est[has_gaps] = gvals[goff[has_gaps]]
    # Round r folds in every pair's r-th gap at once; the per-element
    # float op sequence is exactly the scalar recurrence's.
    max_rounds = int(gcount.max()) if num_pairs else 0
    one_minus = 1 - alpha
    for r in range(1, max_rounds):
        active = gcount > r
        est[active] = alpha * gvals[goff[active] + r] + one_minus * est[active]
    rates = np.zeros(num_pairs)
    gap_ok = has_gaps & (est > 0)
    rates[gap_ok] = 1.0 / est[gap_ok]
    age = horizon - s[first_idx]
    age_ok = ~has_gaps & (age > 0)
    rates[age_ok] = 1.0 / age[age_ok]
    keep = gap_ok | age_ok
    return RateTable.from_arrays(pair_a[keep], pair_b[keep], rates[keep])


class ContactRateEstimator(ProtocolHandler):
    """Node-local online rate estimator.

    Each node counts contacts per peer from the moment it starts and
    estimates ``rate = count / elapsed``.  This is the distributed
    knowledge base: a node knows its *own* rates exactly and learns
    nothing about pairs it is not part of (peers exchange summaries at
    the protocol layer above when needed).

    An optional EWMA mode tracks inter-contact gaps instead, adapting
    faster when mobility changes.
    """

    def __init__(self, mode: str = "cumulative", alpha: float = 0.3) -> None:
        super().__init__()
        if mode not in ("cumulative", "ewma"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.alpha = alpha
        self.counts: dict[int, int] = {}
        self.last_seen: dict[int, float] = {}
        self.ewma_gap: dict[int, float] = {}
        self.started_at: Optional[float] = None

    def on_start(self) -> None:
        self.started_at = self.node.sim.now

    def on_contact_start(self, peer: Node) -> None:
        now = self.node.sim.now
        pid = peer.node_id
        self.counts[pid] = self.counts.get(pid, 0) + 1
        if pid in self.last_seen:
            gap = now - self.last_seen[pid]
            if gap > 0:
                if pid in self.ewma_gap:
                    self.ewma_gap[pid] = self.alpha * gap + (1 - self.alpha) * self.ewma_gap[pid]
                else:
                    self.ewma_gap[pid] = gap
        self.last_seen[pid] = now

    def rate_to(self, peer_id: int) -> float:
        """Current estimate of the contact rate to ``peer_id`` (1/s)."""
        if self.mode == "ewma":
            gap = self.ewma_gap.get(peer_id)
            if gap:
                return 1.0 / gap
            # fall through to cumulative for peers seen at most once
        count = self.counts.get(peer_id, 0)
        if count == 0 or self.started_at is None:
            return 0.0
        elapsed = self.node.sim.now - self.started_at
        return count / elapsed if elapsed > 0 else 0.0

    def known_peers(self) -> dict[int, float]:
        """All peers ever met, with their current rate estimates."""
        return {pid: self.rate_to(pid) for pid in self.counts}

    def expected_meeting_delay(self, peer_id: int) -> float:
        """``1 / rate``; infinity for peers never met."""
        rate = self.rate_to(peer_id)
        return 1.0 / rate if rate > 0 else math.inf
