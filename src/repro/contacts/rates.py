"""Pairwise contact-rate estimation.

Under the pairwise-Poisson model the maximum-likelihood estimate of a
pair's contact rate over an observation window is simply
``count / window``.  :func:`mle_rates` computes that offline from a
trace; :func:`ewma_rates` is the recency-weighted variant; and
:class:`ContactRateEstimator` is the *online, node-local* estimator each
device runs over its own contact history -- the distributed source of
rate knowledge the scheme actually uses.

All estimators produce a :class:`RateTable`, the symmetric pair->rate
mapping consumed by hierarchy construction and the replication analysis.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

import numpy as np

from repro.sim.node import Node, ProtocolHandler

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.trace import ContactTrace


def _norm_pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class RateTable:
    """Symmetric mapping of node pairs to contact rates (1/s).

    >>> table = RateTable({(1, 2): 0.5})
    >>> table.rate(2, 1)            # symmetric lookup
    0.5
    >>> table.rate(1, 3)            # never observed -> 0
    0.0
    >>> table.set(3, 1, 0.25)
    >>> sorted(table.neighbors(1).items())
    [(2, 0.5), (3, 0.25)]
    """

    def __init__(self, rates: Optional[Mapping[tuple[int, int], float]] = None) -> None:
        self._rates: dict[tuple[int, int], float] = {}
        if rates:
            for (a, b), rate in rates.items():
                self.set(a, b, rate)

    def set(self, a: int, b: int, rate: float) -> None:
        if a == b:
            raise ValueError(f"self-rate for node {a}")
        if rate < 0:
            raise ValueError(f"negative rate for pair ({a}, {b})")
        self._rates[_norm_pair(a, b)] = float(rate)

    def rate(self, a: int, b: int, default: float = 0.0) -> float:
        """Contact rate between ``a`` and ``b`` (0 when never observed)."""
        return self._rates.get(_norm_pair(a, b), default)

    def pairs(self) -> Iterable[tuple[tuple[int, int], float]]:
        return self._rates.items()

    def neighbors(self, node_id: int) -> dict[int, float]:
        """Peers of ``node_id`` with a positive rate."""
        out = {}
        for (a, b), rate in self._rates.items():
            if rate <= 0:
                continue
            if a == node_id:
                out[b] = rate
            elif b == node_id:
                out[a] = rate
        return out

    def nodes(self) -> set[int]:
        seen: set[int] = set()
        for a, b in self._rates:
            seen.add(a)
            seen.add(b)
        return seen

    def matrix(self, node_ids: list[int]) -> np.ndarray:
        """Dense rate matrix in the order of ``node_ids``."""
        index = {nid: k for k, nid in enumerate(node_ids)}
        out = np.zeros((len(node_ids), len(node_ids)))
        for (a, b), rate in self._rates.items():
            if a in index and b in index:
                out[index[a], index[b]] = rate
                out[index[b], index[a]] = rate
        return out

    def __len__(self) -> int:
        return len(self._rates)


def mle_rates(
    trace: "ContactTrace",
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> RateTable:
    """Whole-window MLE: rate = contact count / window length.

    ``[t0, t1]`` defaults to the trace's own span.  Contacts are counted
    by their start time.

    Two contacts of pair (0, 1) over a 100 s window:

    >>> from repro.mobility.trace import Contact, ContactTrace
    >>> trace = ContactTrace([Contact.make(0, 1, 10, 20),
    ...                       Contact.make(0, 1, 60, 70)])
    >>> mle_rates(trace, t0=0.0, t1=100.0).rate(0, 1)
    0.02
    """
    start = trace.start_time if t0 is None else t0
    end = trace.end_time if t1 is None else t1
    window = end - start
    if window <= 0:
        raise ValueError(f"empty estimation window [{start}, {end}]")
    counts: dict[tuple[int, int], int] = {}
    for c in trace:
        if start <= c.start <= end:
            counts[c.pair] = counts.get(c.pair, 0) + 1
    return RateTable({pair: n / window for pair, n in counts.items()})


def ewma_rates(
    trace: "ContactTrace",
    alpha: float = 0.3,
    t1: Optional[float] = None,
) -> RateTable:
    """Recency-weighted rates from per-pair inter-contact gaps.

    For each pair the EWMA of inter-contact gaps is maintained
    (``est = alpha * gap + (1 - alpha) * est``) and the rate is its
    inverse.  Pairs with a single contact fall back to
    ``1 / time-since-that-contact`` measured at ``t1``.

    One 40 s gap (between contact end and next start) gives rate 1/40:

    >>> from repro.mobility.trace import Contact, ContactTrace
    >>> trace = ContactTrace([Contact.make(0, 1, 10, 20),
    ...                       Contact.make(0, 1, 60, 70)])
    >>> ewma_rates(trace, t1=100.0).rate(0, 1)
    0.025
    """
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    horizon = trace.end_time if t1 is None else t1
    table = RateTable()
    for pair, contacts in trace.pair_contacts().items():
        gaps = [n.start - p.end for p, n in zip(contacts, contacts[1:]) if n.start > p.end]
        if gaps:
            est = gaps[0]
            for gap in gaps[1:]:
                est = alpha * gap + (1 - alpha) * est
            if est > 0:
                table.set(pair[0], pair[1], 1.0 / est)
        else:
            age = horizon - contacts[0].start
            if age > 0:
                table.set(pair[0], pair[1], 1.0 / age)
    return table


class ContactRateEstimator(ProtocolHandler):
    """Node-local online rate estimator.

    Each node counts contacts per peer from the moment it starts and
    estimates ``rate = count / elapsed``.  This is the distributed
    knowledge base: a node knows its *own* rates exactly and learns
    nothing about pairs it is not part of (peers exchange summaries at
    the protocol layer above when needed).

    An optional EWMA mode tracks inter-contact gaps instead, adapting
    faster when mobility changes.
    """

    def __init__(self, mode: str = "cumulative", alpha: float = 0.3) -> None:
        super().__init__()
        if mode not in ("cumulative", "ewma"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.alpha = alpha
        self.counts: dict[int, int] = {}
        self.last_seen: dict[int, float] = {}
        self.ewma_gap: dict[int, float] = {}
        self.started_at: Optional[float] = None

    def on_start(self) -> None:
        self.started_at = self.node.sim.now

    def on_contact_start(self, peer: Node) -> None:
        now = self.node.sim.now
        pid = peer.node_id
        self.counts[pid] = self.counts.get(pid, 0) + 1
        if pid in self.last_seen:
            gap = now - self.last_seen[pid]
            if gap > 0:
                if pid in self.ewma_gap:
                    self.ewma_gap[pid] = self.alpha * gap + (1 - self.alpha) * self.ewma_gap[pid]
                else:
                    self.ewma_gap[pid] = gap
        self.last_seen[pid] = now

    def rate_to(self, peer_id: int) -> float:
        """Current estimate of the contact rate to ``peer_id`` (1/s)."""
        if self.mode == "ewma":
            gap = self.ewma_gap.get(peer_id)
            if gap:
                return 1.0 / gap
            # fall through to cumulative for peers seen at most once
        count = self.counts.get(peer_id, 0)
        if count == 0 or self.started_at is None:
            return 0.0
        elapsed = self.node.sim.now - self.started_at
        return count / elapsed if elapsed > 0 else 0.0

    def known_peers(self) -> dict[int, float]:
        """All peers ever met, with their current rate estimates."""
        return {pid: self.rate_to(pid) for pid in self.counts}

    def expected_meeting_delay(self, peer_id: int) -> float:
        """``1 / rate``; infinity for peers never met."""
        rate = self.rate_to(peer_id)
        return 1.0 / rate if rate > 0 else math.inf
