"""Inter-contact time distribution analysis (experiment E2).

The paper's analysis assumes pairwise inter-contact times are
exponential.  This module provides the tools to test that on a trace:
empirical CCDFs, exponential MLE fits, a Kolmogorov-Smirnov distance
against the fitted exponential, and pair-normalised aggregation (each
pair's gaps divided by that pair's mean, so heterogeneous pairs can be
pooled into one distribution that is Exp(1) under the hypothesis).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.trace import ContactTrace


def ccdf(samples: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical complementary CDF.

    Returns ``(x, p)`` where ``p[k] = P(X > x[k])`` with ``x`` sorted
    ascending.  Raises on empty input.
    """
    if len(samples) == 0:
        raise ValueError("no samples")
    x = np.sort(np.asarray(samples, dtype=float))
    n = len(x)
    p = 1.0 - np.arange(1, n + 1) / n
    return x, p


def fit_exponential(samples: Sequence[float]) -> float:
    """MLE rate of an exponential fit: ``1 / mean``."""
    arr = np.asarray(samples, dtype=float)
    if len(arr) == 0:
        raise ValueError("no samples")
    if (arr < 0).any():
        raise ValueError("negative samples")
    mean = float(arr.mean())
    if mean <= 0:
        raise ValueError("all samples are zero")
    return 1.0 / mean


def ks_distance(samples: Sequence[float], rate: float) -> float:
    """Kolmogorov-Smirnov distance to Exp(rate).

    ``sup_x |F_n(x) - (1 - exp(-rate x))|`` evaluated at the jump points
    of the empirical CDF (where the supremum is attained).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    x = np.sort(np.asarray(samples, dtype=float))
    n = len(x)
    if n == 0:
        raise ValueError("no samples")
    model = 1.0 - np.exp(-rate * x)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(max(np.abs(upper - model).max(), np.abs(model - lower).max()))


def aggregate_intercontact_samples(
    trace: "ContactTrace",
    normalise: bool = False,
    min_gaps_per_pair: int = 1,
) -> np.ndarray:
    """Pool inter-contact gaps across all pairs of a trace.

    With ``normalise=True`` each pair's gaps are divided by that pair's
    mean gap, removing rate heterogeneity: under the pairwise-exponential
    hypothesis the pooled result is Exp(1).  ``min_gaps_per_pair`` drops
    pairs with too few gaps to normalise meaningfully.
    """
    pooled: list[float] = []
    for gaps in trace.inter_contact_times().values():
        if len(gaps) < min_gaps_per_pair:
            continue
        if normalise:
            mean = sum(gaps) / len(gaps)
            if mean <= 0:
                continue
            pooled.extend(g / mean for g in gaps)
        else:
            pooled.extend(gaps)
    return np.asarray(pooled, dtype=float)


def exponential_tail_quantiles(rate: float, quantiles: Sequence[float]) -> list[float]:
    """Inverse CCDF of Exp(rate) at the given tail probabilities."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    out = []
    for q in quantiles:
        if not 0 < q < 1:
            raise ValueError(f"tail probability {q} outside (0, 1)")
        out.append(-math.log(q) / rate)
    return out
