"""Contact-based centrality metrics.

Cooperative caching in opportunistic networks places data on the nodes
most capable of meeting others -- the "network central locations".  The
metric used by this research line is the **expected number of distinct
nodes contacted within a time window T**:

    C_i(T) = sum_j (1 - exp(-lambda_ij * T))

which rewards both many neighbours and fast ones, and saturates per
neighbour (meeting the same friend ten times in T counts once).  Degree
(rate-sum) and delay-weighted betweenness are provided as alternatives
and for ablations.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx
import numpy as np

from repro.contacts.rates import RateTable


def contact_centrality(
    rates: RateTable,
    window: float,
    node_ids: Optional[list[int]] = None,
) -> dict[int, float]:
    """Expected distinct nodes met within ``window`` seconds, per node."""
    if window <= 0:
        raise ValueError("window must be positive")
    nodes = sorted(rates.nodes()) if node_ids is None else list(node_ids)
    scores = {nid: 0.0 for nid in nodes}
    for (a, b), rate in rates.pairs():
        if rate <= 0:
            continue
        p = 1.0 - math.exp(-rate * window)
        if a in scores:
            scores[a] += p
        if b in scores:
            scores[b] += p
    return scores


def degree_centrality(
    rates: RateTable,
    node_ids: Optional[list[int]] = None,
) -> dict[int, float]:
    """Sum of contact rates per node (expected contacts per second)."""
    nodes = sorted(rates.nodes()) if node_ids is None else list(node_ids)
    scores = {nid: 0.0 for nid in nodes}
    for (a, b), rate in rates.pairs():
        if a in scores:
            scores[a] += rate
        if b in scores:
            scores[b] += rate
    return scores


def contact_centrality_array(
    rates: RateTable,
    window: float,
    candidates: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`contact_centrality` over sorted candidate ids.

    Accumulates ``1 - exp(-rate * window)`` per endpoint with indexed
    adds in the table's pair order -- the same summation order as the
    scalar loop, so results match it to within the ``exp``
    implementation.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    a, b, r = rates.as_arrays()
    pos = r > 0
    a, b, r = a[pos], b[pos], r[pos]
    p = 1.0 - np.exp(-r * window)
    return _accumulate(candidates, a, b, p)


def degree_centrality_array(rates: RateTable, candidates: np.ndarray) -> np.ndarray:
    """Vectorised :func:`degree_centrality` over sorted candidate ids."""
    a, b, r = rates.as_arrays()
    return _accumulate(candidates, a, b, r)


def _accumulate(candidates: np.ndarray, a: np.ndarray, b: np.ndarray,
                weight: np.ndarray) -> np.ndarray:
    """Indexed accumulation in the scalar loop's exact order.

    Endpoints interleave (pair k's ``a`` before its ``b``, pairs in
    table order) so the floating-point summation order per node matches
    the dict loop's bit for bit.
    """
    if not len(candidates) or not len(a):
        return np.zeros(len(candidates))
    ids2 = np.empty(2 * len(a), dtype=np.int64)
    ids2[0::2] = a
    ids2[1::2] = b
    w2 = np.empty(2 * len(weight))
    w2[0::2] = weight
    w2[1::2] = weight
    pos = np.searchsorted(candidates, ids2).clip(0, len(candidates) - 1)
    valid = candidates[pos] == ids2
    # bincount walks its input sequentially, accumulating in the same
    # order np.add.at would -- an order-preserving (and much faster)
    # indexed sum.
    return np.bincount(pos[valid], weights=w2[valid],
                       minlength=len(candidates))


def betweenness_centrality(graph: nx.Graph) -> dict[int, float]:
    """Betweenness on the contact graph, weighted by meeting delay.

    Shortest paths minimise total expected meeting delay, so a node with
    high score lies on many fast opportunistic routes.
    """
    return nx.betweenness_centrality(graph, weight="delay", normalized=True)


def rank_nodes(scores: dict[int, float], top: Optional[int] = None) -> list[int]:
    """Node ids sorted by descending score (ties by ascending id)."""
    ranked = sorted(scores, key=lambda nid: (-scores[nid], nid))
    return ranked if top is None else ranked[:top]
