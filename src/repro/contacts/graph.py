"""Aggregated contact graph.

Collapses a trace (or a rate table) into a weighted ``networkx`` graph:
one edge per pair that ever meets, annotated with the contact rate, the
expected meeting delay (``1 / rate``) and the raw contact count.  The
centrality metrics and the hierarchy builder both consume this view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import networkx as nx

from repro.contacts.rates import RateTable, mle_rates

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.trace import ContactTrace


def contact_graph(source: Union["ContactTrace", RateTable]) -> nx.Graph:
    """Build the weighted contact graph from a trace or a rate table.

    Edge attributes: ``rate`` (contacts/s), ``delay`` (expected meeting
    delay, s), and -- when built from a trace -- ``count``.
    Nodes that never meet anyone are still included when the source is a
    trace (isolated vertices).
    """
    graph = nx.Graph()
    if isinstance(source, RateTable):
        graph.add_nodes_from(sorted(source.nodes()))
        for (a, b), rate in source.pairs():
            if rate > 0:
                graph.add_edge(a, b, rate=rate, delay=1.0 / rate)
        return graph

    trace = source
    graph.add_nodes_from(trace.node_ids)
    rates = mle_rates(trace)
    counts: dict[tuple[int, int], int] = {
        pair: len(contacts) for pair, contacts in trace.pair_contacts().items()
    }
    for (a, b), rate in rates.pairs():
        if rate > 0:
            graph.add_edge(a, b, rate=rate, delay=1.0 / rate, count=counts.get((a, b), 0))
    return graph


def largest_component(graph: nx.Graph) -> nx.Graph:
    """Subgraph induced by the largest connected component."""
    if graph.number_of_nodes() == 0:
        return graph.copy()
    biggest = max(nx.connected_components(graph), key=len)
    return graph.subgraph(biggest).copy()
