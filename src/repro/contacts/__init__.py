"""Contact-process analysis.

The freshness scheme's decisions are driven by properties of the contact
process: pairwise contact rates (for responsibility assignment and the
replication analysis) and contact-based centrality (for NCL selection).
This package estimates those from traces -- both offline (whole-trace
MLE) and online (a protocol handler each node runs on its own history,
which is what makes the scheme *distributed*).
"""

from repro.contacts.rates import (
    ContactRateEstimator,
    RateTable,
    ewma_rates,
    mle_rates,
)
from repro.contacts.centrality import (
    contact_centrality,
    degree_centrality,
    betweenness_centrality,
    rank_nodes,
)
from repro.contacts.graph import contact_graph, largest_component
from repro.contacts.intercontact import (
    aggregate_intercontact_samples,
    ccdf,
    fit_exponential,
    ks_distance,
)

__all__ = [
    "ContactRateEstimator",
    "RateTable",
    "aggregate_intercontact_samples",
    "betweenness_centrality",
    "ccdf",
    "contact_centrality",
    "contact_graph",
    "degree_centrality",
    "ewma_rates",
    "fit_exponential",
    "ks_distance",
    "largest_component",
    "mle_rates",
    "rank_nodes",
]
