"""CSV export of experiment results.

Every :class:`~repro.experiments.runner.ExperimentResult` carries both
the formatted text and the raw ``data`` dict; this module flattens the
common data shapes (series dicts, row lists, nested summaries) into CSV
files so results can be re-plotted outside this repository.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Any, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import ExperimentResult

PathLike = Union[str, Path]


def _scalar(value: Any) -> Any:
    """Reduce exported cells to CSV-friendly scalars."""
    from repro.analysis.aggregate import Summary

    if isinstance(value, Summary):
        return value.mean
    if isinstance(value, float):
        return round(value, 6)
    return value


def export_series(
    path: PathLike,
    x_label: str,
    x_values: list,
    series: dict[str, list],
) -> Path:
    """Write figure data: one x column plus one column per series."""
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label, *series.keys()])
        for k, x in enumerate(x_values):
            row = [x]
            for values in series.values():
                row.append(_scalar(values[k]) if k < len(values) else "")
            writer.writerow(row)
    return path


def export_rows(path: PathLike, rows: list[dict]) -> Path:
    """Write table data: one CSV row per dict, columns from the first row."""
    path = Path(path)
    if not rows:
        raise ValueError("no rows to export")
    columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _scalar(value) for key, value in row.items()})
    return path


def _jsonable(value: Any) -> Any:
    """Recursively reduce a payload to strict-JSON-safe values.

    ``Summary`` collapses to its mean, NumPy scalars/arrays to Python
    numbers/lists, and non-finite floats to ``None`` (strict JSON has
    no NaN/Infinity literal, and round-tripping consumers should not
    need a lenient parser).
    """
    from repro.analysis.aggregate import Summary

    if isinstance(value, Summary):
        value = value.mean
    if hasattr(value, "tolist"):  # numpy scalar or array
        value = value.tolist()
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def export_json(path: PathLike, payload: dict) -> Path:
    """Write a nested payload (e.g. a model prediction) as strict JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonable(payload), handle, indent=2, allow_nan=False)
        handle.write("\n")
    return path


def export_result(result: "ExperimentResult", directory: PathLike) -> list[Path]:
    """Export whatever tabular shapes ``result.data`` contains.

    Recognised shapes, each written as ``<exp_id>_<key>.csv``:

    - a list of dicts (table rows);
    - a dict of equal-length lists next to a list under another key
      (series: the first list-valued key is used as the x axis).

    Returns the written paths (possibly empty for exotic payloads).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    data = result.data
    x_key = next(
        (key for key, value in data.items()
         if isinstance(value, list) and value
         and not isinstance(value[0], dict)),
        None,
    )
    for key, value in data.items():
        target = directory / f"{result.exp_id}_{key}.csv"
        if isinstance(value, list) and value and isinstance(value[0], dict):
            written.append(export_rows(target, value))
        elif (
            isinstance(value, dict)
            and value
            and all(isinstance(v, list) for v in value.values())
            and x_key is not None
            and key != x_key
        ):
            written.append(
                export_series(target, x_key, data[x_key], value)
            )
    return written
