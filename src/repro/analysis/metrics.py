"""Metric computation over finished runs.

Three families of metrics, matching the paper's evaluation:

- **cache freshness** -- the probe time series recorded during the run
  (fraction of (caching node, item) slots holding the current version /
  an unexpired version), summarised over a measurement window;
- **data access validity** -- each answered query judged against the
  ground-truth version history: was the served version current (fresh)
  and unexpired (valid) at the time it was served?
- **refresh performance** -- per published version and caching node,
  whether the update arrived before the next version (on time) and with
  what delay, plus the transmission overhead spent achieving it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.caching.items import DataCatalog, VersionHistory
from repro.caching.query import QueryRecord
from repro.core.refresh import RefreshUpdate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheme import SchemeRuntime


@dataclass
class QueryOutcomes:
    """Aggregate judgement of a run's queries."""

    issued: int
    answered: int
    fresh: int
    valid: int
    mean_delay: float

    @property
    def answer_ratio(self) -> float:
        return self.answered / self.issued if self.issued else math.nan

    @property
    def fresh_ratio(self) -> float:
        """Fraction of *answered* queries served the current version."""
        return self.fresh / self.answered if self.answered else math.nan

    @property
    def valid_ratio(self) -> float:
        """Fraction of *answered* queries served an unexpired version."""
        return self.valid / self.answered if self.answered else math.nan

    @property
    def end_to_end_validity(self) -> float:
        """Fraction of *issued* queries answered with valid data."""
        return self.valid / self.issued if self.issued else math.nan


def judge_queries(
    records: Iterable[QueryRecord],
    history: VersionHistory,
    catalog: DataCatalog,
) -> QueryOutcomes:
    """Judge served versions against the ground truth.

    A response is *fresh* if the served version was still the current
    version at the moment it reached the requester, and *valid* if it
    had not expired by then.
    """
    issued = answered = fresh = valid = 0
    total_delay = 0.0
    for record in records:
        issued += 1
        if not record.answered:
            continue
        answered += 1
        total_delay += record.delay
        item = catalog.get(record.item_id)
        when = record.answered_at
        if history.is_fresh(record.item_id, record.version, when):
            fresh += 1
        if when < record.version_time + item.lifetime:
            valid += 1
    return QueryOutcomes(
        issued=issued,
        answered=answered,
        fresh=fresh,
        valid=valid,
        mean_delay=(total_delay / answered) if answered else math.nan,
    )


@dataclass
class RefreshOutcomes:
    """Refresh-plane performance of one run."""

    opportunities: int          # (version, caching node) pairs to deliver
    delivered_on_time: int      # arrived before the next version
    delivered_late: int         # arrived after the next version (still counted)
    mean_delay: float           # over on-time + late deliveries
    messages: float             # refresh-plane transmissions
    messages_per_update: float  # overhead per useful delivery

    @property
    def on_time_ratio(self) -> float:
        """Empirical counterpart of the freshness requirement."""
        return self.delivered_on_time / self.opportunities if self.opportunities else math.nan


def refresh_outcomes(
    update_log: Iterable[RefreshUpdate],
    history: VersionHistory,
    catalog: DataCatalog,
    caching_nodes: list[int],
    horizon: float,
    messages: float,
) -> RefreshOutcomes:
    """Score every refresh opportunity of a run.

    An *opportunity* is one (item, version >= 2, caching node) triple
    whose version was published at least one refresh interval before the
    horizon (so it had a full window to arrive).  It counts as on time
    if the node recorded the update before the next version appeared
    (or before the horizon for the last version).
    """
    updates: dict[tuple[int, int, int], float] = {}
    for update in update_log:
        key = (update.item_id, update.version, update.node)
        time = updates.get(key)
        if time is None or update.updated_at < time:
            updates[key] = update.updated_at

    caching_set = set(caching_nodes)
    opportunities = on_time = late = 0
    delays: list[float] = []
    for item in catalog:
        num_versions = history.num_versions(item.item_id)
        for version in range(2, num_versions + 1):
            published = history.version_time(item.item_id, version)
            if published + item.refresh_interval > horizon:
                continue  # the window extends past the run: not scoreable
            if version < num_versions:
                deadline = history.version_time(item.item_id, version + 1)
            else:
                deadline = horizon
            for node in caching_set:
                opportunities += 1
                arrived = updates.get((item.item_id, version, node))
                if arrived is None:
                    continue
                delays.append(arrived - published)
                if arrived <= deadline:
                    on_time += 1
                else:
                    late += 1
    delivered = on_time + late
    return RefreshOutcomes(
        opportunities=opportunities,
        delivered_on_time=on_time,
        delivered_late=late,
        mean_delay=(sum(delays) / len(delays)) if delays else math.nan,
        messages=messages,
        messages_per_update=(messages / delivered) if delivered else math.nan,
    )


@dataclass
class LoadStats:
    """Distribution of refresh transmissions over the sending nodes.

    The hierarchy's load-balancing claim: source-rooted schemes
    concentrate transmissions at the source (high ``max_load`` and
    ``gini``), HDR spreads them over the tree's interior nodes.
    """

    total: int
    senders: int
    max_load: int
    mean_load: float
    gini: float


def transmission_load(runtime: "SchemeRuntime") -> LoadStats:
    """Per-sender refresh transmission distribution of a finished run.

    The runtime must have been built with ``record_transfers=True``.
    The Gini coefficient is computed over all nodes that sent at least
    one refresh-plane message (0 = perfectly even, 1 = one node sends
    everything).
    """
    if not runtime.network.record_transfers:
        raise ValueError("runtime was built without record_transfers=True")
    per_sender: dict[int, int] = {}
    for transfer in runtime.network.transfers:
        if transfer.kind.startswith("refresh") or transfer.kind == "invalidate":
            per_sender[transfer.sender] = per_sender.get(transfer.sender, 0) + 1
    loads = sorted(per_sender.values())
    total = sum(loads)
    if not loads:
        return LoadStats(total=0, senders=0, max_load=0, mean_load=0.0, gini=math.nan)
    n = len(loads)
    # Gini over the observed senders (standard discrete formula).
    weighted = sum((2 * (k + 1) - n - 1) * x for k, x in enumerate(loads))
    gini = weighted / (n * total) if total else math.nan
    return LoadStats(
        total=total,
        senders=n,
        max_load=loads[-1],
        mean_load=total / n,
        gini=gini,
    )


@dataclass
class FreshnessSummary:
    """Time-averaged probe readings over a measurement window."""

    freshness: float
    validity: float
    samples: int


def freshness_summary(
    runtime: "SchemeRuntime",
    t0: float = 0.0,
    t1: Optional[float] = None,
) -> FreshnessSummary:
    """Average the freshness/validity probes over ``[t0, t1]``.

    The runtime must have had :meth:`SchemeRuntime.install_freshness_probe`
    active during the run.
    """
    fresh_series = runtime.stats.series("probe.freshness")
    valid_series = runtime.stats.series("probe.validity")
    end = runtime.sim.now if t1 is None else t1
    fresh_vals = [v for t, v in fresh_series if t0 <= t <= end]
    valid_vals = [v for t, v in valid_series if t0 <= t <= end]
    return FreshnessSummary(
        freshness=(sum(fresh_vals) / len(fresh_vals)) if fresh_vals else math.nan,
        validity=(sum(valid_vals) / len(valid_vals)) if valid_vals else math.nan,
        samples=len(fresh_vals),
    )
