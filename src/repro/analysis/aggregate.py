"""Aggregation across replications.

Experiments run several seeds and report mean with a 95% confidence
interval.  The interval uses the Student-t critical value (small
replication counts are the norm here); NaN samples are dropped first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

#: Two-sided 95% Student-t critical values by degrees of freedom; the
#: table covers the replication counts experiments actually use and
#: falls back to the normal value beyond it.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t95(dof: int) -> float:
    if dof <= 0:
        return math.nan
    if dof in _T95:
        return _T95[dof]
    for threshold in sorted(_T95):
        if dof <= threshold:
            return _T95[threshold]
    return 1.96


@dataclass(frozen=True)
class Summary:
    """Mean, spread and 95% CI half-width of one metric."""

    mean: float
    std: float
    ci95: float
    n: int

    def __str__(self) -> str:
        if self.n == 0:
            return "n/a"
        if self.n == 1:
            return f"{self.mean:.4f}"
        return f"{self.mean:.4f} +/- {self.ci95:.4f}"


def summarize(values: Iterable[float]) -> Summary:
    """Summarise replication results, ignoring NaNs."""
    clean = [v for v in values if not math.isnan(v)]
    n = len(clean)
    if n == 0:
        return Summary(mean=math.nan, std=math.nan, ci95=math.nan, n=0)
    mean = sum(clean) / n
    if n == 1:
        return Summary(mean=mean, std=0.0, ci95=0.0, n=1)
    var = sum((v - mean) ** 2 for v in clean) / (n - 1)
    std = math.sqrt(var)
    ci95 = _t95(n - 1) * std / math.sqrt(n)
    return Summary(mean=mean, std=std, ci95=ci95, n=n)
