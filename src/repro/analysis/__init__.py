"""Metrics, aggregation and table formatting for the experiments."""

from repro.analysis.metrics import (
    LoadStats,
    QueryOutcomes,
    RefreshOutcomes,
    judge_queries,
    refresh_outcomes,
    freshness_summary,
    transmission_load,
)
from repro.analysis.aggregate import Summary, summarize
from repro.analysis.export import export_result, export_rows, export_series
from repro.analysis.tables import format_series, format_table

__all__ = [
    "LoadStats",
    "QueryOutcomes",
    "transmission_load",
    "RefreshOutcomes",
    "Summary",
    "export_result",
    "export_rows",
    "export_series",
    "format_series",
    "format_table",
    "freshness_summary",
    "judge_queries",
    "refresh_outcomes",
    "summarize",
]
