"""Plain-text table and series formatting.

The benchmark harness prints each reproduced table and figure as an
aligned text table -- the "same rows/series the paper reports".  Values
may be floats, ints, strings or :class:`~repro.analysis.aggregate.Summary`.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _cell(value: Any, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
    precision: int = 4,
) -> str:
    """Align a list of row dicts into a text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_cell(row.get(col), precision) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[k]) for r in rendered)) for k, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[k]) for k, col in enumerate(cols))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(r[k].ljust(widths[k]) for k in range(len(cols))))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Format figure data: one x column plus one column per series."""
    rows = []
    for k, x in enumerate(x_values):
        row: dict[str, Any] = {x_label: x}
        for name, values in series.items():
            row[name] = values[k] if k < len(values) else None
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title,
                        precision=precision)
